#!/usr/bin/env python3
"""Abuse monitoring: the paper's Section 5 use cases.

Correlates a simulated day of traffic, joins the resolved domain names
against a Spamhaus-DBL-style blocklist, checks RFC 1035 validity, and
reports which abuse categories move how much traffic — including the
bi-directional traffic to malformed domains on non-web ports.

Run with:  python examples/abuse_monitoring.py  [--hours N]
"""

import argparse

from repro.analysis import ResultRecorder, run_variant
from repro.analysis.invalid_domains import analyze_invalid_domains
from repro.analysis.spamdbl import DBL_CATEGORIES, DomainBlockList, analyze_abuse_traffic
from repro.core.variants import Variant
from repro.workloads.isp import large_isp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    workload = large_isp(seed=args.seed, duration=args.hours * 3600.0)
    recorder = ResultRecorder()
    run_variant(workload, Variant.MAIN, on_result=recorder)
    results = recorder.results
    print(f"correlated flows: {sum(1 for r in results if r.matched):,} "
          f"of {len(results):,}")

    # --- Spamhaus-DBL-style join (Figure 5) -------------------------------
    dbl = DomainBlockList.from_categories(workload.universe.abuse.by_category)
    service_bytes = {}
    for result in results:
        if result.matched:
            service_bytes[result.service] = (
                service_bytes.get(result.service, 0) + result.flow.bytes_
            )
    abuse = analyze_abuse_traffic(service_bytes, dbl)
    print("\nDBL-listed traffic by category:")
    for category in DBL_CATEGORIES:
        domains = abuse.bytes_by_domain.get(category, {})
        total = sum(domains.values())
        print(f"  {category:<18s} {len(domains):4d} domains  {total / 1e9:8.2f} GB")
        curve = abuse.cumulative_curve(category)
        if curve:
            k = next((i for i, frac in curve if frac >= 0.8), len(curve))
            print(f"  {'':18s} top {k} domain(s) carry 80% of the category's bytes")
    print(f"  abuse byte share overall: {abuse.abuse_byte_share():.2%} (paper: ~0.5% incl. malformed)")

    # --- RFC 1035 validity (Section 5, invalid domain names) --------------
    invalid = analyze_invalid_domains(results)
    print("\nInvalid (RFC 1035-violating) domains:")
    print(f"  violating names          : {invalid.invalid_names} "
          f"({invalid.invalid_name_fraction:.1%} of names seen)")
    print(f"  underscore as offender   : {invalid.underscore_share:.0%} (paper: 87%)")
    print(f"  byte share               : {invalid.invalid_byte_share:.2%}")
    print(f"  clients replying         : {invalid.replying_client_fraction:.1%} "
          f"(paper: 2.7%)")
    print(f"  domains replied to       : {invalid.replied_domain_fraction:.1%} "
          f"(paper: 23.6%)")
    print(f"  reply ports              : {dict(invalid.reply_ports)} "
          f"(paper: OpenVPN, Kerberos)")


if __name__ == "__main__":
    main()
