#!/usr/bin/env python3
"""The live pipeline: threaded FlowDNS over real wire-format streams.

Everything here travels in wire format, exactly like an ISP deployment:
DNS responses are RFC 1035 messages (with name compression), flows are
NetFlow v9 export datagrams decoded by a stateful collector. The
threaded engine runs receiver, FillUp, LookUp and Write workers over
bounded stream buffers (the paper's loss points) and writes TSV output.

Run with:  python examples/live_pipeline.py
"""

import io
import time

from repro import FlowDNSConfig, FlowExporter, ThreadedEngine
from repro.core.writer import parse_result_line
from repro.dns.wire import encode_message, DnsMessage, Question
from repro.dns.rr import RRType, a_record, cname_record
from repro.streams.stream import take
from repro.workloads.isp import large_isp


def dns_wire_stream(workload, limit=3000):
    """(ts, wire-bytes) tuples, one message per resolution."""
    out = []
    for resolution in take(workload._resolutions(), limit):
        if not resolution.visible:
            continue
        msg = DnsMessage()
        msg.questions.append(Question(resolution.chain[0], resolution.rtype))
        cname_ttl = resolution.cname_ttl
        for owner, target in zip(resolution.chain, resolution.chain[1:]):
            msg.answers.append(cname_record(owner, target, cname_ttl))
        for ip in resolution.ips:
            if resolution.rtype == RRType.A:
                msg.answers.append(a_record(resolution.chain[-1], ip, resolution.a_ttl))
        if not msg.answers:
            continue
        out.append((resolution.ts, encode_message(msg)))
    return out


def main() -> None:
    workload = large_isp(seed=3, duration=1200.0, n_benign=300, warmup=600.0)

    print("building wire-format streams ...")
    dns_stream = dns_wire_stream(workload)
    flows = take(workload.flow_records(), 20000)
    v4_flows = [f for f in flows if f.src_ip.version == 4]
    exporter = FlowExporter(version=9, batch_size=24)
    datagrams = list(exporter.export(v4_flows))
    print(f"  {len(dns_stream)} DNS messages, {len(datagrams)} NetFlow v9 datagrams "
          f"({len(v4_flows)} flows)")

    class DelayedDatagrams:
        """Let the FillUp side settle before flows arrive (like warm-up)."""

        def __iter__(self):
            time.sleep(0.5)
            return iter(datagrams)

    sink = io.StringIO()
    config = FlowDNSConfig(fillup_workers_per_stream=2, lookup_workers_per_stream=4)
    engine = ThreadedEngine(config, sink=sink)

    start = time.perf_counter()
    report = engine.run([dns_stream], [DelayedDatagrams()])
    elapsed = time.perf_counter() - start

    print(f"\npipeline drained in {elapsed:.1f} s wall time")
    print(f"  flows processed   : {report.flow_records:,} "
          f"({report.flow_records / elapsed:,.0f} rec/s — the paper's Go system "
          f"does ~1M rec/s on 128 cores)")
    print(f"  correlation rate  : {report.correlation_rate:.1%}")
    print(f"  stream loss       : {report.overall_loss_rate:.3%}")

    rows = [parse_result_line(line) for line in sink.getvalue().splitlines()]
    rows = [r for r in rows if r and r["service"]]
    print("\nsample output rows:")
    for row in rows[:5]:
        print(f"  {row['ts']:10.1f}  {row['src_ip']:>15s} -> {row['dst_ip']:<15s} "
              f"{row['bytes']:>8d} B  {row['service']}")


if __name__ == "__main__":
    main()
