#!/usr/bin/env python3
"""The live service, end to end: asyncio FlowDNS over real sockets.

The paper's deployment shape in one process: the engine binds a UDP
endpoint for NetFlow/IPFIX exports and a TCP server for length-framed
DNS messages (RFC 1035 §4.2.2), exactly what `flowdns serve` runs; this
script then plays both the ISP resolver (DNS over TCP) and the router
(NetFlow v9 over UDP) against it from the main thread, and finally asks
the engine to drain and report.

Everything travels in wire format over the loopback interface — socket
receive, columnar decode, correlate, TSV write.

Run with:  python examples/live_async_pipeline.py
"""

import io
import socket
import threading
import time

from repro import FlowDNSConfig, FlowExporter
from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest
from repro.core.writer import parse_result_line
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.records import FlowRecord

N_SERVICES = 120
FLOWS_PER_SERVICE = 40


def build_dns_wires():
    """RFC 1035 messages: every service resolves through a short chain."""
    wires = []
    for i in range(N_SERVICES):
        name = f"svc{i}.example"
        msg = DnsMessage()
        msg.questions.append(Question(name, RRType.A))
        if i % 4 == 0:
            msg.answers.append(cname_record(name, f"edge{i}.cdn.net", 600))
            msg.answers.append(a_record(f"edge{i}.cdn.net", f"10.44.{i // 250}.{i % 250 + 1}", 120))
        else:
            msg.answers.append(a_record(name, f"10.44.{i // 250}.{i % 250 + 1}", 300))
        wires.append(encode_message(msg))
    return wires


def build_flow_datagrams():
    flows = [
        FlowRecord(ts=30.0 + (i % 60), src_ip=f"10.44.0.{i % N_SERVICES + 1}",
                   dst_ip="100.64.0.1", bytes_=200 + i % 97)
        for i in range(N_SERVICES * FLOWS_PER_SERVICE)
    ]
    return len(flows), list(FlowExporter(version=9, batch_size=24).export(flows))


def main() -> None:
    sink = io.StringIO()
    # The resolver→collector path stamps messages on arrival; a fixed
    # clock keeps this demo's TTL windows aligned with the flow corpus.
    dns_ingest = TcpDnsIngest(clock=lambda: 10.0)
    flow_ingest = UdpFlowIngest()
    engine = AsyncEngine(FlowDNSConfig(), sink=sink)

    runner = threading.Thread(
        target=lambda: setattr(main, "report", engine.run([dns_ingest], [flow_ingest])),
        daemon=True,
    )
    runner.start()
    dns_addr = dns_ingest.wait_ready()
    flow_addr = flow_ingest.wait_ready()
    print(f"engine listening: DNS tcp://{dns_addr[0]}:{dns_addr[1]}  "
          f"NetFlow udp://{flow_addr[0]}:{flow_addr[1]}")

    wires = build_dns_wires()
    print(f"resolver: shipping {len(wires)} DNS messages over TCP ...")
    with socket.create_connection(dns_addr, timeout=10.0) as conn:
        conn.sendall(frame_messages(wires))
    expected_records = len(wires) + len(wires) // 4  # one A each, CNAMEs on every 4th
    deadline = time.perf_counter() + 30.0
    while engine.dns_records_seen < expected_records:
        if time.perf_counter() > deadline:
            raise SystemExit(
                f"DNS fill stalled at {engine.dns_records_seen}/{expected_records}"
            )
        time.sleep(0.01)

    n_flows, datagrams = build_flow_datagrams()
    print(f"router: exporting {n_flows} flows in {len(datagrams)} v9 datagrams over UDP ...")
    start = time.perf_counter()
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as udp:
        for datagram in datagrams:
            udp.sendto(datagram, flow_addr)
    while engine.flows_seen < n_flows and time.perf_counter() - start < 30.0:
        time.sleep(0.01)
    elapsed = time.perf_counter() - start

    engine.request_stop()
    runner.join(timeout=30.0)
    if runner.is_alive() or not hasattr(main, "report"):
        raise SystemExit("engine failed to drain and report within 30s")
    report = main.report

    print(f"\ndrained in {elapsed:.2f} s of live ingest "
          f"({report.flow_records / elapsed:,.0f} flows/s through real sockets)")
    print(f"  dns records       : {report.dns_records:,}")
    print(f"  flows correlated  : {report.matched_flows:,}/{report.flow_records:,} "
          f"({report.correlation_rate:.1%} of bytes)")
    for name, stats in report.ingest.items():
        print(f"  {name}: received={stats.received:,} dropped={stats.dropped:,} "
              f"malformed={stats.malformed:,}")

    rows = [parse_result_line(line) for line in sink.getvalue().splitlines()]
    rows = [r for r in rows if r and r["service"]]
    print("\nsample output rows:")
    for row in rows[:5]:
        print(f"  {row['ts']:8.1f}  {row['src_ip']:>12s} -> {row['dst_ip']:<12s} "
              f"{row['bytes']:>6d} B  {row['service']}")


if __name__ == "__main__":
    main()
