#!/usr/bin/env python3
"""Ablation study: re-run the paper's Section 4 benchmark variants.

Removes FlowDNS's techniques one at a time (No Split / No Clear-Up /
No Rotation / No Long Hashmaps, plus Appendix A.8's exact-TTL expiry)
over identical replays of a simulated half-day and prints the
correlation/CPU/memory comparison — the data behind Figures 3 and 7.

Run with:  python examples/ablation_study.py  [--hours N]
"""

import argparse

from repro.analysis import run_variant
from repro.core.variants import FIGURE3_VARIANTS, Variant
from repro.workloads.isp import large_isp

PAPER_CORRELATION = {
    Variant.MAIN: "81.7%",
    Variant.NO_CLEAR_UP: "82.8%",
    Variant.NO_LONG: "81.1%",
    Variant.NO_ROTATION: "79.5%",
    Variant.NO_SPLIT: "81.7%",
    Variant.EXACT_TTL: "(loss >90%)",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=8.0,
                        help="simulated hours per variant (default 8)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    duration = args.hours * 3600.0

    print(f"{'variant':<14s} {'corr rate':>10s} {'paper':>12s} "
          f"{'CPU %':>8s} {'mem GiB':>8s} {'loss':>8s}")
    print("-" * 66)
    # Sample finely enough that the exact-TTL loss feedback engages even
    # on short demo horizons (loss is computed per sample interval).
    sample_interval = min(3600.0, duration / 8.0)
    for variant in list(FIGURE3_VARIANTS) + [Variant.EXACT_TTL]:
        workload = large_isp(seed=args.seed, duration=duration)
        report = run_variant(workload, variant, sample_interval=sample_interval).report
        print(
            f"{variant.value:<14s} {report.correlation_rate:>9.1%} "
            f"{PAPER_CORRELATION[variant]:>12s} "
            f"{report.mean_cpu_percent:>8.0f} {report.mean_memory_gb:>8.1f} "
            f"{report.overall_loss_rate:>8.2%}"
        )

    print("\nReadings (paper Section 4):")
    print("  * No Clear-Up correlates best but its memory grows without bound;")
    print("  * No Rotation is cheapest on memory but loses ~2 points of correlation;")
    print("  * No Long saves nothing and still costs correlation;")
    print("  * No Split matches Main's correlation at lower CPU — the splits only")
    print("    matter at contention levels beyond this deployment;")
    print("  * exact-TTL expiry (Appendix A.8) melts down: the expiry scans starve")
    print("    the ingest path and the streams drop most of their data.")


if __name__ == "__main__":
    main()
