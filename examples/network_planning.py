#!/usr/bin/env python3
"""Network provisioning and planning: FlowDNS output ⋈ BGP (Figure 4).

Correlates a simulated day at the large ISP, joins the per-flow results
with a BGP RIB built from the CDN providers' announcements, and prints
the per-source-AS volume for the two streaming services S1 and S2 —
showing that S1 is served from one AS while S2 splits across two, the
input an ISP needs for peering negotiations and failover planning.

Run with:  python examples/network_planning.py  [--hours N]
"""

import argparse
from collections import defaultdict

from repro.analysis import ResultRecorder, run_variant
from repro.bgp import AsRegistry, Rib, correlate_with_bgp
from repro.core.variants import Variant
from repro.workloads.isp import large_isp

SERVICES = ("s1-streaming.tv", "s2-streaming.tv")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=29)
    args = parser.parse_args()

    workload = large_isp(seed=args.seed, duration=args.hours * 3600.0)
    recorder = ResultRecorder()
    run_variant(workload, Variant.MAIN, on_result=recorder)

    rib = Rib.from_entries(workload.hosting.rib_entries())
    registry = AsRegistry()
    series = correlate_with_bgp(recorder.results, rib, SERVICES, bucket_seconds=3600.0)

    for service in SERVICES:
        data = series[service]
        totals = data.total_by_asn()
        print(f"\n{service}: traffic by source AS")
        for asn, nbytes in sorted(totals.items(), key=lambda kv: kv[1], reverse=True):
            share = nbytes / sum(totals.values())
            print(f"  AS{asn} ({registry.name_of(asn)}): "
                  f"{nbytes / 1e9:8.2f} GB  ({share:.0%})")
        dominant = data.dominant_asns(coverage=0.95)
        print(f"  => 95% of {service} is served by {len(dominant)} AS(es): "
              f"{', '.join('AS%d' % a for a in dominant)}")

        # Hourly series (the diurnal curves of Figure 4).
        hourly = defaultdict(int)
        for (asn, hour), nbytes in data.buckets.items():
            hourly[hour] += nbytes
        bars = [hourly[h] for h in sorted(hourly)]
        peak = max(bars) if bars else 1
        print("  hourly volume: " + " ".join(
            "▁▂▃▄▅▆▇█"[min(7, int(8 * v / peak))] for v in bars
        ))

    print("\nPlanning reading: knowing which ASes serve a service tells the ISP")
    print("where a broken peering link would shift the load, and which content")
    print("providers to approach about on-net caches instead of third-party CDNs.")


if __name__ == "__main__":
    main()
