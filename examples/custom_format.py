#!/usr/bin/env python3
"""Correlating your own data: the configurable-format adapter.

The paper notes FlowDNS "is not bound to NetFlow data and can be adapted
to use other data formats containing IP addresses and timestamps in a
configuration file". This example exercises exactly that path: it writes
a vendor-style flow CSV (nfdump-ish column names, millisecond epochs)
and a dnstap-style JSON-lines DNS log, describes both with a mapping
config, and correlates them offline — the same thing the
``flowdns correlate`` CLI subcommand does.

Run with:  python examples/custom_format.py
"""

import io
import json
import tempfile
from pathlib import Path

from repro.core.adapter import iter_csv, iter_jsonl, load_mapping
from repro.core.config import FlowDNSConfig
from repro.core.simulation import SimulationEngine
from repro.core.writer import parse_result_line

MAPPING = {
    "dns": {
        "ts": {"field": "query_time", "unit": "ms"},
        "query": {"field": "qname"},
        "rtype": {"field": "qtype"},
        "ttl": {"field": "ttl"},
        "answer": {"field": "rdata"},
    },
    "flow": {
        "ts": {"field": "te", "unit": "ms"},  # nfdump 'time end'
        "src_ip": {"field": "sa"},
        "dst_ip": {"field": "da"},
        "bytes": {"field": "ibyt", "default": 0},
        "packets": {"field": "ipkt", "default": 1},
        "src_port": {"field": "sp", "default": 0},
        "dst_port": {"field": "dp", "default": 0},
    },
}

DNS_LOG = [
    {"query_time": 1_000, "qname": "shop.example.com", "qtype": "CNAME",
     "ttl": 900, "rdata": "shop.edge.acme-cdn.net"},
    {"query_time": 1_000, "qname": "shop.edge.acme-cdn.net", "qtype": "A",
     "ttl": 120, "rdata": "203.0.113.50"},
    {"query_time": 2_500, "qname": "mail.example.org", "qtype": "A",
     "ttl": 300, "rdata": "203.0.113.80"},
    # a record type FlowDNS ignores — counted, not an error:
    {"query_time": 3_000, "qname": "example.com", "qtype": "TXT",
     "ttl": 60, "rdata": "v=spf1 -all"},
]

FLOW_CSV_HEADER = "te,sa,da,ibyt,ipkt,sp,dp"
FLOW_ROWS = [
    "10000,203.0.113.50,100.64.7.1,250000,180,443,51000",
    "11000,203.0.113.50,100.64.7.2,91000,70,443,51001",
    "12000,203.0.113.80,100.64.7.3,4200,6,993,51002",
    "13000,198.51.100.99,100.64.7.4,7700,9,443,51003",  # never resolved
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        dns_path = Path(tmp) / "resolver.jsonl"
        dns_path.write_text("\n".join(json.dumps(r) for r in DNS_LOG))
        flow_path = Path(tmp) / "flows.csv"
        flow_path.write_text(FLOW_CSV_HEADER + "\n" + "\n".join(FLOW_ROWS))

        dns_adapter, flow_adapter = load_mapping(MAPPING)
        sink = io.StringIO()
        engine = SimulationEngine(FlowDNSConfig(), sink=sink)
        with open(dns_path) as dns_handle, open(flow_path) as flow_handle:
            report = engine.run(
                dns_adapter.adapt_many(iter_jsonl(dns_handle)),
                flow_adapter.adapt_many(iter_csv(flow_handle)),
            )

        print("adapter statistics:")
        print(f"  dns rows in={dns_adapter.stats.records_in} "
              f"adapted={dns_adapter.stats.records_out} "
              f"skipped-rtype={dns_adapter.stats.skipped_rtype}")
        print(f"  flow rows in={flow_adapter.stats.records_in} "
              f"adapted={flow_adapter.stats.records_out}")
        print(f"\ncorrelation rate: {report.correlation_rate:.1%} "
              f"({report.matched_flows}/{report.flow_records} flows)")
        print("\noutput rows:")
        for line in sink.getvalue().splitlines():
            row = parse_result_line(line)
            if row is None:
                continue
            service = row["service"] or "(uncorrelated)"
            print(f"  {row['src_ip']:>15s} -> {row['dst_ip']:<12s} "
                  f"{row['bytes']:>7d} B  {service}")


if __name__ == "__main__":
    main()
