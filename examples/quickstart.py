#!/usr/bin/env python3
"""Quickstart: correlate a synthetic ISP's DNS and Netflow streams.

Runs FlowDNS (the deterministic simulation engine) over one simulated
hour of a small ISP-like workload and prints the headline numbers the
paper reports: the byte correlation rate, the top correlated services,
and the resource-model figures.

Run with:  python examples/quickstart.py
"""

from repro import FlowDNSConfig, SimulationEngine, large_isp
from repro.analysis import ServiceBytesCollector, strip_warmup


def main() -> None:
    # One simulated hour at the (scaled-down) large European ISP.
    workload = large_isp(seed=7, duration=3600.0, n_benign=500)

    collector = ServiceBytesCollector()
    engine = SimulationEngine(
        FlowDNSConfig(),                  # Table 1 defaults: 3600/7200/10/6
        cost_params=workload.cost_params,
        sample_interval=600.0,
        worker_count=workload.worker_count,
        on_result=collector,
    )
    report = engine.run(workload.dns_records(), workload.flow_records())
    report = strip_warmup(report, workload.t0)

    print("FlowDNS quickstart — one simulated hour")
    print(f"  DNS records processed : {report.dns_records:,}")
    print(f"  Netflow records       : {report.flow_records:,}")
    print(f"  correlation rate      : {report.correlation_rate:.1%}  (paper: 81.7%)")
    print(f"  stream loss           : {report.overall_loss_rate:.4%} (paper: ~0.01%)")
    print(f"  max write delay       : {report.max_write_delay:.1f} s  (paper: <=45 s)")
    print(f"  modelled CPU          : {report.mean_cpu_percent:.0f} %")
    print(f"  modelled memory       : {report.mean_memory_gb:.1f} GiB")

    print("\nTop correlated services by volume:")
    top = sorted(collector.bytes_by_service.items(), key=lambda kv: kv[1], reverse=True)
    for name, nbytes in top[:8]:
        print(f"  {name:<40s} {nbytes / 1e9:7.2f} GB")


if __name__ == "__main__":
    main()
