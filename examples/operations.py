#!/usr/bin/env python3
"""Operating FlowDNS: state snapshots, restarts, and metrics.

Demonstrates the operational features around the correlator:

1. run the threaded pipeline and scrape its Prometheus-style metrics;
2. snapshot the DNS state at "shutdown";
3. "restart" with a fresh engine and show that, restored, it correlates
   flows immediately — while a cold engine misses everything until the
   maps re-fill (the availability gap snapshots exist to close);
4. render the terminal dashboard for a simulated run.

Run with:  python examples/operations.py
"""

import io
import time

from repro import FlowDNSConfig, SimulationEngine, ThreadedEngine, large_isp
from repro.analysis.figures import render_report_summary
from repro.analysis import strip_warmup
from repro.core.monitor import render_engine
from repro.storage.snapshot import dump_storage, load_storage
from repro.streams.stream import take


def main() -> None:
    workload = large_isp(seed=5, duration=900.0, n_benign=300, warmup=600.0)
    dns = list(workload.dns_records())
    flows = take(workload.flow_records(), 4000)
    cut = len(flows) // 2
    flows_before, flows_after = flows[:cut], flows[cut:]

    # --- 1. first run + metrics scrape ------------------------------------
    class Delayed:
        def __init__(self, items):
            self.items = items

        def __iter__(self):
            time.sleep(0.3)
            return iter(self.items)

    engine = ThreadedEngine(FlowDNSConfig())
    report1 = engine.run([dns], [Delayed(flows_before)])
    print(f"run 1: correlated {report1.correlation_rate:.1%} of bytes "
          f"({report1.matched_flows}/{report1.flow_records} flows)")
    print("\nscraped metrics (excerpt):")
    for line in render_engine(engine).splitlines():
        if "storage_entries" in line and not line.startswith("#"):
            print(f"  {line}")

    # --- 2. snapshot at shutdown -------------------------------------------
    snapshot = io.StringIO()
    entries = dump_storage(engine.storage, snapshot)
    print(f"\nsnapshot written: {entries} entries, "
          f"{len(snapshot.getvalue()) / 1024:.0f} KiB of JSON")

    # --- 3. cold restart vs restored restart --------------------------------
    cold = ThreadedEngine(FlowDNSConfig())
    cold_report = cold.run([[]], [flows_after])

    restored = ThreadedEngine(FlowDNSConfig())
    snapshot.seek(0)
    load_storage(restored.storage, snapshot)
    restored_report = restored.run([[]], [flows_after])

    print(f"\nafter restart (no new DNS records yet):")
    print(f"  cold engine     : {cold_report.correlation_rate:6.1%} of bytes correlated")
    print(f"  restored engine : {restored_report.correlation_rate:6.1%} of bytes correlated")

    # --- 4. dashboard for a longer simulated run ----------------------------
    sim_workload = large_isp(seed=5, duration=6 * 3600.0)
    sim = SimulationEngine(FlowDNSConfig(), cost_params=sim_workload.cost_params,
                           worker_count=sim_workload.worker_count,
                           sample_interval=1800.0)
    sim_report = sim.run(sim_workload.dns_records(), sim_workload.flow_records())
    sim_report = strip_warmup(sim_report, sim_workload.t0)
    print()
    print(render_report_summary(sim_report, title="six simulated hours, large ISP"))


if __name__ == "__main__":
    main()
