"""The Active / Inactive / Long rotating store (Section 3.1, Table 1).

FlowDNS cannot expire DNS records by exact TTL (Appendix A.8 shows that
collapses under contention) and cannot keep them forever (memory). Its
answer is a three-tier store:

* **Active** — where new records with TTL below the clear-up interval go;
* **Inactive** — a copy of the previous Active generation, made at each
  clear-up ("buffer rotation"), so lookups shortly after a clear-up still
  hit recently-seen records;
* **Long** — records whose TTL is at least the clear-up interval; never
  cleared (or cleared much less frequently).

Lookups walk Active → Inactive → Long (Algorithm 2's ``deepLookUp``).

One :class:`StoreBank` implements the triple for one record family
(IP-NAME or NAME-CNAME) across ``num_splits`` label splits. Ablation flags
(``rotation_enabled``, ``clear_up_enabled``, ``long_enabled``) turn the
bank into the paper's *No Rotation* / *No Clear-Up* / *No Long Hashmaps*
variants without code duplication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.concurrent_map import DEFAULT_SHARD_COUNT, ConcurrentMap
from repro.util.errors import ConfigError


class Tier(Enum):
    """Which hashmap a lookup was served from."""

    ACTIVE = "active"
    INACTIVE = "inactive"
    LONG = "long"


@dataclass
class RotatingStoreStats:
    """Lifetime counters for one bank."""

    puts: int = 0
    puts_long: int = 0
    overwrites: int = 0
    rotations: int = 0
    entries_rotated: int = 0
    entries_cleared: int = 0
    #: Entries dropped by the ``max_entries`` memory bound (oldest-first),
    #: distinct from ``entries_cleared`` (scheduled clear-up rounds).
    evictions: int = 0
    hits: Dict[str, int] = field(default_factory=lambda: {t.value: 0 for t in Tier})
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.misses + sum(self.hits.values())

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return (lookups - self.misses) / lookups if lookups else 0.0


class StoreBank:
    """Active/Inactive/Long hashmap triple over ``num_splits`` splits."""

    def __init__(
        self,
        clear_up_interval: float,
        num_splits: int = 1,
        shard_count: int = DEFAULT_SHARD_COUNT,
        rotation_enabled: bool = True,
        clear_up_enabled: bool = True,
        long_enabled: bool = True,
        long_clear_every: int = 0,
        max_entries: int = 0,
    ):
        if clear_up_interval <= 0:
            raise ConfigError("clear_up_interval must be positive")
        if num_splits <= 0:
            raise ConfigError("num_splits must be positive")
        if max_entries < 0:
            raise ConfigError("max_entries must be non-negative")
        self.clear_up_interval = float(clear_up_interval)
        self.num_splits = num_splits
        #: Memory bound per constituent hashmap (each tier × split map);
        #: 0 = unbounded (the paper's deployment relies on clear-up alone,
        #: but a week-long service under CNAME churn needs a hard cap).
        self.max_entries = max_entries
        self.rotation_enabled = rotation_enabled
        self.clear_up_enabled = clear_up_enabled
        self.long_enabled = long_enabled
        # "never cleared or are cleared much less frequently": 0 = never;
        # k > 0 = cleared on every k-th clear-up round.
        self.long_clear_every = long_clear_every
        self.stats = RotatingStoreStats()
        self._active = [ConcurrentMap(shard_count) for _ in range(num_splits)]
        self._inactive = [ConcurrentMap(shard_count) for _ in range(num_splits)]
        self._long = [ConcurrentMap(shard_count) for _ in range(num_splits)]
        self._last_clear_ts: Optional[float] = None
        self._clear_rounds = 0
        self._clear_lock = threading.Lock()

    def _split(self, label: int) -> int:
        return label % self.num_splits

    def put(self, label: int, key: str, value: str, ttl: float, ts: float) -> None:
        """Insert one record, running the clear-up check first (Algorithm 1).

        The clear-up clock is driven by *record timestamps*, not wall time,
        so offline replays behave identically to live operation.
        """
        self.maybe_clear_up(ts)
        n = self._split(label)
        goes_long = self.long_enabled and ttl >= self.clear_up_interval
        target = self._long[n] if goes_long else self._active[n]
        previous = target.get(key)
        if previous is not None and previous != value:
            # Same key, new name: the overwrite the paper's accuracy
            # analysis quantifies (multiple domains on one IP).
            self.stats.overwrites += 1
        target.set(key, value)
        self.stats.puts += 1
        if goes_long:
            self.stats.puts_long += 1
        if self.max_entries:
            self._enforce_cap(target)

    def _enforce_cap(self, cmap: ConcurrentMap) -> None:
        """Trim one constituent map back to ``max_entries``, oldest first."""
        overflow = len(cmap) - self.max_entries
        if overflow > 0:
            self.stats.evictions += cmap.evict_oldest(overflow)

    def _clear_up_due(self, ts: float) -> bool:
        """Cheap unguarded check mirroring maybe_clear_up's precondition."""
        if not self.clear_up_enabled:
            return False
        last = self._last_clear_ts
        return last is None or ts - last >= self.clear_up_interval

    def put_many(self, entries: Iterable[Tuple[int, str, str, float, float]]) -> None:
        """Insert many ``(label, key, value, ttl, ts)`` records, batched.

        Algorithm 1 with the per-record costs amortised: the clear-up
        check per record is a float compare, the rotation itself runs at
        exactly the record boundaries where per-record puts would run it
        (the batch is split there), and map writes cost one lock
        acquisition per touched shard per segment.
        """
        batch = entries if isinstance(entries, list) else list(entries)
        if not batch:
            return
        start = 0
        for i, entry in enumerate(batch):
            if self._clear_up_due(entry[4]):
                if start < i:
                    self._put_group(batch[start:i])
                    start = i
                self.maybe_clear_up(entry[4])
        self._put_group(batch[start:])

    def _put_group(self, entries: List[Tuple[int, str, str, float, float]]) -> None:
        """Insert one rotation-free segment with batched map writes."""
        groups: Dict[Tuple[int, bool], List[Tuple[str, str]]] = {}
        split = self._split
        long_enabled = self.long_enabled
        interval = self.clear_up_interval
        for label, key, value, ttl, _ts in entries:
            goes_long = long_enabled and ttl >= interval
            groups.setdefault((split(label), goes_long), []).append((key, value))
        puts_long = 0
        for (n, goes_long), pairs in groups.items():
            target = self._long[n] if goes_long else self._active[n]
            self.stats.overwrites += target.set_many(pairs)
            if goes_long:
                puts_long += len(pairs)
            if self.max_entries:
                self._enforce_cap(target)
        self.stats.puts += len(entries)
        self.stats.puts_long += puts_long

    def deep_lookup_many(self, labeled_keys: Iterable[Tuple[int, str]]) -> Dict[str, str]:
        """Batched deepLookUp over unique ``(label, key)`` pairs.

        Walks Active → Inactive → Long like :meth:`deep_lookup` but with
        one lock acquisition per map shard per tier. Returns ``{key:
        value}`` for the hits; missing keys are absent. Tier hit counters
        are updated in bulk.
        """
        by_split: Dict[int, List[str]] = {}
        split = self._split
        for label, key in labeled_keys:
            by_split.setdefault(split(label), []).append(key)
        out: Dict[str, str] = {}
        hits = self.stats.hits
        for n, keys in by_split.items():
            found = self._active[n].get_many(keys)
            hits[Tier.ACTIVE.value] += len(found)
            out.update(found)
            missing = [k for k in keys if k not in found]
            if missing:
                found = self._inactive[n].get_many(missing)
                hits[Tier.INACTIVE.value] += len(found)
                out.update(found)
                missing = [k for k in missing if k not in found]
            if missing:
                found = self._long[n].get_many(missing)
                hits[Tier.LONG.value] += len(found)
                out.update(found)
                missing = [k for k in missing if k not in found]
            self.stats.misses += len(missing)
        return out

    def deep_lookup(self, label: int, key: str) -> Tuple[Optional[str], Optional[Tier]]:
        """Algorithm 2's deepLookUp: Active, then Inactive, then Long."""
        n = self._split(label)
        value = self._active[n].get(key)
        if value is not None:
            self.stats.hits[Tier.ACTIVE.value] += 1
            return value, Tier.ACTIVE
        value = self._inactive[n].get(key)
        if value is not None:
            self.stats.hits[Tier.INACTIVE.value] += 1
            return value, Tier.INACTIVE
        value = self._long[n].get(key)
        if value is not None:
            self.stats.hits[Tier.LONG.value] += 1
            return value, Tier.LONG
        self.stats.misses += 1
        return None, None

    def put_active(self, label: int, key: str, value: str) -> None:
        """Direct Active insert, used for CNAME chain memoisation (step 7)."""
        target = self._active[self._split(label)]
        target.set(key, value)
        self.stats.puts += 1
        if self.max_entries:
            self._enforce_cap(target)

    def maybe_clear_up(self, ts: float) -> bool:
        """Rotate + clear when a clear-up interval has elapsed.

        Mirrors Algorithm 1: ``if d.ts - lastClearUpTs >= interval`` then
        Inactive = Active; Active = {}. With rotation disabled the Active
        maps are simply cleared; with clear-up disabled nothing happens.
        """
        if not self.clear_up_enabled:
            return False
        # Cheap unguarded pre-check; the lock only serialises the rare
        # rotation itself, not the per-record fast path.
        last = self._last_clear_ts
        if last is not None and ts - last < self.clear_up_interval:
            return False
        with self._clear_lock:
            if self._last_clear_ts is None:
                self._last_clear_ts = ts
                return False
            if ts - self._last_clear_ts < self.clear_up_interval:
                return False  # another worker rotated while we waited
            self._run_clear_up()
            self._last_clear_ts = ts
            return True

    def _run_clear_up(self) -> None:
        self._clear_rounds += 1
        for n in range(self.num_splits):
            if self.rotation_enabled:
                self._inactive[n].replace_contents(self._active[n])
                self.stats.entries_rotated += len(self._inactive[n])
            self.stats.entries_cleared += self._active[n].clear()
        if self.long_clear_every and self._clear_rounds % self.long_clear_every == 0:
            for n in range(self.num_splits):
                self.stats.entries_cleared += self._long[n].clear()
        if self.max_entries:
            # Rotation boundary enforcement: the rotated-in inactive copy
            # and the never-cleared long tier are trimmed here (puts only
            # police the map they touched).
            for n in range(self.num_splits):
                self._enforce_cap(self._inactive[n])
                self._enforce_cap(self._long[n])
        self.stats.rotations += 1

    def force_clear_up(self) -> None:
        """Run a clear-up round immediately (used by tests and A.8 harness)."""
        self._run_clear_up()

    def entry_counts(self) -> Dict[str, int]:
        """Entry totals per tier — the memory model's primary input."""
        return {
            Tier.ACTIVE.value: sum(len(m) for m in self._active),
            Tier.INACTIVE.value: sum(len(m) for m in self._inactive),
            Tier.LONG.value: sum(len(m) for m in self._long),
        }

    def total_entries(self) -> int:
        return sum(self.entry_counts().values())

    def contended_acquisitions(self) -> int:
        maps = self._active + self._inactive + self._long
        return sum(m.contended_acquisitions for m in maps)

    def split_sizes(self) -> List[int]:
        """Active entries per split — used to test label spread."""
        return [len(m) for m in self._active]


class RotatingStore:
    """The full FlowDNS internal storage: IP-NAME and NAME-CNAME banks.

    Keys follow the paper exactly: the hashmap key is the DNS *answer*
    (the IP address for A/AAAA, the canonical name for CNAME) and the
    value is the *query* name.
    """

    def __init__(self, ip_name: StoreBank, name_cname: StoreBank):
        self.ip_name = ip_name
        self.name_cname = name_cname

    def total_entries(self) -> int:
        return self.ip_name.total_entries() + self.name_cname.total_entries()

    def entry_counts(self) -> Dict[str, Dict[str, int]]:
        return {
            "ip_name": self.ip_name.entry_counts(),
            "name_cname": self.name_cname.entry_counts(),
        }
