"""Per-record exact-TTL expiry store — the design Appendix A.8 rejects.

This store honours each DNS record's own TTL: a lookup only succeeds while
``record_ts + ttl > now``, and a background clear-up pass walks the whole
map removing expired entries. The paper measured this variant at the large
ISP and saw >90 % stream loss and double the memory within an hour,
because the full-map expiry scans hold the shared maps while the streams
keep arriving. We reproduce that failure mode in the simulation's cost
model: the scan cost here is real (O(total entries) per sweep) and is
charged to the CPU budget, starving the ingest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.concurrent_map import DEFAULT_SHARD_COUNT, ConcurrentMap
from repro.util.errors import ConfigError


@dataclass
class ExactTtlStats:
    puts: int = 0
    hits: int = 0
    misses: int = 0
    expired_on_read: int = 0
    sweeps: int = 0
    swept_entries: int = 0
    sweep_scanned: int = 0
    #: Entries dropped by the ``max_entries`` memory bound (oldest-first),
    #: on top of the TTL expiry the sweeps perform.
    evictions: int = 0


class ExactTtlStore:
    """Map of key → (value, expiry_ts) with exact expiry semantics."""

    def __init__(
        self,
        num_splits: int = 1,
        shard_count: int = DEFAULT_SHARD_COUNT,
        sweep_interval: float = 60.0,
        max_entries: int = 0,
    ):
        if num_splits <= 0:
            raise ConfigError("num_splits must be positive")
        if sweep_interval <= 0:
            raise ConfigError("sweep_interval must be positive")
        if max_entries < 0:
            raise ConfigError("max_entries must be non-negative")
        self.num_splits = num_splits
        self.sweep_interval = float(sweep_interval)
        #: Memory bound per split map; 0 = unbounded. Exact-TTL's sweeps
        #: only remove *expired* entries — under churn the live set alone
        #: can grow without bound, so the service cap applies here too.
        self.max_entries = max_entries
        self.stats = ExactTtlStats()
        self._maps = [ConcurrentMap(shard_count) for _ in range(num_splits)]
        self._last_sweep_ts: Optional[float] = None

    def _split(self, label: int) -> int:
        return label % self.num_splits

    def put(self, label: int, key: str, value: str, ttl: float, ts: float) -> None:
        """Store a record that will expire at ``ts + ttl``."""
        target = self._maps[self._split(label)]
        target.set(key, (value, ts + ttl))
        self.stats.puts += 1
        if self.max_entries:
            self._enforce_cap(target)

    def _enforce_cap(self, cmap: ConcurrentMap) -> None:
        """Trim one split map back to ``max_entries``, oldest first."""
        overflow = len(cmap) - self.max_entries
        if overflow > 0:
            self.stats.evictions += cmap.evict_oldest(overflow)

    def put_many(self, entries: Iterable[Tuple[int, str, str, float, float]]) -> None:
        """Batched :meth:`put` of ``(label, key, value, ttl, ts)`` records.

        Same final state and counters as per-record puts (sweeps stay
        timestamp-driven via :meth:`maybe_sweep`, which puts never run),
        but one lock acquisition per touched shard and one cached shard
        hash per distinct key.
        """
        by_split: Dict[int, List[Tuple[str, Tuple[str, float]]]] = {}
        split = self._split
        count = 0
        for label, key, value, ttl, ts in entries:
            by_split.setdefault(split(label), []).append((key, (value, ts + ttl)))
            count += 1
        for n, pairs in by_split.items():
            self._maps[n].set_many(pairs)
            if self.max_entries:
                self._enforce_cap(self._maps[n])
        self.stats.puts += count

    def lookup(self, label: int, key: str, now: float) -> Optional[str]:
        """Return the value only while the record's own TTL is live.

        The correlation condition is the paper's A.8 inequality
        ``TTL_dns + Timestamp_dns >= Timestamp_netflow`` (a record is
        usable until it expires). Expired entries found on the read path
        are removed eagerly.
        """
        entry = self._maps[self._split(label)].get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        value, expiry = entry
        if expiry < now:
            self._maps[self._split(label)].pop(key)
            self.stats.expired_on_read += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def maybe_sweep(self, now: float) -> int:
        """Run the periodic full-map expiry scan when it is due.

        Returns the number of entries *scanned* (the cost driver), not
        removed. This is the "regular process to clear-up the expired DNS
        records" from A.8 whose cost grows with the map.
        """
        if self._last_sweep_ts is None:
            self._last_sweep_ts = now
            return 0
        if now - self._last_sweep_ts < self.sweep_interval:
            return 0
        self._last_sweep_ts = now
        return self.sweep(now)

    def sweep(self, now: float) -> int:
        """Walk every entry, dropping expired ones; returns entries scanned."""
        scanned = 0
        for cmap in self._maps:
            snapshot = cmap.snapshot()
            scanned += len(snapshot)
            for key, (_value, expiry) in snapshot.items():
                if expiry < now:
                    cmap.pop(key)
                    self.stats.swept_entries += 1
        self.stats.sweeps += 1
        self.stats.sweep_scanned += scanned
        if self.max_entries:
            for cmap in self._maps:
                self._enforce_cap(cmap)
        return scanned

    def total_entries(self) -> int:
        return sum(len(m) for m in self._maps)

    def entry_counts(self) -> Dict[str, int]:
        """Shape-compatible with StoreBank.entry_counts for the mem model."""
        return {"active": self.total_entries(), "inactive": 0, "long": 0}

    def contended_acquisitions(self) -> int:
        return sum(m.contended_acquisitions for m in self._maps)
