"""Storage snapshots: persist and restore FlowDNS's DNS state.

Operationally, restarting FlowDNS starts with empty hashmaps and
correlation stays degraded until the maps re-fill (up to a clear-up
interval). Snapshotting the storage periodically and restoring on start
removes that gap. The format is a versioned JSON document covering the
Active/Inactive/Long tiers of both banks, including the clear-up
bookkeeping, so a restored store rotates on schedule.

Two layers:

* :func:`dump_storage` / :func:`load_storage` — stream-level, used by
  tests and callers that manage their own files. Restore is
  **all-or-nothing**: the whole document is validated against the target
  storage before any map is touched, so a mismatched or truncated
  snapshot can never leave the store half-wiped.
* :func:`save_snapshot` / :func:`load_snapshot` — path-level, crash-safe.
  ``save_snapshot`` writes to a temp file in the same directory, fsyncs,
  and atomically renames over the target: a crash (or full disk) mid-write
  leaves the previous snapshot intact, never a truncated one.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, TextIO, Tuple

from repro.storage.rotating import StoreBank
from repro.util.errors import ParseError

SNAPSHOT_VERSION = 1

_TIER_NAMES = ("active", "inactive", "long")


def _bank_state(bank: StoreBank) -> Dict:
    return {
        "clear_up_interval": bank.clear_up_interval,
        "num_splits": bank.num_splits,
        "last_clear_ts": bank._last_clear_ts,
        "tiers": {
            "active": [m.snapshot() for m in bank._active],
            "inactive": [m.snapshot() for m in bank._inactive],
            "long": [m.snapshot() for m in bank._long],
        },
    }


def _check_bank_state(bank: StoreBank, state: Dict, bank_name: str) -> None:
    """Validate one bank's state against its target — no mutation here."""
    if not isinstance(state, dict):
        raise ParseError(f"snapshot bank {bank_name!r} is not an object")
    if state.get("num_splits") != bank.num_splits:
        raise ParseError(
            f"snapshot bank {bank_name!r} has {state.get('num_splits')} "
            f"splits, bank has {bank.num_splits}"
        )
    if state.get("clear_up_interval") != bank.clear_up_interval:
        raise ParseError(
            f"snapshot bank {bank_name!r} was taken with clear_up_interval="
            f"{state.get('clear_up_interval')!r}, bank has "
            f"{bank.clear_up_interval!r}"
        )
    tiers = state.get("tiers")
    if not isinstance(tiers, dict):
        raise ParseError(f"snapshot bank {bank_name!r} has no tiers")
    for tier_name in _TIER_NAMES:
        tier_state = tiers.get(tier_name)
        if not isinstance(tier_state, list) or len(tier_state) != bank.num_splits:
            raise ParseError(
                f"snapshot bank {bank_name!r} tier {tier_name!r} has wrong "
                f"split count"
            )
        for entries in tier_state:
            if not isinstance(entries, dict):
                raise ParseError(
                    f"snapshot bank {bank_name!r} tier {tier_name!r} holds a "
                    f"non-object split"
                )


def _apply_bank_state(bank: StoreBank, state: Dict) -> None:
    """Overwrite a pre-validated bank's maps with the snapshot contents."""
    bank._last_clear_ts = state["last_clear_ts"]
    for tier_name, maps in (
        ("active", bank._active),
        ("inactive", bank._inactive),
        ("long", bank._long),
    ):
        for cmap, entries in zip(maps, state["tiers"][tier_name]):
            cmap.clear()
            if entries:
                cmap.set_many(list(entries.items()))


def dump_storage(storage, sink: TextIO) -> int:
    """Write a JSON snapshot of a DnsStorage's rotating banks.

    Returns the number of entries written. Exact-TTL storages are not
    snapshot-able (their entries expire by wall time; a restore would
    resurrect stale records), and raise :class:`ParseError`.
    """
    if storage.ip_bank is None:
        raise ParseError("exact-TTL storage cannot be snapshotted")
    document = {
        "version": SNAPSHOT_VERSION,
        "saved_at": time.time(),
        "ip_name": _bank_state(storage.ip_bank),
        "name_cname": _bank_state(storage.cname_bank),
    }
    json.dump(document, sink)
    return storage.total_entries()


def _validated_document(storage, source: TextIO) -> Dict:
    """Parse and fully validate a snapshot document — no mutation."""
    if storage.ip_bank is None:
        raise ParseError("exact-TTL storage cannot be restored into")
    try:
        document = json.load(source)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ParseError(f"snapshot is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ParseError("snapshot is not a JSON object")
    if document.get("version") != SNAPSHOT_VERSION:
        raise ParseError(f"unsupported snapshot version {document.get('version')!r}")
    banks: List[Tuple[StoreBank, str]] = [
        (storage.ip_bank, "ip_name"),
        (storage.cname_bank, "name_cname"),
    ]
    for bank, bank_name in banks:
        if bank_name not in document:
            raise ParseError(f"snapshot is missing bank {bank_name!r}")
        _check_bank_state(bank, document[bank_name], bank_name)
    return document


def load_storage(storage, source: TextIO) -> int:
    """Restore a snapshot into a compatibly configured DnsStorage.

    All-or-nothing: the whole document (version, both banks, every
    tier's split count and shape) is validated *before* any map is
    cleared, so an incompatible snapshot raises :class:`ParseError` with
    the target storage untouched. Returns the number of entries restored.
    """
    document = _validated_document(storage, source)
    _apply_bank_state(storage.ip_bank, document["ip_name"])
    _apply_bank_state(storage.cname_bank, document["name_cname"])
    return storage.total_entries()


def snapshot_saved_at(path: str) -> float:
    """The ``saved_at`` wall-clock stamp of a snapshot file (0.0 if absent)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        return float(document.get("saved_at") or 0.0)
    except (OSError, ValueError):
        return 0.0


def save_snapshot(storage, path: str) -> int:
    """Crash-safe snapshot write: temp file + fsync + atomic rename.

    The temp file lives in the target's directory (``os.replace`` must
    not cross filesystems) and is removed on any failure, so a crash or
    full disk mid-write leaves the previous snapshot intact. Returns the
    number of entries written.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(
        directory, f".{os.path.basename(path)}.{os.getpid()}.tmp"
    )
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            written = dump_storage(storage, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return written


def load_snapshot(storage, path: str) -> int:
    """Restore a snapshot file into ``storage`` (all-or-nothing).

    Raises :class:`ParseError` for corrupt/mismatched snapshots and
    :class:`OSError` for unreadable paths; callers that must degrade
    gracefully (``serve`` restore-on-start) catch both, warn, and start
    empty. Returns the number of entries restored.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return load_storage(storage, handle)
