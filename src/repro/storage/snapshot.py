"""Storage snapshots: persist and restore FlowDNS's DNS state.

Operationally, restarting FlowDNS starts with empty hashmaps and
correlation stays degraded until the maps re-fill (up to a clear-up
interval). Snapshotting the storage on shutdown and restoring on start
removes that gap. The format is a versioned JSON document covering the
Active/Inactive/Long tiers of both banks, including the clear-up
bookkeeping, so a restored store rotates on schedule.
"""

from __future__ import annotations

import json
from typing import Dict, TextIO

from repro.storage.rotating import StoreBank
from repro.util.errors import ParseError

SNAPSHOT_VERSION = 1


def _bank_state(bank: StoreBank) -> Dict:
    return {
        "clear_up_interval": bank.clear_up_interval,
        "num_splits": bank.num_splits,
        "last_clear_ts": bank._last_clear_ts,
        "tiers": {
            "active": [m.snapshot() for m in bank._active],
            "inactive": [m.snapshot() for m in bank._inactive],
            "long": [m.snapshot() for m in bank._long],
        },
    }


def _restore_bank(bank: StoreBank, state: Dict) -> None:
    if state["num_splits"] != bank.num_splits:
        raise ParseError(
            f"snapshot has {state['num_splits']} splits, bank has {bank.num_splits}"
        )
    bank._last_clear_ts = state["last_clear_ts"]
    for tier_name, maps in (
        ("active", bank._active),
        ("inactive", bank._inactive),
        ("long", bank._long),
    ):
        tier_state = state["tiers"][tier_name]
        if len(tier_state) != len(maps):
            raise ParseError(f"snapshot tier {tier_name!r} has wrong split count")
        for cmap, entries in zip(maps, tier_state):
            cmap.clear()
            for key, value in entries.items():
                cmap.set(key, value)


def dump_storage(storage, sink: TextIO) -> int:
    """Write a JSON snapshot of a DnsStorage's rotating banks.

    Returns the number of entries written. Exact-TTL storages are not
    snapshot-able (their entries expire by wall time; a restore would
    resurrect stale records), and raise :class:`ParseError`.
    """
    if storage.ip_bank is None:
        raise ParseError("exact-TTL storage cannot be snapshotted")
    document = {
        "version": SNAPSHOT_VERSION,
        "ip_name": _bank_state(storage.ip_bank),
        "name_cname": _bank_state(storage.cname_bank),
    }
    json.dump(document, sink)
    return storage.total_entries()


def load_storage(storage, source: TextIO) -> int:
    """Restore a snapshot into a compatibly configured DnsStorage.

    Returns the number of entries restored.
    """
    if storage.ip_bank is None:
        raise ParseError("exact-TTL storage cannot be restored into")
    try:
        document = json.load(source)
    except json.JSONDecodeError as exc:
        raise ParseError(f"snapshot is not valid JSON: {exc}") from exc
    if document.get("version") != SNAPSHOT_VERSION:
        raise ParseError(f"unsupported snapshot version {document.get('version')!r}")
    _restore_bank(storage.ip_bank, document["ip_name"])
    _restore_bank(storage.cname_bank, document["name_cname"])
    return storage.total_entries()
