"""A lock-sharded concurrent hashmap, after Go's ``concurrent-map``.

The Go module FlowDNS builds on shards the key space over N independently
locked maps so concurrent readers/writers rarely touch the same lock. A
CPython dict is already thread-safe for single operations under the GIL,
but the *contention behaviour* matters for this reproduction: the
simulation's CPU model charges for contended acquisitions, and the
threaded engine genuinely benefits for compound operations
(get-then-set, snapshot, clear). So the sharding and its statistics are
implemented faithfully.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.util.errors import ConfigError

#: Go concurrent-map's default shard count.
DEFAULT_SHARD_COUNT = 32

#: Sentinel distinguishing "key absent" from "key stores None".
_MISSING = object()


def _fnv1a(key: str) -> int:
    """FNV-1a over the UTF-8 bytes — the same shard hash concurrent-map uses.

    This is the uncached reference; the hot paths go through
    :func:`fnv1a_cached` so each distinct (interned) key pays the
    per-byte Python loop once, not once per map operation.
    """
    h = 0x811C9DC5
    for byte in key.encode("utf-8", errors="surrogateescape"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


#: Bounded LRU over the pure-Python per-byte loop. Keys are the interned
#: hot strings (IP texts, domain names), so the common case is a C-level
#: dict hit on an object whose hash is already memoised.
fnv1a_cached = lru_cache(maxsize=1 << 16)(_fnv1a)


class ConcurrentMap:
    """Thread-safe string-keyed map sharded over independent locks."""

    def __init__(self, shard_count: int = DEFAULT_SHARD_COUNT):
        if shard_count <= 0:
            raise ConfigError("shard_count must be positive")
        self.shard_count = shard_count
        self._shards: List[Dict[str, object]] = [{} for _ in range(shard_count)]
        self._locks = [threading.Lock() for _ in range(shard_count)]
        self.contended_acquisitions = 0
        #: Where the next eviction sweep starts; see :meth:`evict_oldest`.
        self._evict_cursor = 0

    def _shard_index(self, key: str) -> int:
        return fnv1a_cached(key) % self.shard_count

    def shard_index_many(self, keys: Iterable[str]) -> List[int]:
        """Shard index per key, hashing each distinct key at most once.

        The batch entry point ``set_many``/``get_many`` use so a batch
        touching one hot key N times costs one cache probe per touch and
        zero re-hashing.
        """
        hash_of = fnv1a_cached
        count = self.shard_count
        return [hash_of(key) % count for key in keys]

    def _acquire(self, idx: int) -> None:
        lock = self._locks[idx]
        if not lock.acquire(blocking=False):
            self.contended_acquisitions += 1
            lock.acquire()

    def set(self, key: str, value) -> None:
        idx = self._shard_index(key)
        self._acquire(idx)
        try:
            self._shards[idx][key] = value
        finally:
            self._locks[idx].release()

    def set_many(self, pairs: Iterable[Tuple[str, object]]) -> int:
        """Store many ``(key, value)`` pairs, one lock acquisition per shard.

        Insertion order is preserved within each shard, so repeated keys
        keep last-write-wins semantics. Returns the number of keys whose
        previous value existed and differed (the fill path's overwrite
        counter); a stored value of ``None`` counts as existing.
        """
        batch = pairs if isinstance(pairs, list) else list(pairs)
        by_shard: Dict[int, List[Tuple[str, object]]] = {}
        for pair, idx in zip(batch, self.shard_index_many(p[0] for p in batch)):
            by_shard.setdefault(idx, []).append(pair)
        replaced = 0
        for idx, kvs in by_shard.items():
            self._acquire(idx)
            try:
                shard = self._shards[idx]
                for key, value in kvs:
                    previous = shard.get(key, _MISSING)
                    if previous is not _MISSING and previous != value:
                        replaced += 1
                    shard[key] = value
            finally:
                self._locks[idx].release()
        return replaced

    def get_many(self, keys: Iterable[str]) -> Dict[str, object]:
        """Fetch many keys with one lock acquisition per shard.

        Returns a dict of the keys that were present; missing keys are
        simply absent from the result.
        """
        key_list = keys if isinstance(keys, list) else list(keys)
        by_shard: Dict[int, List[str]] = {}
        for key, idx in zip(key_list, self.shard_index_many(key_list)):
            by_shard.setdefault(idx, []).append(key)
        out: Dict[str, object] = {}
        for idx, ks in by_shard.items():
            self._acquire(idx)
            try:
                shard = self._shards[idx]
                for key in ks:
                    value = shard.get(key)
                    if value is not None:
                        out[key] = value
            finally:
                self._locks[idx].release()
        return out

    def get(self, key: str, default=None):
        idx = self._shard_index(key)
        self._acquire(idx)
        try:
            return self._shards[idx].get(key, default)
        finally:
            self._locks[idx].release()

    def pop(self, key: str, default=None):
        idx = self._shard_index(key)
        self._acquire(idx)
        try:
            return self._shards[idx].pop(key, default)
        finally:
            self._locks[idx].release()

    def set_if_absent(self, key: str, value) -> bool:
        """Atomically insert; returns True when the key was newly set."""
        idx = self._shard_index(key)
        self._acquire(idx)
        try:
            if key in self._shards[idx]:
                return False
            self._shards[idx][key] = value
            return True
        finally:
            self._locks[idx].release()

    def update_with(self, key: str, fn: Callable[[Optional[object]], object]) -> object:
        """Atomically read-modify-write one key; returns the new value."""
        idx = self._shard_index(key)
        self._acquire(idx)
        try:
            new_value = fn(self._shards[idx].get(key))
            self._shards[idx][key] = new_value
            return new_value
        finally:
            self._locks[idx].release()

    def __contains__(self, key: str) -> bool:
        idx = self._shard_index(key)
        self._acquire(idx)
        try:
            return key in self._shards[idx]
        finally:
            self._locks[idx].release()

    def __len__(self) -> int:
        total = 0
        for idx in range(self.shard_count):
            self._acquire(idx)
            try:
                total += len(self._shards[idx])
            finally:
                self._locks[idx].release()
        return total

    def clear(self) -> int:
        """Empty every shard; returns how many entries were removed."""
        removed = 0
        for idx in range(self.shard_count):
            self._acquire(idx)
            try:
                removed += len(self._shards[idx])
                self._shards[idx].clear()
            finally:
                self._locks[idx].release()
        return removed

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time copy (shard-by-shard consistent)."""
        out: Dict[str, object] = {}
        for idx in range(self.shard_count):
            self._acquire(idx)
            try:
                out.update(self._shards[idx])
            finally:
                self._locks[idx].release()
        return out

    def items(self) -> Iterator[Tuple[str, object]]:
        """Iterate over a snapshot (safe against concurrent mutation)."""
        return iter(self.snapshot().items())

    def replace_contents(self, other: "ConcurrentMap") -> None:
        """Overwrite this map's contents with a snapshot of ``other``.

        Used by buffer rotation: "the current contents of the inactive
        hashmap will be overwritten by the new contents" (Section 3.1).
        """
        incoming = other.snapshot()
        self.clear()
        for key, value in incoming.items():
            self.set(key, value)

    def evict_oldest(self, count: int) -> int:
        """Drop up to ``count`` entries, oldest-inserted first per shard.

        CPython dicts preserve insertion order, so popping each shard's
        first keys is FIFO *within* a shard; across shards a rotating
        cursor spreads the eviction (proportionally to shard size for
        large sweeps, round-robin for the steady single-entry trim at
        the cap), making the whole-map order approximately FIFO.
        Returns how many entries were removed — the memory-bound
        enforcement primitive, not a cache policy.
        """
        if count <= 0:
            return 0
        removed = 0
        while removed < count:
            sizes = self.shard_sizes()
            total = sum(sizes)
            if total == 0:
                break
            remaining = count - removed
            # Start from a rotating cursor: small evictions (the steady
            # one-in-one-out trim at the cap) must cycle through the
            # shards rather than repeatedly draining the lowest-index
            # one, which would evict *recent* entries hashed there while
            # stale entries elsewhere survive.
            start = self._evict_cursor
            for offset in range(self.shard_count):
                idx = (start + offset) % self.shard_count
                size = sizes[idx]
                if size == 0 or remaining <= 0:
                    continue
                # Proportional share, at least 1 from every non-empty
                # shard so tiny shards cannot stall the loop.
                share = min(size, max(1, remaining * size // total))
                self._evict_cursor = (idx + 1) % self.shard_count
                self._acquire(idx)
                try:
                    shard = self._shards[idx]
                    victims = []
                    for key in shard:
                        if len(victims) >= share:
                            break
                        victims.append(key)
                    for key in victims:
                        del shard[key]
                    removed += len(victims)
                    remaining -= len(victims)
                finally:
                    self._locks[idx].release()
        return removed

    def shard_sizes(self) -> List[int]:
        """Per-shard entry counts — used to test hash spread uniformity."""
        sizes = []
        for idx in range(self.shard_count):
            self._acquire(idx)
            try:
                sizes.append(len(self._shards[idx]))
            finally:
                self._locks[idx].release()
        return sizes
