"""Storage substrate: the hashmaps at the heart of FlowDNS.

* :class:`ConcurrentMap` — a lock-sharded hashmap modelled on the Go
  ``concurrent-map`` module the paper uses ("which allows for
  high-performance concurrent reads and writes by sharding the map");
* :class:`RotatingStore` — the Active / Inactive / Long triple with
  buffer rotation and clear-up (Section 3.1, Table 1);
* :class:`ExactTtlStore` — the per-record TTL-expiry store the paper
  rejects in Appendix A.8, kept here so the A.8 experiment can be run.
"""

from repro.storage.concurrent_map import ConcurrentMap
from repro.storage.rotating import RotatingStore, RotatingStoreStats, StoreBank
from repro.storage.exact_ttl import ExactTtlStore
from repro.storage.snapshot import dump_storage, load_storage

__all__ = [
    "ConcurrentMap",
    "RotatingStore",
    "RotatingStoreStats",
    "StoreBank",
    "ExactTtlStore",
    "dump_storage",
    "load_storage",
]
