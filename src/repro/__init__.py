"""repro — a reproduction of *FlowDNS: Correlating Netflow and DNS Streams
at Scale* (Maghsoudlou, Gasser, Poese, Feldmann — CoNEXT '22).

FlowDNS answers, in near real time, the question "which service does this
traffic belong to?" by correlating an ISP's live Netflow streams with the
DNS responses its resolvers hand out. This package implements the full
system — the correlator, its rotating hashmap storage, both DNS and
Netflow wire substrates, ISP-scale synthetic workloads, and the BGP /
abuse-analysis use cases — plus the benchmark harness that regenerates
every figure and table of the paper's evaluation.

Quickstart::

    from repro import FlowDNSConfig, SimulationEngine, large_isp

    workload = large_isp(seed=7, duration=86400.0)
    engine = SimulationEngine(FlowDNSConfig(), cost_params=workload.cost_params)
    report = engine.run(workload.dns_records(), workload.flow_records())
    print(f"correlation rate: {report.correlation_rate:.1%}")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured comparison of every experiment.
"""

from repro.core import (
    AsyncEngine,
    CorrelationResult,
    CostModel,
    CostModelParams,
    DnsStorage,
    EngineReport,
    FillUpProcessor,
    FlowDNS,
    FlowDNSConfig,
    IntervalSample,
    LookUpProcessor,
    SimulationEngine,
    ThreadedEngine,
    Variant,
    config_for,
)
from repro.dns import DnsRecord, DnsMessage, RRType, check_domain, is_valid_domain
from repro.netflow import FlowCollector, FlowExporter, FlowRecord
from repro.storage import ConcurrentMap, RotatingStore, StoreBank
from repro.workloads import large_isp, small_isp, two_site_capture
from repro.bgp import PrefixTrie, Rib

__version__ = "1.0.0"

__all__ = [
    "FlowDNS",
    "FlowDNSConfig",
    "SimulationEngine",
    "ThreadedEngine",
    "AsyncEngine",
    "DnsStorage",
    "FillUpProcessor",
    "LookUpProcessor",
    "CorrelationResult",
    "CostModel",
    "CostModelParams",
    "EngineReport",
    "IntervalSample",
    "Variant",
    "config_for",
    "DnsRecord",
    "DnsMessage",
    "RRType",
    "check_domain",
    "is_valid_domain",
    "FlowRecord",
    "FlowCollector",
    "FlowExporter",
    "ConcurrentMap",
    "RotatingStore",
    "StoreBank",
    "large_isp",
    "small_isp",
    "two_site_capture",
    "PrefixTrie",
    "Rib",
    "__version__",
]
