"""Selective columnar DNS decode: wire payloads straight to column arrays.

The object decode path (:func:`repro.dns.wire.decode_message` →
:func:`repro.dns.stream.records_from_message`) materialises a
``Header``, a ``DnsMessage``, a ``Question`` per question and a
``ResourceRecord`` per record — then throws almost all of it away,
because FillUp (Section 3.2 step 2) only keeps answer-section
A/AAAA/CNAME records of NOERROR responses. That per-message object churn
is why ``dns_decode_msgs_per_sec`` plateaued around 20K while the
NetFlow lane's compiled/columnar path runs an order of magnitude hotter.

:func:`decode_fill_columns` parses *only what FillUp needs*, straight
into a :class:`DnsBatch` — the structure-of-arrays shape
:class:`repro.netflow.records.FlowBatch` established: parallel
``ts``/``name``/``rtype``/``ttl``/``rdata_text`` columns plus
per-message accounting (``messages``/``invalid``/``unknown_records``).
The header is one struct unpack plus flag masks (no ``Header``/enum
construction); non-response, non-NOERROR and unknown-opcode messages
short-circuit before any section walk; question, authority and
additional bodies are *walked by offset arithmetic* — names advance
through the shared per-message name-offset cache, fixed RR headers are
single unpacks — but never produce objects. Only answer-section
A/AAAA/CNAME rows land in the columns, with name decoding feeding the
:mod:`repro.util.interning` tables (``cached_ip_text`` turns packed
rdata into the same interned canonical text the object path produces
via ``str(ip_address)``), so downstream map keys hash-share with the
reference path byte for byte.

Parity contract (pinned by ``tests/test_dns_columnar_parity.py``): for
any payload sequence, the rows, stored records and FillUp counters are
identical to running each payload through ``filter_message`` and
``process_batch``. That includes the all-or-nothing message semantics
(a ParseError anywhere rolls back the whole message's rows), the
"valid but yields no storable record → invalid" rule, and the
unknown-RR tolerance (rtype/rclass outside the enums skip-and-count
per record instead of invalidating the message, in both paths).
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple, Union

from repro.dns.name import decode_name
from repro.dns.rr import RClass, RRType
from repro.dns.stream import DnsRecord
from repro.dns.wire import Opcode
from repro.util.errors import ParseError
from repro.util.interning import cached_ip_text, intern_string, ip_text_probe

_HEADER = struct.Struct("!HHHHHH")
_QFIXED = struct.Struct("!HH")
_RRFIXED = struct.Struct("!HHIH")

_TYPE_A = int(RRType.A)
_TYPE_NS = int(RRType.NS)
_TYPE_CNAME = int(RRType.CNAME)
_TYPE_PTR = int(RRType.PTR)
_TYPE_MX = int(RRType.MX)
_TYPE_AAAA = int(RRType.AAAA)

#: The enum universes as plain-int frozensets: membership tests on the
#: raw wire values, no enum construction on the hot path.
_KNOWN_TYPES = frozenset(int(t) for t in RRType)
_KNOWN_CLASSES = frozenset(int(c) for c in RClass)
_KNOWN_OPCODES = frozenset(int(o) for o in Opcode)

WirePayload = Union[bytes, bytearray, memoryview]


class DnsBatch:
    """A structure-of-arrays batch of FillUp-ready DNS stream rows.

    Parallel columns (one index = one storable answer record) plus the
    per-message accounting FillUp needs: ``messages`` payloads consumed,
    ``invalid`` of them rejected (unparseable / queries / error rcodes /
    no storable answers), ``unknown_records`` RRs skipped for carrying
    an rtype or rclass outside the enums. ``rtype`` holds the raw wire
    integer (1/5/28), never an enum — :meth:`record` rehydrates a
    :class:`DnsRecord` when parity tooling needs the object form.

    Mirrors :class:`repro.netflow.records.FlowBatch`: columns cross
    process boundaries as one flat tuple of primitive lists
    (:meth:`columns` / :meth:`from_columns`) so pickle never walks an
    object graph.
    """

    __slots__ = (
        "ts",
        "name",
        "rtype",
        "ttl",
        "rdata_text",
        "messages",
        "invalid",
        "unknown_records",
    )

    def __init__(self):
        self.ts: List[float] = []
        self.name: List[str] = []
        self.rtype: List[int] = []
        self.ttl: List[int] = []
        self.rdata_text: List[str] = []
        self.messages: int = 0
        self.invalid: int = 0
        self.unknown_records: int = 0

    def __len__(self) -> int:
        return len(self.name)

    def append_row(
        self, ts: float, name: str, rtype: int, ttl: int, rdata_text: str
    ) -> None:
        self.ts.append(ts)
        self.name.append(name)
        self.rtype.append(int(rtype))
        self.ttl.append(ttl)
        self.rdata_text.append(rdata_text)

    def append_from(self, other: "DnsBatch", index: int) -> None:
        """Copy one row out of another batch (router partitioning)."""
        self.ts.append(other.ts[index])
        self.name.append(other.name[index])
        self.rtype.append(other.rtype[index])
        self.ttl.append(other.ttl[index])
        self.rdata_text.append(other.rdata_text[index])

    def extend(self, other: "DnsBatch") -> None:
        """Append all of ``other``'s rows and fold its message counters."""
        self.ts.extend(other.ts)
        self.name.extend(other.name)
        self.rtype.extend(other.rtype)
        self.ttl.extend(other.ttl)
        self.rdata_text.extend(other.rdata_text)
        self.messages += other.messages
        self.invalid += other.invalid
        self.unknown_records += other.unknown_records

    def columns(self) -> Tuple:
        """Flat primitive-column tuple for IPC (no object graph)."""
        return (
            self.ts,
            self.name,
            self.rtype,
            self.ttl,
            self.rdata_text,
            self.messages,
            self.invalid,
            self.unknown_records,
        )

    @classmethod
    def from_columns(cls, cols: Tuple) -> "DnsBatch":
        batch = cls()
        (
            batch.ts,
            batch.name,
            batch.rtype,
            batch.ttl,
            batch.rdata_text,
            batch.messages,
            batch.invalid,
            batch.unknown_records,
        ) = cols
        return batch

    def record(self, index: int) -> DnsRecord:
        """Materialise row ``index`` as the object path's record."""
        return DnsRecord(
            self.ts[index],
            self.name[index],
            RRType(self.rtype[index]),
            self.ttl[index],
            self.rdata_text[index],
        )

    def to_records(self) -> List[DnsRecord]:
        """Materialise every row (parity tooling, never the hot path)."""
        return [self.record(i) for i in range(len(self.name))]


def _decode_answers_into(
    data: WirePayload,
    t: float,
    out_ts: List[float],
    out_name: List[str],
    out_rtype: List[int],
    out_ttl: List[int],
    out_rdata: List[str],
):
    """Parse one payload's storable answers into the columns.

    Returns the message's unknown-RR count, or ``None`` when the message
    is invalid — in which case any rows it contributed are rolled back,
    matching the object path's all-or-nothing ParseError semantics.
    """
    n = len(data)
    if n < 12:
        return None
    _msg_id, flags, qd, an, ns_count, ar_count = _HEADER.unpack_from(data, 0)
    # The object path ends with zero records for queries, error rcodes
    # and unknown opcodes (ParseError for the latter) — always exactly
    # one invalid message either way, so short-circuit before walking.
    if (
        not (flags & 0x8000)
        or (flags & 0xF)
        or ((flags >> 11) & 0xF) not in _KNOWN_OPCODES
    ):
        return None
    cache: dict = {}
    cache_get = cache.get
    offset = 12
    try:
        for _ in range(qd):
            _qname, offset = decode_name(data, offset, cache)
            if offset + 4 > n:
                return None  # truncated question
            qtype, qclass = _QFIXED.unpack_from(data, offset)
            # Questions keep the strict enum filter the object path's
            # _decode_question applies (tolerance is per-RR, not here).
            if qtype not in _KNOWN_TYPES or qclass not in _KNOWN_CLASSES:
                return None
            offset += 4
    except ParseError:
        return None
    start = len(out_name)
    unknown = 0
    known_types = _KNOWN_TYPES
    known_classes = _KNOWN_CLASSES
    unpack_rr = _RRFIXED.unpack_from
    ip_probe = ip_text_probe
    ts_append = out_ts.append
    name_append = out_name.append
    rtype_append = out_rtype.append
    ttl_append = out_ttl.append
    rdata_append = out_rdata.append
    try:
        for _ in range(an):
            # Hot-path owner decode: an RR owner is usually one pure
            # compression pointer at a previously-decoded target — one
            # cache probe instead of the full decode_name walk. The
            # output is identical: decode_name would chase the pointer,
            # hit the same cache entry, and splice an empty label list
            # onto it. Anything else (inline labels, uncached or chained
            # targets, truncation) falls through to decode_name, which
            # also owns every malformation check.
            if offset + 1 < n and data[offset] >= 0xC0:
                hit = cache_get(((data[offset] & 0x3F) << 8) | data[offset + 1])
                if hit is not None:
                    owner = hit[0]
                    offset += 2
                else:
                    owner, offset = decode_name(data, offset, cache)
            elif offset < n and data[offset] == 0:
                # Root owner (EDNS OPT rides on "."): one zero byte.
                owner = intern_string(".")
                offset += 1
            else:
                owner, offset = decode_name(data, offset, cache)
            if offset + 10 > n:
                raise ParseError("truncated resource record")
            rt, rc, ttl, rdlength = unpack_rr(data, offset)
            offset += 10
            end = offset + rdlength
            if end > n:
                raise ParseError("RDATA overruns message")
            if rt not in known_types or rc not in known_classes:
                unknown += 1
                offset = end
                continue
            if rt == _TYPE_A:
                if rdlength != 4:
                    raise ParseError(f"A record rdlength {rdlength} != 4")
                raw = data[offset:end]
                text = ip_probe(raw)
                ts_append(t)
                name_append(owner)
                rtype_append(_TYPE_A)
                ttl_append(ttl)
                rdata_append(text if text is not None else cached_ip_text(raw))
            elif rt == _TYPE_CNAME:
                target, _ = decode_name(data, offset, cache)
                ts_append(t)
                name_append(owner)
                rtype_append(_TYPE_CNAME)
                ttl_append(ttl)
                rdata_append(target)
            elif rt == _TYPE_AAAA:
                if rdlength != 16:
                    raise ParseError(f"AAAA record rdlength {rdlength} != 16")
                raw = data[offset:end]
                text = ip_probe(raw)
                ts_append(t)
                name_append(owner)
                rtype_append(_TYPE_AAAA)
                ttl_append(ttl)
                rdata_append(text if text is not None else cached_ip_text(raw))
            elif rt == _TYPE_NS or rt == _TYPE_PTR:
                # Name-typed rdata the object path decodes (and can
                # reject): validate, keep nothing.
                decode_name(data, offset, cache)
            elif rt == _TYPE_MX:
                if rdlength < 3:
                    raise ParseError("MX record too short")
                decode_name(data, offset + 2, cache)
            # Remaining known types (SOA/TXT/SRV/OPT/ANY) carry opaque
            # rdata: bounds already checked, nothing to materialise.
            offset = end
        # Authority + additional: same structural walk (the object path
        # parses them, so their malformations and unknown-RR counts must
        # be observed identically) but no rows ever come out of them.
        for _ in range(ns_count + ar_count):
            if offset + 1 < n and data[offset] >= 0xC0:
                if cache_get(((data[offset] & 0x3F) << 8) | data[offset + 1]) is not None:
                    offset += 2
                else:
                    _owner, offset = decode_name(data, offset, cache)
            elif offset < n and data[offset] == 0:
                offset += 1  # root owner, nothing to keep
            else:
                _owner, offset = decode_name(data, offset, cache)
            if offset + 10 > n:
                raise ParseError("truncated resource record")
            rt, rc, _ttl, rdlength = unpack_rr(data, offset)
            offset += 10
            end = offset + rdlength
            if end > n:
                raise ParseError("RDATA overruns message")
            if rt not in known_types or rc not in known_classes:
                unknown += 1
            elif rt == _TYPE_A:
                if rdlength != 4:
                    raise ParseError(f"A record rdlength {rdlength} != 4")
            elif rt == _TYPE_AAAA:
                if rdlength != 16:
                    raise ParseError(f"AAAA record rdlength {rdlength} != 16")
            elif rt == _TYPE_CNAME or rt == _TYPE_NS or rt == _TYPE_PTR:
                decode_name(data, offset, cache)
            elif rt == _TYPE_MX:
                if rdlength < 3:
                    raise ParseError("MX record too short")
                decode_name(data, offset + 2, cache)
            offset = end
    except ParseError:
        if len(out_name) > start:
            del out_ts[start:]
            del out_name[start:]
            del out_rtype[start:]
            del out_ttl[start:]
            del out_rdata[start:]
        return None
    return unknown


def decode_fill_columns(
    payloads: Sequence[WirePayload],
    ts: Union[float, Sequence[float]],
) -> DnsBatch:
    """Batch-decode wire payloads into one FillUp-ready :class:`DnsBatch`.

    ``ts`` is either one timestamp for the whole batch or a sequence
    parallel to ``payloads`` (the engines pass the per-item receive
    timestamps their sources stamped). Invalid payloads — unparseable,
    queries, error rcodes, truncated, or valid responses with no
    storable answer — contribute no rows and count into
    :attr:`DnsBatch.invalid`; unknown-typed RRs skip-and-count into
    :attr:`DnsBatch.unknown_records`, exactly like the object path.
    """
    batch = DnsBatch()
    stamps: Iterable[float]
    if isinstance(ts, (int, float)):
        stamps = [float(ts)] * len(payloads)
    else:
        stamps = ts
    out_ts = batch.ts
    out_name = batch.name
    out_rtype = batch.rtype
    out_ttl = batch.ttl
    out_rdata = batch.rdata_text
    decode_one = _decode_answers_into
    messages = 0
    invalid = 0
    unknown_total = 0
    rows = 0
    for payload, t in zip(payloads, stamps):
        messages += 1
        # Normalise to bytes once: indexing and slicing bytes is the
        # fastest of the WirePayload forms, and the A/AAAA rdata slices
        # below become direct dict keys without a second copy.
        if type(payload) is not bytes:
            payload = bytes(payload)
        unknown = decode_one(
            payload, t, out_ts, out_name, out_rtype, out_ttl, out_rdata
        )
        if unknown is None:
            invalid += 1
            continue
        unknown_total += unknown
        new_rows = len(out_name)
        if new_rows == rows:
            # Decoded fine but yielded nothing FillUp stores — the
            # object path counts that message invalid too.
            invalid += 1
        rows = new_rows
    batch.messages = messages
    batch.invalid = invalid
    batch.unknown_records = unknown_total
    return batch
