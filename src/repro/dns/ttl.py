"""TTL analysis used to pick FlowDNS's clear-up intervals (Appendix A.6).

The paper's Figure 8 plots per-record-type TTL ECDFs and derives the two
operating constants: 99 % of A/AAAA TTLs < 3600 s and 99 % of CNAME TTLs
< 7200 s (and 70 % of all records < 300 s, which motivates the 300 s
accuracy window of Appendix A.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.util.stats import Ecdf

#: Figure 8's x-axis tick marks; reports evaluate the ECDF at these points.
CANONICAL_TTL_TICKS = (60, 300, 600, 3600, 7200, 18000)


@dataclass
class TtlSummary:
    """Per-record-type TTL distribution summary."""

    counts: Dict[RRType, int]
    ecdfs: Dict[RRType, Ecdf]

    def fraction_below(self, rtype: RRType, ttl: float) -> float:
        """P(TTL <= ttl) for one record type; 0.0 if the type was absent."""
        ecdf = self.ecdfs.get(rtype)
        return ecdf.at(ttl) if ecdf is not None else 0.0

    def quantile(self, rtype: RRType, q: float) -> float:
        ecdf = self.ecdfs.get(rtype)
        if ecdf is None:
            raise KeyError(f"no samples for {rtype!r}")
        return ecdf.quantile(q)

    def tick_table(self, ticks: Iterable[int] = CANONICAL_TTL_TICKS) -> Dict[RRType, List[float]]:
        """ECDF values at Figure 8's canonical ticks, per record type."""
        return {
            rtype: [ecdf.at(t) for t in ticks] for rtype, ecdf in self.ecdfs.items()
        }

    def suggest_clear_up_interval(self, rtype: RRType, coverage: float = 0.99) -> float:
        """The paper's derivation: the TTL below which ``coverage`` of records fall."""
        return self.quantile(rtype, coverage)


def summarize_ttls(records: Iterable[DnsRecord]) -> TtlSummary:
    """Build a :class:`TtlSummary` from a stream of DNS records."""
    buckets: Dict[RRType, List[int]] = {}
    for rec in records:
        buckets.setdefault(rec.rtype, []).append(rec.ttl)
    counts = {rtype: len(ttls) for rtype, ttls in buckets.items()}
    ecdfs = {rtype: Ecdf(ttls) for rtype, ttls in buckets.items() if ttls}
    return TtlSummary(counts=counts, ecdfs=ecdfs)


def address_fraction_below(summary: TtlSummary, ttl: float) -> float:
    """Count-weighted P(TTL <= ttl) over A and AAAA together.

    This is the 'A/AAAA' aggregate the paper's text quotes ("99 % of the
    A/AAAA records have a TTL smaller than 3600").
    """
    total = 0
    acc = 0.0
    for rtype in (RRType.A, RRType.AAAA):
        count = summary.counts.get(rtype, 0)
        total += count
        acc += count * summary.fraction_below(rtype, ttl)
    return acc / total if total else 0.0


def combined_fraction_below(summary: TtlSummary, ttl: float) -> float:
    """Record-count-weighted P(TTL <= ttl) across record types."""
    total = sum(summary.counts.values())
    if total == 0:
        return 0.0
    acc = 0.0
    for rtype, count in summary.counts.items():
        acc += count * summary.fraction_below(rtype, ttl)
    return acc / total
