"""DNS message wire-format codec (RFC 1035 §4).

Implements full message encode/decode with header flags, question section,
and answer/authority/additional records, including name compression on
encode and pointer-chasing on decode. The workload generators emit real
wire-format messages so the FlowDNS ingest path is exercised end to end,
exactly as the ISP resolvers would feed it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.dns.name import (
    NameCache,
    NameCompressor,
    WireData,
    decode_name,
    encode_name,
    normalize_name,
)
from repro.dns.rr import RClass, RRType, ResourceRecord, decode_rdata
from repro.util.errors import ParseError

_HEADER = struct.Struct("!HHHHHH")
_QFIXED = struct.Struct("!HH")
_RRFIXED = struct.Struct("!HHIH")


class Opcode(IntEnum):
    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass
class Header:
    """DNS header: 16-bit id plus the flag word, section counts derived."""

    msg_id: int = 0
    qr: bool = True  # FlowDNS only ever sees responses
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = True
    rcode: Rcode = Rcode.NOERROR

    def flags_word(self) -> int:
        word = 0
        if self.qr:
            word |= 0x8000
        word |= (int(self.opcode) & 0xF) << 11
        if self.aa:
            word |= 0x0400
        if self.tc:
            word |= 0x0200
        if self.rd:
            word |= 0x0100
        if self.ra:
            word |= 0x0080
        word |= int(self.rcode) & 0xF
        return word

    @classmethod
    def from_flags_word(cls, msg_id: int, word: int) -> "Header":
        try:
            opcode = Opcode((word >> 11) & 0xF)
        except ValueError as exc:
            raise ParseError(f"unknown opcode {(word >> 11) & 0xF}") from exc
        try:
            rcode = Rcode(word & 0xF)
        except ValueError as exc:
            raise ParseError(f"unknown rcode {word & 0xF}") from exc
        return cls(
            msg_id=msg_id,
            qr=bool(word & 0x8000),
            opcode=opcode,
            aa=bool(word & 0x0400),
            tc=bool(word & 0x0200),
            rd=bool(word & 0x0100),
            ra=bool(word & 0x0080),
            rcode=rcode,
        )


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    qname: str
    qtype: RRType
    qclass: RClass = RClass.IN

    def __post_init__(self):
        object.__setattr__(self, "qname", normalize_name(self.qname))


@dataclass
class DnsMessage:
    """A decoded (or to-be-encoded) DNS message."""

    header: Header = field(default_factory=Header)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)
    #: Records skipped during decode for carrying an rtype or rclass
    #: outside the enums (SVCB/HTTPS/EDNS-class OPT in real resolver
    #: traffic). Skip-and-count, never ParseError: one exotic record
    #: must not discard the A/CNAME answers riding in the same message.
    unknown_records: int = 0

    @property
    def is_response(self) -> bool:
        return self.header.qr

    def address_answers(self) -> List[ResourceRecord]:
        return [rr for rr in self.answers if rr.is_address]

    def cname_answers(self) -> List[ResourceRecord]:
        return [rr for rr in self.answers if rr.is_cname]


def _encode_rr(rr: ResourceRecord, compressor: NameCompressor, offset: int) -> bytes:
    out = bytearray(compressor.encode(rr.name, offset))
    rdata = _encode_rdata(rr)
    out.extend(_RRFIXED.pack(int(rr.rtype), int(rr.rclass), rr.ttl, len(rdata)))
    out.extend(rdata)
    return bytes(out)


def _encode_rdata(rr: ResourceRecord) -> bytes:
    if rr.rtype in (RRType.A, RRType.AAAA):
        return rr.rdata.packed
    if isinstance(rr.rdata, str):
        # Name-typed rdata. We do not compress inside RDATA: RFC 3597
        # forbids compression for unknown types and modern encoders avoid
        # it for CNAME as well for middlebox safety.
        return encode_name(rr.rdata)
    if isinstance(rr.rdata, tuple) and rr.rtype == RRType.MX:
        pref, exchange = rr.rdata
        return struct.pack("!H", pref) + encode_name(exchange)
    if isinstance(rr.rdata, bytes):
        return rr.rdata
    raise ParseError(f"cannot encode rdata of type {type(rr.rdata).__name__}")


def encode_message(msg: DnsMessage) -> bytes:
    """Serialize a message to wire format with name compression."""
    out = bytearray(
        _HEADER.pack(
            msg.header.msg_id & 0xFFFF,
            msg.header.flags_word(),
            len(msg.questions),
            len(msg.answers),
            len(msg.authorities),
            len(msg.additionals),
        )
    )
    compressor = NameCompressor()
    for q in msg.questions:
        out.extend(compressor.encode(q.qname, len(out)))
        out.extend(_QFIXED.pack(int(q.qtype), int(q.qclass)))
    for section in (msg.answers, msg.authorities, msg.additionals):
        for rr in section:
            out.extend(_encode_rr(rr, compressor, len(out)))
    return bytes(out)


def _decode_question(
    data: WireData, offset: int, cache: Optional[NameCache]
) -> Tuple[Question, int]:
    qname, offset = decode_name(data, offset, cache)
    if offset + _QFIXED.size > len(data):
        raise ParseError("truncated question")
    qtype_raw, qclass_raw = _QFIXED.unpack_from(data, offset)
    try:
        qtype = RRType(qtype_raw)
        qclass = RClass(qclass_raw)
    except ValueError as exc:
        raise ParseError(f"unknown qtype/qclass {qtype_raw}/{qclass_raw}") from exc
    return Question(qname, qtype, qclass), offset + _QFIXED.size


def _decode_rr(
    data: WireData, offset: int, cache: Optional[NameCache]
) -> Tuple[Optional[ResourceRecord], int]:
    """Decode one RR; ``(None, next_offset)`` for unknown rtype/rclass.

    Real resolver traffic carries OPT (EDNS puts the UDP size in the
    class field), SVCB/HTTPS and other types outside the enums alongside
    the A/CNAME answers FillUp wants — those records skip by rdlength
    (and count into :attr:`DnsMessage.unknown_records`) instead of
    invalidating the whole message. The structural bounds checks still
    apply: a skipped record whose rdlength overruns the message is
    corruption, not exotica.
    """
    name, offset = decode_name(data, offset, cache)
    if offset + _RRFIXED.size > len(data):
        raise ParseError("truncated resource record")
    rtype_raw, rclass_raw, ttl, rdlength = _RRFIXED.unpack_from(data, offset)
    offset += _RRFIXED.size
    if offset + rdlength > len(data):
        raise ParseError("RDATA overruns message")
    try:
        rtype = RRType(rtype_raw)
        rclass = RClass(rclass_raw)
    except ValueError:
        return None, offset + rdlength
    rdata = decode_rdata(rtype, data, offset, rdlength, cache)
    return ResourceRecord(name, rtype, rclass, ttl, rdata), offset + rdlength


def decode_message(data: WireData, use_name_cache: bool = True) -> DnsMessage:
    """Parse a wire-format DNS message; raises ParseError on corruption.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview`` — the
    decoder reads through one memoryview without copying section slices.
    ``use_name_cache=False`` disables the per-message name-offset cache
    (every compression chain re-chased); it is the reference path the
    differential tests compare against and decodes identically.
    """
    if len(data) < _HEADER.size:
        raise ParseError("message shorter than header")
    buf = data if isinstance(data, memoryview) else memoryview(data)
    msg_id, flags, qd, an, ns, ar = _HEADER.unpack_from(buf, 0)
    header = Header.from_flags_word(msg_id, flags)
    msg = DnsMessage(header=header)
    cache: Optional[NameCache] = {} if use_name_cache else None
    offset = _HEADER.size
    for _ in range(qd):
        question, offset = _decode_question(buf, offset, cache)
        msg.questions.append(question)
    for count, section in ((an, msg.answers), (ns, msg.authorities), (ar, msg.additionals)):
        for _ in range(count):
            rr, offset = _decode_rr(buf, offset, cache)
            if rr is None:
                msg.unknown_records += 1
            else:
                section.append(rr)
    return msg
