"""DNS-over-TCP stream framing (RFC 1035 §4.2.2).

The paper's collection path: "This data is sent from the ISP resolvers
to our collectors via TCP." On TCP, each DNS message is preceded by a
two-byte big-endian length. :class:`TcpFrameDecoder` incrementally
reassembles messages from arbitrary chunk boundaries — the collector
cannot assume one read() per message — and tolerates mid-stream
truncation by surfacing whatever is complete.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List

from repro.util.errors import ParseError

_LEN = struct.Struct("!H")

#: Hard ceiling on one framed message; a length prefix beyond this is
#: treated as stream corruption (real DNS/TCP messages max at 64 KiB by
#: construction, but a desynchronised stream can claim anything).
MAX_MESSAGE_SIZE = 65535


def frame_message(payload: bytes) -> bytes:
    """Prefix one wire-format message with its 16-bit length."""
    if len(payload) > MAX_MESSAGE_SIZE:
        raise ParseError(f"DNS message too large for TCP framing: {len(payload)}")
    return _LEN.pack(len(payload)) + payload


def frame_messages(payloads: Iterable[bytes]) -> bytes:
    """Concatenate several framed messages into one TCP byte stream."""
    return b"".join(frame_message(p) for p in payloads)


class TcpFrameDecoder:
    """Incremental decoder: feed chunks, collect complete messages.

    The decoder never raises on partial input — a short read simply
    waits for more bytes. A zero-length frame is legal per the RFC but
    carries no message; it is not emitted, and is tallied in
    ``empty_frames`` so callers can account for it (an empty DNS
    message cannot parse, so silently swallowing it would hide loss).

    ``max_message_size`` is the corruption guard: a length prefix beyond
    it means the stream has desynchronised (real resolver exports stay
    far below the 64 KiB framing ceiling), and :meth:`feed` raises
    :class:`ParseError` rather than buffering towards a frame that will
    never arrive intact. The default cap is the 16-bit framing maximum,
    which any ``!H`` prefix trivially satisfies; collectors that know
    their resolvers' realistic message sizes pass a tighter cap.
    """

    def __init__(self, max_message_size: int = MAX_MESSAGE_SIZE) -> None:
        if not 0 < max_message_size <= MAX_MESSAGE_SIZE:
            raise ParseError(
                f"max_message_size must be in (0, {MAX_MESSAGE_SIZE}]: "
                f"{max_message_size}"
            )
        self._buffer = bytearray()
        self._corrupt: str = ""
        self.max_message_size = max_message_size
        self.messages_out = 0
        self.empty_frames = 0
        self.bytes_in = 0

    def feed(self, chunk: bytes) -> List[bytes]:
        """Add a chunk; return every message completed by it.

        Raises :class:`ParseError` when a frame claims more than
        ``max_message_size`` bytes — the stream-corruption path; the
        decoder is not usable afterwards (resynchronisation is the
        caller's policy, typically dropping the connection). Messages
        completed *before* the corrupt prefix in the same chunk are
        still returned (they framed correctly and must not be lost);
        the raise is deferred to the next :meth:`feed` or :meth:`close`.
        """
        if self._corrupt:
            raise ParseError(self._corrupt)
        self._buffer.extend(chunk)
        self.bytes_in += len(chunk)
        out: List[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > self.max_message_size:
                self._corrupt = (
                    f"framed length {length} exceeds cap "
                    f"{self.max_message_size}: stream corrupt"
                )
                if out:
                    # Hand back what framed cleanly; the caller learns of
                    # the corruption on its next feed()/close().
                    return out
                raise ParseError(self._corrupt)
            if len(self._buffer) < _LEN.size + length:
                break
            payload = bytes(self._buffer[_LEN.size : _LEN.size + length])
            del self._buffer[: _LEN.size + length]
            if payload:
                out.append(payload)
                self.messages_out += 1
            else:
                self.empty_frames += 1
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)

    def close(self) -> None:
        """Signal EOF; leftover bytes indicate a truncated final frame
        (or a corruption detected on the last feed)."""
        if self._corrupt:
            raise ParseError(self._corrupt)
        if self._buffer:
            raise ParseError(
                f"TCP stream ended mid-frame with {len(self._buffer)} bytes pending"
            )


def iter_framed(stream: Iterable[bytes]) -> Iterator[bytes]:
    """Decode a chunk iterable into messages; raises on truncated tail."""
    decoder = TcpFrameDecoder()
    for chunk in stream:
        yield from decoder.feed(chunk)
    decoder.close()
