"""DNS substrate: names, resource records, wire format, validation, TTLs.

FlowDNS consumes DNS *responses* (cache misses forwarded by ISP resolvers).
This subpackage implements everything the correlator and the workload
generators need from the DNS side:

* :mod:`repro.dns.name` — RFC 1035 domain-name encoding/decoding;
* :mod:`repro.dns.validation` — the three RFC 1035 validity rules the
  paper's Section 5 checks (length 255, label 63, LDH characters);
* :mod:`repro.dns.rr` — typed resource records (A/AAAA/CNAME/...);
* :mod:`repro.dns.wire` — full message codec with name compression;
* :mod:`repro.dns.stream` — the lightweight ``DnsRecord`` tuples that flow
  through FlowDNS queues;
* :mod:`repro.dns.ttl` — TTL bucketing/analysis used for Figure 8.
"""

from repro.dns.name import (
    decode_name,
    encode_name,
    labels_of,
    normalize_name,
)
from repro.dns.rr import (
    RRType,
    RClass,
    ResourceRecord,
    a_record,
    aaaa_record,
    cname_record,
)
from repro.dns.stream import DnsRecord, is_address_type
from repro.dns.validation import (
    DomainViolation,
    ViolationKind,
    check_domain,
    is_valid_domain,
)
from repro.dns.wire import (
    DnsMessage,
    Header,
    Opcode,
    Question,
    Rcode,
    decode_message,
    encode_message,
)
from repro.dns.tcp import TcpFrameDecoder, frame_message, frame_messages, iter_framed
from repro.dns.ttl import TtlSummary, summarize_ttls

__all__ = [
    "encode_name",
    "decode_name",
    "labels_of",
    "normalize_name",
    "RRType",
    "RClass",
    "ResourceRecord",
    "a_record",
    "aaaa_record",
    "cname_record",
    "DnsRecord",
    "is_address_type",
    "DomainViolation",
    "ViolationKind",
    "check_domain",
    "is_valid_domain",
    "DnsMessage",
    "Header",
    "Question",
    "Opcode",
    "Rcode",
    "encode_message",
    "decode_message",
    "TtlSummary",
    "summarize_ttls",
    "TcpFrameDecoder",
    "frame_message",
    "frame_messages",
    "iter_framed",
]
