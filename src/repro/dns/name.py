"""RFC 1035 domain-name encoding and decoding.

Names on the wire are sequences of length-prefixed labels terminated by a
zero-length root label, optionally ending in a compression pointer
(RFC 1035 §4.1.4). The decoder follows pointers with a strict visited-set so
malicious or corrupt messages with pointer loops raise :class:`ParseError`
instead of spinning.

The decoder works over ``bytes`` or ``memoryview`` alike (so a whole
message can be parsed without intermediate copies), takes an optional
per-message offset cache so a compression-pointer chain is chased once
per message rather than once per referring record, and interns decoded
names so identical names across messages are one shared string object —
the form the storage layer's hash caches key on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.util.errors import ParseError
from repro.util.interning import intern_string

WireData = Union[bytes, bytearray, memoryview]

#: Per-message name cache: start offset -> (name, next_offset, wire_len,
#: raw_name). ``wire_len`` is the name's uncompressed encoded length
#: including the root byte (keeps the 255-byte limit exact on cache
#: hits); ``raw_name`` is the label join *before* normalization, so a
#: pointer splicing a cached suffix under new head labels normalizes the
#: combined name exactly once, the way the uncached path does.
NameCache = Dict[int, Tuple[str, int, int, str]]

MAX_NAME_WIRE_LENGTH = 255
MAX_LABEL_LENGTH = 63
_POINTER_MASK = 0xC0


def normalize_name(name: str) -> str:
    """Canonical form: lowercase, no trailing dot (root stays ``.``)."""
    name = name.strip()
    if name in ("", "."):
        return "."
    return name.rstrip(".").lower()


def labels_of(name: str) -> List[str]:
    """Split a presentation-format name into its labels (root → [])."""
    norm = normalize_name(name)
    if norm == ".":
        return []
    return norm.split(".")


def encode_name(name: str) -> bytes:
    """Encode a presentation-format name to uncompressed wire format.

    Raises :class:`ParseError` if any label exceeds 63 bytes or the encoded
    name exceeds 255 bytes, per RFC 1035 §2.3.4. Note that *syntactic*
    character rules (LDH) are deliberately not enforced here: FlowDNS must
    transport malformed names (Section 5 measures their traffic), so the
    codec only enforces structural limits the wire format itself imposes.
    """
    out = bytearray()
    for label in labels_of(name):
        raw = label.encode("utf-8", errors="surrogateescape")
        if len(raw) == 0:
            raise ParseError(f"empty label in name {name!r}")
        if len(raw) > MAX_LABEL_LENGTH:
            raise ParseError(f"label exceeds 63 bytes in name {name!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    if len(out) > MAX_NAME_WIRE_LENGTH:
        raise ParseError(f"encoded name exceeds 255 bytes: {name!r}")
    return bytes(out)


def decode_name(
    data: WireData, offset: int, cache: Optional[NameCache] = None
) -> Tuple[str, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns ``(name, next_offset)`` where ``next_offset`` is the offset just
    past the name *in the original stream* (i.e. past the pointer if the
    name was compressed).

    ``data`` may be ``bytes`` or a ``memoryview`` over the message.
    ``cache``, when given, memoises decoded names by start offset for the
    lifetime of one message: a pointer landing on a previously decoded
    name's offset splices the cached suffix instead of re-chasing the
    chain, and the 255-byte wire limit stays exact because the cache
    carries each name's uncompressed encoded length.
    """
    if cache is not None:
        hit = cache.get(offset)
        if hit is not None:
            return hit[0], hit[1]
    labels: List[str] = []
    pos = offset
    next_offset = -1
    visited = set()
    wire_budget = 0
    tail: Optional[Tuple[str, int, int, str]] = None
    data_len = len(data)
    while True:
        if pos >= data_len:
            raise ParseError("truncated name")
        length = data[pos]
        if length & _POINTER_MASK == _POINTER_MASK:
            if pos + 1 >= data_len:
                raise ParseError("truncated compression pointer")
            target = ((length & 0x3F) << 8) | data[pos + 1]
            if next_offset < 0:
                next_offset = pos + 2
            if target in visited:
                raise ParseError("compression pointer loop")
            if target >= pos:
                raise ParseError("forward compression pointer")
            visited.add(target)
            if cache is not None:
                tail = cache.get(target)
                if tail is not None:
                    break
            pos = target
            continue
        if length & _POINTER_MASK:
            raise ParseError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
        if length == 0:
            if next_offset < 0:
                next_offset = pos + 1
            break
        if pos + 1 + length > data_len:
            raise ParseError("truncated label")
        wire_budget += 1 + length
        if wire_budget + 1 > MAX_NAME_WIRE_LENGTH:
            raise ParseError("decoded name exceeds 255 bytes")
        labels.append(
            str(data[pos + 1 : pos + 1 + length], "utf-8", "surrogateescape")
        )
        pos += 1 + length
    if tail is not None:
        tail_raw = tail[3]
        # tail wire length includes the root byte; total must still fit 255.
        wire_budget += tail[2] - 1
        if wire_budget + 1 > MAX_NAME_WIRE_LENGTH:
            raise ParseError("decoded name exceeds 255 bytes")
        if labels:
            if tail_raw == ".":
                raw_name = ".".join(labels)
            else:
                raw_name = ".".join(labels) + "." + tail_raw
        else:
            raw_name = tail_raw
    else:
        raw_name = ".".join(labels) if labels else "."
    name = intern_string(normalize_name(raw_name))
    if cache is not None:
        cache[offset] = (name, next_offset, wire_budget + 1, raw_name)
    return name, next_offset


class NameCompressor:
    """Tracks previously written names to emit RFC 1035 compression pointers.

    Pointers can only target offsets < 0x4000; beyond that the name is
    written uncompressed (the same rule real encoders follow).
    """

    def __init__(self) -> None:
        self._offsets = {}

    def encode(self, name: str, current_offset: int) -> bytes:
        out = bytearray()
        labels = labels_of(name)
        for i in range(len(labels)):
            suffix = ".".join(labels[i:])
            known = self._offsets.get(suffix)
            if known is not None and known < 0x4000:
                out.append(_POINTER_MASK | (known >> 8))
                out.append(known & 0xFF)
                return bytes(out)
            offset_here = current_offset + len(out)
            if offset_here < 0x4000:
                self._offsets[suffix] = offset_here
            raw = labels[i].encode("utf-8", errors="surrogateescape")
            if not 1 <= len(raw) <= MAX_LABEL_LENGTH:
                raise ParseError(f"bad label length in {name!r}")
            out.append(len(raw))
            out.extend(raw)
        out.append(0)
        return bytes(out)
