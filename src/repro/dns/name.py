"""RFC 1035 domain-name encoding and decoding.

Names on the wire are sequences of length-prefixed labels terminated by a
zero-length root label, optionally ending in a compression pointer
(RFC 1035 §4.1.4). The decoder follows pointers with a strict visited-set so
malicious or corrupt messages with pointer loops raise :class:`ParseError`
instead of spinning.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.util.errors import ParseError

MAX_NAME_WIRE_LENGTH = 255
MAX_LABEL_LENGTH = 63
_POINTER_MASK = 0xC0


def normalize_name(name: str) -> str:
    """Canonical form: lowercase, no trailing dot (root stays ``.``)."""
    name = name.strip()
    if name in ("", "."):
        return "."
    return name.rstrip(".").lower()


def labels_of(name: str) -> List[str]:
    """Split a presentation-format name into its labels (root → [])."""
    norm = normalize_name(name)
    if norm == ".":
        return []
    return norm.split(".")


def encode_name(name: str) -> bytes:
    """Encode a presentation-format name to uncompressed wire format.

    Raises :class:`ParseError` if any label exceeds 63 bytes or the encoded
    name exceeds 255 bytes, per RFC 1035 §2.3.4. Note that *syntactic*
    character rules (LDH) are deliberately not enforced here: FlowDNS must
    transport malformed names (Section 5 measures their traffic), so the
    codec only enforces structural limits the wire format itself imposes.
    """
    out = bytearray()
    for label in labels_of(name):
        raw = label.encode("utf-8", errors="surrogateescape")
        if len(raw) == 0:
            raise ParseError(f"empty label in name {name!r}")
        if len(raw) > MAX_LABEL_LENGTH:
            raise ParseError(f"label exceeds 63 bytes in name {name!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    if len(out) > MAX_NAME_WIRE_LENGTH:
        raise ParseError(f"encoded name exceeds 255 bytes: {name!r}")
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns ``(name, next_offset)`` where ``next_offset`` is the offset just
    past the name *in the original stream* (i.e. past the pointer if the
    name was compressed).
    """
    labels: List[str] = []
    pos = offset
    next_offset = -1
    visited = set()
    wire_budget = 0
    while True:
        if pos >= len(data):
            raise ParseError("truncated name")
        length = data[pos]
        if length & _POINTER_MASK == _POINTER_MASK:
            if pos + 1 >= len(data):
                raise ParseError("truncated compression pointer")
            target = ((length & 0x3F) << 8) | data[pos + 1]
            if next_offset < 0:
                next_offset = pos + 2
            if target in visited:
                raise ParseError("compression pointer loop")
            if target >= pos:
                raise ParseError("forward compression pointer")
            visited.add(target)
            pos = target
            continue
        if length & _POINTER_MASK:
            raise ParseError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
        if length == 0:
            if next_offset < 0:
                next_offset = pos + 1
            break
        if pos + 1 + length > len(data):
            raise ParseError("truncated label")
        wire_budget += 1 + length
        if wire_budget + 1 > MAX_NAME_WIRE_LENGTH:
            raise ParseError("decoded name exceeds 255 bytes")
        labels.append(
            data[pos + 1 : pos + 1 + length].decode("utf-8", errors="surrogateescape")
        )
        pos += 1 + length
    name = ".".join(labels) if labels else "."
    return normalize_name(name), next_offset


class NameCompressor:
    """Tracks previously written names to emit RFC 1035 compression pointers.

    Pointers can only target offsets < 0x4000; beyond that the name is
    written uncompressed (the same rule real encoders follow).
    """

    def __init__(self) -> None:
        self._offsets = {}

    def encode(self, name: str, current_offset: int) -> bytes:
        out = bytearray()
        labels = labels_of(name)
        for i in range(len(labels)):
            suffix = ".".join(labels[i:])
            known = self._offsets.get(suffix)
            if known is not None and known < 0x4000:
                out.append(_POINTER_MASK | (known >> 8))
                out.append(known & 0xFF)
                return bytes(out)
            offset_here = current_offset + len(out)
            if offset_here < 0x4000:
                self._offsets[suffix] = offset_here
            raw = labels[i].encode("utf-8", errors="surrogateescape")
            if not 1 <= len(raw) <= MAX_LABEL_LENGTH:
                raise ParseError(f"bad label length in {name!r}")
            out.append(len(raw))
            out.extend(raw)
        out.append(0)
        return bytes(out)
