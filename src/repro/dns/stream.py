"""The stream-level DNS record FlowDNS actually processes.

Section 2 describes each DNS stream record as
``timestamp, ..., [name; rtype; ttl; answer] <0,n>`` — i.e. one timestamped
entry per answer RR. :class:`DnsRecord` is that flattened per-answer tuple;
it is what travels through the FillUp queue and keys the hashmaps. The
heavier :class:`repro.dns.wire.DnsMessage` is converted into a list of
these at ingest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dns.name import normalize_name
from repro.dns.rr import RRType
from repro.dns.wire import DnsMessage
from repro.util.interning import intern_string


def is_address_type(rtype: RRType) -> bool:
    """True for A/AAAA — the types the IP-NAME hashmaps hold."""
    return rtype in (RRType.A, RRType.AAAA)


@dataclass(frozen=True)
class DnsRecord:
    """One (timestamp, query, rtype, ttl, answer) stream entry.

    ``query`` is the name the client asked for, ``answer`` is the rdata in
    presentation form: an IP address string for A/AAAA, a domain name for
    CNAME. FlowDNS's hashmaps use ``answer`` as key and ``query`` as value
    (Section 3.1).
    """

    ts: float
    query: str
    rtype: RRType
    ttl: int
    answer: str

    def __post_init__(self):
        # Interned: the query/answer strings are the storage layer's map
        # keys, and sharing one object per distinct name keeps the shard
        # hash caches hot and the maps free of duplicate key storage.
        object.__setattr__(self, "query", intern_string(normalize_name(self.query)))
        if self.rtype == RRType.CNAME:
            object.__setattr__(self, "answer", intern_string(normalize_name(self.answer)))
        else:
            object.__setattr__(self, "answer", intern_string(self.answer))

    @property
    def is_address(self) -> bool:
        return is_address_type(self.rtype)

    @property
    def is_cname(self) -> bool:
        return self.rtype == RRType.CNAME


def records_from_message(ts: float, msg: DnsMessage) -> List[DnsRecord]:
    """Flatten a response message into per-answer stream records.

    Only A/AAAA/CNAME answers survive — this is the "valid DNS response"
    filter from Section 3.2 step 2. Non-responses, error rcodes and empty
    answer sections yield nothing.
    """
    if not msg.is_response or msg.header.rcode != 0:
        return []
    # The query name associated with each answer RR is the RR owner name,
    # which for CDN chains differs from the original question as the chain
    # unrolls (q -> cname1 -> cname2 -> A).
    out: List[DnsRecord] = []
    for rr in msg.answers:
        if rr.is_address:
            # DnsRecord.__post_init__ interns the answer text itself.
            out.append(DnsRecord(ts, rr.name, rr.rtype, rr.ttl, str(rr.rdata)))
        elif rr.is_cname:
            out.append(DnsRecord(ts, rr.name, rr.rtype, rr.ttl, rr.rdata))
    return out
