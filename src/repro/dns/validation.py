"""RFC 1035 domain-name validity rules, as checked in the paper's Section 5.

The paper focuses on exactly three rules:

1. the total length of the domain name is 255 bytes or less;
2. each label is limited to 63 bytes;
3. each label starts with a letter, ends with a letter or digit, and the
   interior characters are limited to letters, digits, and hyphens (LDH).

Section 5 reports 666k violating names in a day, with the underscore the
most common disallowed character (87 % of malformed names). The checker
therefore records *which* characters offended so the analysis module can
reproduce that breakdown.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.dns.name import normalize_name

_LETTERS = set(string.ascii_letters)
_LETTERS_DIGITS = _LETTERS | set(string.digits)
_INTERIOR = _LETTERS_DIGITS | {"-"}


class ViolationKind(Enum):
    """Which of the three RFC 1035 rules a name violates."""

    NAME_TOO_LONG = "name-too-long"
    LABEL_TOO_LONG = "label-too-long"
    BAD_CHARACTER = "bad-character"
    BAD_START = "bad-start"
    BAD_END = "bad-end"
    EMPTY_LABEL = "empty-label"


@dataclass
class DomainViolation:
    """A single rule violation found in a domain name."""

    kind: ViolationKind
    label: Optional[str] = None
    offending_chars: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        extra = f" label={self.label!r}" if self.label is not None else ""
        chars = f" chars={self.offending_chars}" if self.offending_chars else ""
        return f"{self.kind.value}{extra}{chars}"


def check_domain(name: str) -> List[DomainViolation]:
    """Return all RFC 1035 violations in ``name`` (empty list = valid).

    The byte lengths are measured on the UTF-8 encoding, matching how the
    name travels on the wire.
    """
    violations: List[DomainViolation] = []
    norm = normalize_name(name)
    if norm == ".":
        return violations

    labels = norm.split(".")
    # Wire length: 1 length byte per label + label bytes + terminating root.
    wire_len = sum(1 + len(lbl.encode("utf-8", errors="surrogateescape")) for lbl in labels) + 1
    if wire_len > 255:
        violations.append(DomainViolation(ViolationKind.NAME_TOO_LONG))

    for label in labels:
        raw = label.encode("utf-8", errors="surrogateescape")
        if len(raw) == 0:
            violations.append(DomainViolation(ViolationKind.EMPTY_LABEL, label=label))
            continue
        if len(raw) > 63:
            violations.append(DomainViolation(ViolationKind.LABEL_TOO_LONG, label=label))
        bad = sorted({ch for ch in label if ch not in _INTERIOR})
        if bad:
            violations.append(
                DomainViolation(ViolationKind.BAD_CHARACTER, label=label, offending_chars=bad)
            )
        # Start/end checks only meaningful when the characters themselves
        # are in the permitted alphabet (otherwise BAD_CHARACTER covers it).
        if label[0] not in _LETTERS and label[0] in _INTERIOR:
            violations.append(DomainViolation(ViolationKind.BAD_START, label=label))
        if label[-1] not in _LETTERS_DIGITS and label[-1] in _INTERIOR:
            violations.append(DomainViolation(ViolationKind.BAD_END, label=label))
    return violations


def is_valid_domain(name: str) -> bool:
    """True when ``name`` satisfies all three RFC 1035 rules.

    Note: following common practice (and the reality of hostnames like
    ``4chan.org``), the paper's rule 3 says labels *start with a letter*;
    we implement exactly that, so all-digit first characters count as
    violations just as underscores do.
    """
    return not check_domain(name)


def offending_characters(name: str) -> List[str]:
    """All distinct disallowed characters in ``name`` (sorted)."""
    chars = set()
    for violation in check_domain(name):
        chars.update(violation.offending_chars)
    return sorted(chars)
