"""Typed DNS resource records.

FlowDNS only *uses* A, AAAA and CNAME records, but the wire codec must be
able to carry the other common types found in real resolver traffic (NS,
MX, TXT, SOA, PTR, SRV) because the FillUp filter's job is precisely to
discard them (Section 3.2 step 2 "go through a filter").
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Union

from repro.dns.name import NameCache, WireData, decode_name, normalize_name
from repro.util.errors import ParseError
from repro.util.interning import cached_ip_address, intern_string


class RRType(IntEnum):
    """DNS RR TYPE values (RFC 1035 §3.2.2 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    ANY = 255


class RClass(IntEnum):
    """DNS CLASS values; IN is the only one seen in practice."""

    IN = 1
    CH = 3
    HS = 4
    ANY = 255


@dataclass(frozen=True)
class ResourceRecord:
    """One decoded resource record.

    ``rdata`` is typed per RR type: an :mod:`ipaddress` address for A/AAAA,
    a normalized domain-name string for CNAME/NS/PTR, raw ``bytes`` for
    anything else. TTL is seconds remaining as reported by the resolver.
    """

    name: str
    rtype: RRType
    rclass: RClass
    ttl: int
    rdata: Union[str, bytes, ipaddress.IPv4Address, ipaddress.IPv6Address]

    def __post_init__(self):
        if self.ttl < 0:
            raise ParseError(f"negative TTL on {self.name!r}")
        # Interned: owner names and name-typed rdata feed the storage maps,
        # where one shared object per distinct name keeps hashing cached.
        object.__setattr__(self, "name", intern_string(normalize_name(self.name)))
        if self.rtype == RRType.A and not isinstance(self.rdata, ipaddress.IPv4Address):
            object.__setattr__(self, "rdata", ipaddress.IPv4Address(self.rdata))
        elif self.rtype == RRType.AAAA and not isinstance(self.rdata, ipaddress.IPv6Address):
            object.__setattr__(self, "rdata", ipaddress.IPv6Address(self.rdata))
        elif self.rtype in _NAME_RDATA_TYPES and isinstance(self.rdata, str):
            object.__setattr__(self, "rdata", intern_string(normalize_name(self.rdata)))

    @property
    def is_address(self) -> bool:
        return self.rtype in (RRType.A, RRType.AAAA)

    @property
    def is_cname(self) -> bool:
        return self.rtype == RRType.CNAME

    def rdata_text(self) -> str:
        """Presentation form of the rdata (for output files / reports)."""
        if isinstance(self.rdata, bytes):
            return self.rdata.hex()
        return str(self.rdata)


_NAME_RDATA_TYPES = {RRType.CNAME, RRType.NS, RRType.PTR}


def a_record(name: str, address: str, ttl: int) -> ResourceRecord:
    """Convenience constructor for an IN A record."""
    return ResourceRecord(name, RRType.A, RClass.IN, ttl, ipaddress.IPv4Address(address))


def aaaa_record(name: str, address: str, ttl: int) -> ResourceRecord:
    """Convenience constructor for an IN AAAA record."""
    return ResourceRecord(name, RRType.AAAA, RClass.IN, ttl, ipaddress.IPv6Address(address))


def cname_record(name: str, target: str, ttl: int) -> ResourceRecord:
    """Convenience constructor for an IN CNAME record."""
    return ResourceRecord(name, RRType.CNAME, RClass.IN, ttl, normalize_name(target))


def decode_rdata(
    rtype: RRType,
    data: WireData,
    offset: int,
    rdlength: int,
    cache: Optional[NameCache] = None,
):
    """Decode the RDATA section of one record from a full message buffer.

    Needs the whole message (not just the RDATA slice) because name-typed
    RDATA may contain compression pointers into earlier parts. ``data``
    may be bytes or a memoryview; ``cache`` is the message's shared name
    cache (see :func:`repro.dns.name.decode_name`).
    """
    end = offset + rdlength
    if end > len(data):
        raise ParseError("RDATA overruns message")
    if rtype == RRType.A:
        if rdlength != 4:
            raise ParseError(f"A record rdlength {rdlength} != 4")
        return cached_ip_address(bytes(data[offset:end]))
    if rtype == RRType.AAAA:
        if rdlength != 16:
            raise ParseError(f"AAAA record rdlength {rdlength} != 16")
        return cached_ip_address(bytes(data[offset:end]))
    if rtype in _NAME_RDATA_TYPES:
        name, _ = decode_name(data, offset, cache)
        return name
    if rtype == RRType.MX:
        if rdlength < 3:
            raise ParseError("MX record too short")
        pref = struct.unpack_from("!H", data, offset)[0]
        exchange, _ = decode_name(data, offset + 2, cache)
        return (pref, exchange)
    return bytes(data[offset:end])
