"""Byte/rate/duration unit helpers used across reports and configs."""

from __future__ import annotations

import re

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h|d|w)?\s*$")
_DURATION_FACTORS = {
    "ms": 0.001,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 604800.0,
}


def format_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(30 * GIB) == '30.0 GiB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, factor in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= factor:
            return f"{sign}{n / factor:.1f} {unit}"
    return f"{sign}{n:.0f} B"


def format_rate(per_second: float) -> str:
    """Human-readable record rate, e.g. ``'75.0K rec/s'``."""
    per_second = float(per_second)
    if per_second >= 1e6:
        return f"{per_second / 1e6:.1f}M rec/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.1f}K rec/s"
    return f"{per_second:.0f} rec/s"


def parse_duration(text) -> float:
    """Parse ``'90s'``, ``'2h'``, ``'1d'``, bare numbers (seconds) → seconds."""
    if isinstance(text, (int, float)):
        value = float(text)
        if value < 0:
            raise ValueError("durations must be non-negative")
        return value
    match = _DURATION_RE.match(str(text))
    if not match:
        raise ValueError(f"unparseable duration: {text!r}")
    value = float(match.group(1))
    unit = match.group(2) or "s"
    return value * _DURATION_FACTORS[unit]
