"""Statistics helpers: ECDFs, running moments, cumulative shares.

The paper reports most of its evidence as ECDFs (Figures 6, 8, 9) and
cumulative traffic-share curves (Figures 4, 5). These helpers are the single
implementation used by both the benchmark harness and the analysis modules,
so paper-vs-measured comparisons always use the same quantile semantics.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple


class Ecdf:
    """Empirical cumulative distribution function over numeric samples."""

    def __init__(self, samples: Iterable[float]):
        self._sorted: List[float] = sorted(float(s) for s in samples)
        if not self._sorted:
            raise ValueError("Ecdf requires at least one sample")

    def __len__(self) -> int:
        return len(self._sorted)

    def at(self, x: float) -> float:
        """Return P(X <= x)."""
        return bisect_right(self._sorted, x) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Return the smallest x with P(X <= x) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if q == 0.0:
            return self._sorted[0]
        idx = math.ceil(q * len(self._sorted)) - 1
        return self._sorted[max(0, idx)]

    def points(self) -> List[Tuple[float, float]]:
        """Return (x, P(X<=x)) pairs at each distinct sample value."""
        pts: List[Tuple[float, float]] = []
        n = len(self._sorted)
        i = 0
        while i < n:
            x = self._sorted[i]
            j = bisect_right(self._sorted, x, lo=i)
            pts.append((x, j / n))
            i = j
        return pts

    @property
    def min(self) -> float:
        return self._sorted[0]

    @property
    def max(self) -> float:
        return self._sorted[-1]


class RunningStats:
    """Welford online mean/variance plus min/max, O(1) memory.

    Used by the simulation engine to summarise per-interval CPU and memory
    samples without retaining week-long series in RAM.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    data = sorted(samples)
    if q == 0.0:
        return data[0]
    idx = math.ceil(q / 100.0 * len(data)) - 1
    return data[max(0, idx)]


def quantiles(samples: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Nearest-rank quantiles for several q values (each in [0, 1])."""
    ecdf = Ecdf(samples)
    return [ecdf.quantile(q) for q in qs]


def cumulative_share(values: Dict[str, float], descending: bool = True) -> List[Tuple[str, float]]:
    """Return (key, cumulative fraction) sorted by value.

    This is the transform behind Figure 5: "how many domain names contribute
    to what fraction of the traffic volume". Keys are ordered by their
    contribution (largest first by default) and the second element is the
    running share of the total.
    """
    total = float(sum(values.values()))
    items = sorted(values.items(), key=lambda kv: kv[1], reverse=descending)
    out: List[Tuple[str, float]] = []
    acc = 0.0
    for key, val in items:
        acc += val
        out.append((key, acc / total if total > 0 else 0.0))
    return out


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed).

    Used by tests to assert that synthetic traffic volume is heavy-tailed in
    the way Figure 5's "few domains carry most bytes" requires.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("gini of empty sequence")
    if any(v < 0 for v in data):
        raise ValueError("gini requires non-negative values")
    n = len(data)
    total = sum(data)
    if total == 0:
        return 0.0
    cum = 0.0
    weighted = 0.0
    for i, v in enumerate(data, start=1):
        cum += v
        weighted += cum
    # Standard formula: G = (n + 1 - 2 * sum(cum_i)/total) / n
    return (n + 1 - 2 * weighted / total) / n
