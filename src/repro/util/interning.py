"""Bounded intern tables for hot-path strings and parsed IP addresses.

FlowDNS pushes the same few thousand distinct strings (domain names, IP
texts) and packed addresses through the pipeline millions of times. The
codecs and adapters intern them here so every downstream dict operation
(shard hashing, map lookups, chain walks) sees one shared object whose
hash is computed once. Both tables are bounded: at the cap they are
dropped wholesale — an O(1) reset that keeps worst-case memory flat
while the steady-state working set (names live in the DNS maps anyway)
re-interns within one batch.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Union

IPAddressLike = Union[str, bytes, int, ipaddress.IPv4Address, ipaddress.IPv6Address]

#: Cap on each table; 64K entries comfortably covers an ISP's hot set.
INTERN_TABLE_MAX = 1 << 16

_strings: Dict[str, str] = {}
_addresses: Dict[object, object] = {}
_ip_texts: Dict[object, str] = {}


def intern_string(text: str) -> str:
    """Return the canonical shared object for ``text``."""
    cached = _strings.get(text)
    if cached is not None:
        return cached
    if len(_strings) >= INTERN_TABLE_MAX:
        _strings.clear()
    _strings[text] = text
    return text


def cached_ip_address(raw: IPAddressLike):
    """``ipaddress.ip_address`` with a bounded cache keyed on the input.

    Accepts everything :func:`ipaddress.ip_address` accepts (text, packed
    bytes, int). Raises the same ``ValueError`` on invalid input; failures
    are never cached.
    """
    ip = _addresses.get(raw)
    if ip is None:
        ip = ipaddress.ip_address(raw)
        if len(_addresses) >= INTERN_TABLE_MAX:
            _addresses.clear()
        _addresses[raw] = ip
    return ip


#: The raw text table's probe, for decoders that inline the cache hit
#: path into generated code (one dict .get per address instead of a
#: Python call). Tables are only ever cleared in place, so this bound
#: method stays valid across clear_intern_tables()/overflow clears.
#: Misses must fall back to cached_ip_text, which validates and fills.
ip_text_probe = _ip_texts.get


def cached_ip_text(raw: IPAddressLike) -> str:
    """Canonical interned text for an address, without the address object.

    The columnar flow path keys its DNS-map lookups on IP *text*; going
    straight from the wire representation (packed bytes for v9/IPFIX,
    host int for v5) to the interned text skips the ``ipaddress`` object
    the per-record path materialises. The text is the same canonical
    spelling ``str(ip_address(raw))`` produces, so it hash-matches the
    keys FillUp interned. Raises ``ValueError`` on invalid input;
    failures are never cached.
    """
    text = _ip_texts.get(raw)
    if text is None:
        if type(raw) is bytes and len(raw) == 4:
            # Packed IPv4: every 4-byte value is a valid address and its
            # canonical spelling is plain dotted-quad — no need to round
            # trip through an ipaddress object on first sight. (IPv6
            # stays on ipaddress: its :: compression rules are not worth
            # reimplementing.)
            text = intern_string("%d.%d.%d.%d" % (raw[0], raw[1], raw[2], raw[3]))
        elif isinstance(raw, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            text = intern_string(str(raw))
        else:
            text = intern_string(str(ipaddress.ip_address(raw)))
        if len(_ip_texts) >= INTERN_TABLE_MAX:
            _ip_texts.clear()
        _ip_texts[raw] = text
    return text


def clear_intern_tables() -> None:
    """Drop all tables (tests and long-lived processes)."""
    _strings.clear()
    _addresses.clear()
    _ip_texts.clear()
