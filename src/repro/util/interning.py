"""Bounded intern tables for hot-path strings and parsed IP addresses.

FlowDNS pushes the same few thousand distinct strings (domain names, IP
texts) and packed addresses through the pipeline millions of times. The
codecs and adapters intern them here so every downstream dict operation
(shard hashing, map lookups, chain walks) sees one shared object whose
hash is computed once. Both tables are bounded: at the cap they are
dropped wholesale — an O(1) reset that keeps worst-case memory flat
while the steady-state working set (names live in the DNS maps anyway)
re-interns within one batch.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Union

IPAddressLike = Union[str, bytes, int, ipaddress.IPv4Address, ipaddress.IPv6Address]

#: Cap on each table; 64K entries comfortably covers an ISP's hot set.
INTERN_TABLE_MAX = 1 << 16

_strings: Dict[str, str] = {}
_addresses: Dict[object, object] = {}


def intern_string(text: str) -> str:
    """Return the canonical shared object for ``text``."""
    cached = _strings.get(text)
    if cached is not None:
        return cached
    if len(_strings) >= INTERN_TABLE_MAX:
        _strings.clear()
    _strings[text] = text
    return text


def cached_ip_address(raw: IPAddressLike):
    """``ipaddress.ip_address`` with a bounded cache keyed on the input.

    Accepts everything :func:`ipaddress.ip_address` accepts (text, packed
    bytes, int). Raises the same ``ValueError`` on invalid input; failures
    are never cached.
    """
    ip = _addresses.get(raw)
    if ip is None:
        ip = ipaddress.ip_address(raw)
        if len(_addresses) >= INTERN_TABLE_MAX:
            _addresses.clear()
        _addresses[raw] = ip
    return ip


def clear_intern_tables() -> None:
    """Drop both tables (tests and long-lived processes)."""
    _strings.clear()
    _addresses.clear()
