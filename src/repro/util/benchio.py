"""Benchmark result sink shared by the perf gate tests.

The acceptance gates (codec and engine throughput) measure real ratios
on whatever machine runs them; this module lets each gate drop its
numbers into one JSON file (``BENCH_pr2.json`` by default, overridable
via ``$BENCH_JSON``) so CI can upload the file as an artifact and the
perf trajectory accumulates across PRs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

DEFAULT_BENCH_FILE = "BENCH_pr2.json"


def bench_file_path(path: Optional[str] = None) -> str:
    return path or os.environ.get("BENCH_JSON", DEFAULT_BENCH_FILE)


def record_bench(name: str, value: float, path: Optional[str] = None) -> None:
    """Merge one ``name: value`` measurement into the bench JSON file.

    Best-effort by design: an unwritable or corrupt file must never fail
    the gate that produced the number.
    """
    target = bench_file_path(path)
    data = {}
    try:
        with open(target, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            data = loaded
    except (OSError, ValueError):
        pass
    data[name] = value
    try:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass
