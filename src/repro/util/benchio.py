"""Benchmark result sink shared by the perf gate tests.

The acceptance gates (codec, engine, and columnar throughput) measure
real ratios on whatever machine runs them; this module lets each gate
drop its numbers into one JSON file so CI can upload the file as an
artifact and the perf trajectory accumulates across PRs.

The default file name is parameterised per PR (``BENCH_pr10.json`` for
this one; ``$BENCH_JSON`` still overrides). Measurement *keys* are
stable across PRs — the PR 2 gates keep writing their
``v9_decode_speedup``/``engine_batched_speedup``/… entries into the
current file — so plotting one key across the per-PR artifacts gives the
trajectory.
"""

from __future__ import annotations

import json
import os
from typing import Optional

DEFAULT_BENCH_FILE = "BENCH_pr10.json"


def bench_file_path(path: Optional[str] = None) -> str:
    return path or os.environ.get("BENCH_JSON", DEFAULT_BENCH_FILE)


def record_bench(name: str, value, path: Optional[str] = None) -> None:
    """Merge one ``name: value`` measurement into the bench JSON file.

    ``value`` is any JSON-serialisable payload — scalar gate numbers for
    most keys; the sweep harness records a list of per-config row dicts.

    Best-effort by design: an unwritable or corrupt file must never fail
    the gate that produced the number.
    """
    target = bench_file_path(path)
    data = {}
    try:
        with open(target, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            data = loaded
    except (OSError, ValueError):
        pass
    data[name] = value
    try:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass
