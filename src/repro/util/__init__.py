"""Shared utilities: simulated clocks, seeded RNG helpers, statistics.

These are substrate modules used throughout the FlowDNS reproduction. They
deliberately contain no FlowDNS-specific logic so they can be reused by the
workload generators, the correlation engine, and the analysis code alike.
"""

from repro.util.clock import SimClock, SystemClock, Clock
from repro.util.errors import ReproError, ConfigError, ParseError, StreamClosed
from repro.util.rng import make_rng, derive_rng, zipf_sampler
from repro.util.stats import (
    Ecdf,
    RunningStats,
    percentile,
    quantiles,
    cumulative_share,
)
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    format_bytes,
    format_rate,
    parse_duration,
)

__all__ = [
    "Clock",
    "SimClock",
    "SystemClock",
    "ReproError",
    "ConfigError",
    "ParseError",
    "StreamClosed",
    "make_rng",
    "derive_rng",
    "zipf_sampler",
    "Ecdf",
    "RunningStats",
    "percentile",
    "quantiles",
    "cumulative_share",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_rate",
    "parse_duration",
]
