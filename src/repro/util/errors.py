"""Exception hierarchy for the FlowDNS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
being able to distinguish configuration problems from wire-format problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ParseError(ReproError):
    """A wire-format payload (DNS message, Netflow datagram) is malformed."""


class StreamClosed(ReproError):
    """An operation was attempted on a stream that has been closed."""
