"""Clock abstractions.

FlowDNS's mechanisms are all time-driven: clear-up intervals, buffer
rotation, TTL expiry, diurnal load. To reproduce week-long deployments
(Figure 2) in seconds, the simulation engine runs against a
:class:`SimClock` whose time is advanced by record timestamps, while the
threaded engine can use a :class:`SystemClock` for live operation.
"""

from __future__ import annotations

import time as _time


class Clock:
    """Interface: something that can report the current UNIX timestamp."""

    def now(self) -> float:
        raise NotImplementedError

    def advance_to(self, ts: float) -> None:
        """Move time forward. No-op for real clocks."""


class SystemClock(Clock):
    """Wall-clock time, for live/threaded operation."""

    def now(self) -> float:
        return _time.time()


class MonotonicClock(Clock):
    """A never-backwards clock for interval measurement.

    Wall clocks can step (NTP slew, manual adjustment), which would
    corrupt recorded inter-arrival gaps; default capture timestamps
    (:mod:`repro.replay`) therefore come from this clock so replay can
    reproduce the gaps faithfully. (Live DNS frames are the exception:
    they carry the fill lane's wall-clock arrival stamp instead, because
    a replay must store records at the *identical* timestamps the live
    session used — that lane trades step-immunity for storage fidelity.)
    The absolute values are only meaningful within one process lifetime
    — exactly what a capture session is.
    """

    def now(self) -> float:
        return _time.monotonic()


class SimClock(Clock):
    """A manually advanced clock driven by record timestamps.

    Time never moves backwards: :meth:`advance_to` with an older timestamp
    leaves the clock unchanged, which mirrors how FlowDNS tracks the
    newest-seen record timestamp to decide when a clear-up interval has
    elapsed (Algorithm 1 uses ``d.ts - lastAClearUpTs``).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, ts: float) -> None:
        if ts > self._now:
            self._now = float(ts)

    def advance_by(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a SimClock backwards")
        self._now += seconds

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
