"""Seeded randomness helpers.

Every generator in the workload package takes an explicit seed so that a
whole "week at a large European ISP" is reproducible bit-for-bit. Workers
that need independent streams derive child RNGs from a parent seed and a
string label, so adding a new consumer never perturbs existing ones.

:func:`derive_rng` is the repo's **one** seed-derivation scheme: the
golden-corpus regeneration (``python -m repro.replay.scenarios``), the
fault injector, and the workload generator all derive every stream
through it. Its stability contract:

* **Cross-version / cross-process stable.** The derivation is
  SHA-256 over ``f"{seed}:{label}"`` — no ``hash()`` anywhere — so it is
  independent of ``PYTHONHASHSEED``, of dict/set iteration order, and of
  the interpreter build. ``random.Random`` itself is the Mersenne
  Twister whose sequence CPython guarantees stable across versions for
  a given integer seed. Anything seeded through here therefore
  regenerates byte-identically on any Python ≥ 3.8 (pinned by
  ``tests/test_workload_generator.py``'s cross-hash-seed subprocess
  tests).
* **Insertion-order independent.** Consumers must not route draws
  through ``hash()``-ordered containers; iterate sorted keys or
  explicit sequences when draw order matters.
* **Label-isolated.** Adding a stream under a new label never perturbs
  existing labels' streams, so generators can grow new lanes without
  invalidating golden files.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


def make_rng(seed: int) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically."""
    return random.Random(seed)


def derive_rng(seed: int, label: str) -> random.Random:
    """Derive an independent RNG from ``seed`` and a stable string label.

    Uses SHA-256 so the derived streams are uncorrelated regardless of how
    similar the labels are (``"dns-0"`` vs ``"dns-1"``).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_sampler(n: int, alpha: float, rng: random.Random):
    """Return a zero-arg callable sampling ranks ``0..n-1`` Zipf(alpha).

    Domain-name popularity at an ISP is heavy-tailed: a handful of CDN
    hostnames dominate the query stream. We precompute the CDF once and
    sample by bisection, which is O(log n) per draw and exact.
    """
    if n <= 0:
        raise ValueError("zipf_sampler needs n >= 1")
    if alpha < 0:
        raise ValueError("zipf_sampler needs alpha >= 0")
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0  # guard against floating point shortfall

    import bisect

    def sample() -> int:
        return bisect.bisect_left(cdf, rng.random())

    return sample


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item with the given relative weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    x = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if x < acc:
            return item
    return items[-1]
