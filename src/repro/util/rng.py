"""Seeded randomness helpers.

Every generator in the workload package takes an explicit seed so that a
whole "week at a large European ISP" is reproducible bit-for-bit. Workers
that need independent streams derive child RNGs from a parent seed and a
string label, so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


def make_rng(seed: int) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically."""
    return random.Random(seed)


def derive_rng(seed: int, label: str) -> random.Random:
    """Derive an independent RNG from ``seed`` and a stable string label.

    Uses SHA-256 so the derived streams are uncorrelated regardless of how
    similar the labels are (``"dns-0"`` vs ``"dns-1"``).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_sampler(n: int, alpha: float, rng: random.Random):
    """Return a zero-arg callable sampling ranks ``0..n-1`` Zipf(alpha).

    Domain-name popularity at an ISP is heavy-tailed: a handful of CDN
    hostnames dominate the query stream. We precompute the CDF once and
    sample by bisection, which is O(log n) per draw and exact.
    """
    if n <= 0:
        raise ValueError("zipf_sampler needs n >= 1")
    if alpha < 0:
        raise ValueError("zipf_sampler needs alpha >= 0")
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0  # guard against floating point shortfall

    import bisect

    def sample() -> int:
        return bisect.bisect_left(cdf, rng.random())

    return sample


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item with the given relative weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    x = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if x < acc:
            return item
    return items[-1]
