"""flowdns — command-line interface to the FlowDNS reproduction.

Subcommands:

* ``flowdns simulate`` — run a preset deployment (large/small ISP) for a
  chosen simulated duration and print the headline report;
* ``flowdns ablation`` — re-run the Section 4 benchmark variants;
* ``flowdns correlate`` — offline correlation of *your own* DNS and flow
  files (CSV or JSON-lines) via a field-mapping config, writing the
  standard TSV output — the paper's "other data formats … in a
  configuration file" feature;
* ``flowdns serve`` — the live service: bind real sockets (NetFlow/IPFIX
  over UDP, length-framed DNS over TCP) and correlate as traffic
  arrives, via the asyncio engine (``--capture`` tees the wire bytes
  into a replayable capture file);
* ``flowdns capture`` — produce a capture file: either record live
  sockets for a bounded duration, or synthesize a scenario from the
  library in :mod:`repro.replay.scenarios`;
* ``flowdns replay`` — feed a capture through any live engine
  (threaded, sharded, async), timestamp-faithful or at max speed;
* ``flowdns generate`` — synthesize an internet-scale workload capture:
  Zipf domain popularity, heavy-tailed flow sizes, Poisson arrivals,
  streamed to disk in bounded memory;
* ``flowdns sweep`` — generate a parameter grid of workloads and replay
  every point through the requested engines and fault profiles,
  recording per-config rows into the bench JSON;
* ``flowdns analyze`` — post-process a FlowDNS output file: per-service
  volume, RFC 1035 violations, correlation rate.

Run ``flowdns <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

from repro.core.adapter import iter_csv, iter_jsonl, load_mapping_file
from repro.core.config import (
    DEFAULT_DNS_PORT,
    DEFAULT_FILL_TIMEOUT,
    DEFAULT_FLOW_PORT,
    DEFAULT_LIVE_HOST,
    EngineConfig,
)
from repro.core.simulation import SimulationEngine
from repro.core.variants import (
    ENGINE_VARIANTS,
    FIGURE3_VARIANTS,
    Variant,
    config_for,
    engine_for,
)
from repro.core.writer import parse_result_line
from repro.dns.validation import is_valid_domain
from repro.util.units import format_bytes
from repro.workloads.isp import large_isp, small_isp

PRESETS = {"large": large_isp, "small": small_isp}


def _add_simulate(subparsers) -> None:
    p = subparsers.add_parser("simulate", help="run a preset deployment")
    p.add_argument("--preset", choices=sorted(PRESETS), default="large")
    p.add_argument("--hours", type=float, default=4.0, help="simulated hours")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--variant", choices=[v.value for v in Variant], default="main")
    p.add_argument("--output", help="write correlation TSV to this file")
    p.add_argument("--dashboard", action="store_true",
                   help="render a sparkline dashboard of the run")
    p.add_argument("--metrics", action="store_true",
                   help="print Prometheus-style metrics for the run")
    p.set_defaults(func=cmd_simulate)


def cmd_simulate(args) -> int:
    workload = PRESETS[args.preset](seed=args.seed, duration=args.hours * 3600.0)
    variant = Variant(args.variant)
    config = config_for(variant)
    sink = open(args.output, "w", encoding="utf-8") if args.output else None
    try:
        engine = SimulationEngine(
            config,
            cost_params=workload.cost_params,
            worker_count=workload.worker_count,
            sink=sink,
            variant_name=variant.value,
        )
        report = engine.run(workload.dns_records(), workload.flow_records())
    finally:
        if sink is not None:
            sink.close()
    print(f"preset={args.preset} variant={variant.value} "
          f"simulated={args.hours:.1f}h seed={args.seed}")
    print(f"  DNS records     : {report.dns_records:,}")
    print(f"  flow records    : {report.flow_records:,}")
    print(f"  correlation rate: {report.correlation_rate:.1%}")
    print(f"  stream loss     : {report.overall_loss_rate:.3%}")
    print(f"  modelled CPU    : {report.mean_cpu_percent:.0f} %")
    print(f"  modelled memory : {report.mean_memory_gb:.1f} GiB")
    if args.output:
        print(f"  output written  : {args.output}")
    if args.dashboard:
        from repro.analysis.figures import render_report_summary

        print()
        print(render_report_summary(
            report, title=f"{args.preset} ISP / {variant.value}"
        ))
    if args.metrics:
        from repro.core.monitor import render_report

        print()
        print(render_report(report), end="")
    return 0


def _add_ablation(subparsers) -> None:
    p = subparsers.add_parser("ablation", help="run the Section 4 variants")
    p.add_argument("--preset", choices=sorted(PRESETS), default="large")
    p.add_argument("--hours", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_ablation)


def cmd_ablation(args) -> int:
    print(f"{'variant':<14s} {'corr':>7s} {'CPU %':>8s} {'mem GiB':>8s} {'loss':>7s}")
    for variant in FIGURE3_VARIANTS + (Variant.EXACT_TTL,):
        workload = PRESETS[args.preset](seed=args.seed, duration=args.hours * 3600.0)
        engine = SimulationEngine(
            config_for(variant),
            cost_params=workload.cost_params,
            worker_count=workload.worker_count,
            variant_name=variant.value,
        )
        report = engine.run(workload.dns_records(), workload.flow_records())
        print(f"{variant.value:<14s} {report.correlation_rate:>6.1%} "
              f"{report.mean_cpu_percent:>8.0f} {report.mean_memory_gb:>8.1f} "
              f"{report.overall_loss_rate:>7.2%}")
    return 0


def _add_correlate(subparsers) -> None:
    p = subparsers.add_parser(
        "correlate", help="correlate your own DNS + flow files offline"
    )
    p.add_argument("--dns", required=True, help="DNS records file (CSV or JSONL)")
    p.add_argument("--flows", required=True, help="flow records file (CSV or JSONL)")
    p.add_argument("--mapping", required=True, help="field-mapping JSON config")
    p.add_argument("--output", default="-", help="output TSV ('-' = stdout)")
    p.add_argument("--num-split", type=int, default=10)
    p.add_argument(
        "--engine", choices=sorted(ENGINE_VARIANTS), default="simulation",
        help="engine variant: " + "; ".join(
            f"{name} = {desc}" for name, desc in sorted(ENGINE_VARIANTS.items())
        ),
    )
    p.add_argument(
        "--shards", type=int, default=None,
        help="worker processes for --engine sharded (default: CPU count)",
    )
    _add_fill_timeout(p)
    p.set_defaults(func=cmd_correlate)


def _add_fill_timeout(parser) -> None:
    # default=None: EngineConfig.from_args needs flag *presence* to
    # reject --fill-timeout under engines that have no fill gate.
    parser.add_argument(
        "--fill-timeout", type=float, default=None,
        help="seconds the threaded engine's flow gate waits for the DNS "
             "fill before correlating against a partially-filled store "
             f"(default: {DEFAULT_FILL_TIMEOUT:.0f})",
    )


def _engine_config(args, command: str):
    """Interpret CLI flags via EngineConfig.from_args; (config, rc) pair.

    All per-engine/per-mode flag applicability lives in
    :meth:`EngineConfig.from_args`; the CLI's job is only to print the
    ConfigError and map it to exit code 2.
    """
    from repro.util.errors import ConfigError

    try:
        return EngineConfig.from_args(args, command), 0
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return None, 2


def _gated_flow_source(engine, flow_records, timeout, warnings_out):
    """Gate the flow source behind fill completion for the threaded engine.

    The threaded engine consumes its sources concurrently; offline
    correlation wants every DNS record ingested before flows are looked
    up, so the flow source blocks until the FillUp workers have drained
    the DNS side (bounded by ``timeout`` as a hang safeguard). A timeout
    prints immediately *and* is collected into ``warnings_out`` so the
    caller can attach it to the run's ``EngineReport.warnings``.
    """
    from repro.core.pipeline import gated_with_warning

    def warn():
        print(f"warning: {warnings_out[-1]}", file=sys.stderr)

    return gated_with_warning(
        engine, flow_records, timeout, warnings_out, on_timeout=warn
    )


def _open_rows(path):
    handle = open(path, "r", encoding="utf-8")
    if path.endswith((".jsonl", ".json", ".ndjson")):
        return handle, iter_jsonl(handle)
    return handle, iter_csv(handle)


def cmd_correlate(args) -> int:
    engine_config, rc = _engine_config(args, "correlate")
    if rc:
        return rc
    dns_adapter, flow_adapter = load_mapping_file(args.mapping)
    if dns_adapter is None or flow_adapter is None:
        print("mapping config must define both 'dns' and 'flow' sections",
              file=sys.stderr)
        return 2

    dns_handle, dns_rows = _open_rows(args.dns)
    flow_handle, flow_rows = _open_rows(args.flows)
    sink = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    try:
        dns_records = dns_adapter.adapt_many(dns_rows)
        flow_records = flow_adapter.adapt_many(flow_rows)
        gate_warnings = []
        if args.engine == "simulation":
            engine = SimulationEngine(engine_config.flowdns, sink=sink)
            report = engine.run(dns_records, flow_records)
        elif args.engine in ("sharded", "async"):
            engine = engine_for(args.engine, config=engine_config, sink=sink)
            # dns_first gives the hard DNS-before-flows ordering offline
            # correlation expects (per-shard FIFO queues / the async fill
            # barrier).
            report = engine.run([dns_records], [flow_records], dns_first=True)
        else:
            engine = engine_for(args.engine, config=engine_config, sink=sink)
            flow_source = _gated_flow_source(
                engine, flow_records, engine_config.fill_timeout, gate_warnings
            )
            report = engine.run([dns_records], [flow_source])
        report.warnings.extend(gate_warnings)
    finally:
        dns_handle.close()
        flow_handle.close()
        if sink is not sys.stdout:
            sink.close()
    print(
        f"correlated {report.matched_flows:,}/{report.flow_records:,} flows "
        f"({report.correlation_rate:.1%} of bytes); "
        f"dns malformed={dns_adapter.stats.malformed} "
        f"skipped-rtype={dns_adapter.stats.skipped_rtype} "
        f"flow malformed={flow_adapter.stats.malformed}",
        file=sys.stderr,
    )
    return 0


def _add_live_options(p, default_duration: float) -> None:
    """The socket-session options `serve` and live `capture` share.

    Every flag keeps a ``None`` default: :meth:`EngineConfig.from_args`
    owns both the effective defaults and presence-based rejection (e.g.
    live flags under ``capture --scenario``).
    """
    p.add_argument("--host", default=None,
                   help=f"bind address (default: {DEFAULT_LIVE_HOST})")
    p.add_argument("--flow-port", type=int, default=None,
                   help="UDP port for NetFlow/IPFIX exports "
                        f"(default: {DEFAULT_FLOW_PORT}; 0 = ephemeral)")
    p.add_argument("--dns-port", type=int, default=None,
                   help="TCP port for length-framed DNS messages "
                        f"(default: {DEFAULT_DNS_PORT}; 0 = ephemeral)")
    p.add_argument("--duration", type=float, default=None,
                   help="seconds to serve before draining "
                        f"(default: {default_duration:g}; 0 = until Ctrl-C)")
    p.add_argument("--num-split", type=int, default=10)


def _add_serve(subparsers) -> None:
    p = subparsers.add_parser(
        "serve",
        help="run the live asyncio engine over real sockets "
             "(NetFlow/IPFIX via UDP, DNS via TCP)",
    )
    _add_live_options(p, default_duration=0.0)
    p.add_argument("--ingest-workers", type=int, default=None,
                   help="SO_REUSEPORT socket-sharding worker processes for "
                        "UDP flow ingest (default: 1 = single in-loop "
                        "socket; >1 runs one receive+decode process per "
                        "worker)")
    p.add_argument("--output", default=None,
                   help="write correlation TSV to this file (default: discard)")
    p.add_argument("--capture", default=None,
                   help="tee every received wire unit into this capture file "
                        "(replayable with `flowdns replay`)")
    p.add_argument("--snapshot", default=None, metavar="PATH",
                   help="periodically write a crash-safe storage snapshot to "
                        "PATH (atomic rename) and restore from it on start; "
                        "a corrupt or mismatched snapshot warns and the "
                        "service starts empty")
    p.add_argument("--snapshot-interval", type=float, default=None,
                   help="seconds between periodic snapshots (default: 60; "
                        "requires --snapshot)")
    p.add_argument("--stats-interval", type=float, default=None,
                   help="print a live stats line to stderr every N seconds "
                        "(default: 0 = off)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve live Prometheus-style metrics over HTTP on "
                        "this port (0 = ephemeral; default: disabled)")
    p.add_argument("--max-entries", type=int, default=None,
                   help="bound every storage map to this many entries, "
                        "evicting oldest-first at overflow (default: 0 = "
                        "unbounded)")
    p.set_defaults(func=cmd_serve)


class _BindFailure(Exception):
    """A live session's listeners could not bind their sockets."""


class _LazyTextFile:
    """A write-on-first-use text sink: the path is not opened (and an
    existing file not truncated) until something is actually written, so
    a live session that dies at bind time leaves prior contents intact.
    The async engine writes its TSV header only after the listeners
    bind, which is what makes this deferral effective."""

    def __init__(self, path: str):
        self._path = path
        self._file = None

    def write(self, text: str) -> int:
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
        return self._file.write(text)

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()


def _run_live_session(engine_config, sink, capture):
    """Bind the live listeners, serve until stop/duration, return the report.

    The one live-session implementation behind ``flowdns serve`` (sink =
    correlation TSV, capture optional) and ``flowdns capture`` (sink
    discarded, capture required). ``engine_config.ingest_workers > 1``
    swaps the in-loop UDP socket for SO_REUSEPORT socket sharding —
    N worker processes each running their own receive + decode stack.
    Raises :class:`_BindFailure` when a listener's port is taken.
    """
    import asyncio
    import signal

    from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest

    dns_ingest = TcpDnsIngest(
        host=engine_config.host, port=engine_config.dns_port, capture=capture
    )
    if engine_config.ingest_workers > 1:
        from repro.core.ingest import ReuseportUdpIngest

        flow_ingest = ReuseportUdpIngest(
            host=engine_config.host,
            port=engine_config.flow_port,
            workers=engine_config.ingest_workers,
            recv_buffer_bytes=engine_config.recv_buffer_bytes,
        )
    else:
        flow_ingest = UdpFlowIngest(
            host=engine_config.host,
            port=engine_config.flow_port,
            capture=capture,
            recv_buffer_bytes=engine_config.recv_buffer_bytes,
        )
    engine = AsyncEngine(engine_config, sink=sink)
    duration = engine_config.duration

    async def serve() -> "object":
        loop = asyncio.get_running_loop()
        run = loop.create_task(engine.run_async([dns_ingest], [flow_ingest]))
        # Let the listeners bind before announcing the addresses; if the
        # engine task dies first (port already in use), surface that as
        # a startup failure instead of polling forever. Only this phase
        # maps to "failed to bind" — a runtime error after the sockets
        # are up propagates as itself.
        while dns_ingest.address is None or flow_ingest.address is None:
            if run.done():
                try:
                    return await run
                except OSError as exc:
                    raise _BindFailure(exc) from exc
            await asyncio.sleep(0.01)
        print(f"NetFlow/IPFIX (UDP): {flow_ingest.address[0]}:{flow_ingest.address[1]}",
              file=sys.stderr)
        print(f"DNS over TCP       : {dns_ingest.address[0]}:{dns_ingest.address[1]}",
              file=sys.stderr)
        if engine_config.metrics_port is not None:
            # The endpoint starts right after the listeners bind; wait it
            # out the same way so the printed address is real.
            while engine.metrics_address is None:
                if run.done():
                    try:
                        return await run
                    except OSError as exc:
                        raise _BindFailure(exc) from exc
                await asyncio.sleep(0.01)
            print(f"metrics (HTTP)     : "
                  f"{engine.metrics_address[0]}:{engine.metrics_address[1]}",
                  file=sys.stderr)
        if engine_config.snapshot_path:
            print(f"snapshots          : {engine_config.snapshot_path} "
                  f"every {engine_config.snapshot_interval:g}s",
                  file=sys.stderr)
        try:
            loop.add_signal_handler(signal.SIGINT, engine.request_stop)
            loop.add_signal_handler(signal.SIGTERM, engine.request_stop)
        except NotImplementedError:  # pragma: no cover - non-Unix loop
            pass
        if duration > 0:
            loop.call_later(duration, engine.request_stop)
            print(f"serving for {duration:.0f}s ...", file=sys.stderr)
        else:
            print("serving until Ctrl-C ...", file=sys.stderr)
        return await run

    return asyncio.run(serve())


def _print_live_summary(report) -> None:
    print(f"dns records ingested : {report.dns_records:,}", file=sys.stderr)
    print(f"flows correlated     : {report.matched_flows:,}/{report.flow_records:,} "
          f"({report.correlation_rate:.1%} of bytes)", file=sys.stderr)
    if report.restored_entries:
        print(f"restored from snap   : {report.restored_entries:,} entries",
              file=sys.stderr)
    if report.snapshots_written:
        print(f"snapshots written    : {report.snapshots_written:,}",
              file=sys.stderr)
    if report.evictions:
        print(f"entries evicted      : {report.evictions:,} (memory bound)",
              file=sys.stderr)
    if report.worker_restarts:
        print(f"workers respawned    : {report.worker_restarts:,}",
              file=sys.stderr)
    for name, stats in report.ingest.items():
        rcvbuf = (
            f" rcvbuf={format_bytes(stats.recv_buffer_bytes)}"
            if stats.recv_buffer_bytes
            else ""
        )
        print(f"  {name}: received={stats.received:,} dropped={stats.dropped:,} "
              f"malformed={stats.malformed:,}{rcvbuf}", file=sys.stderr)
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)


def _run_live_session_cli(engine_config, sink, capture) -> int:
    """The shared serve/capture session lifecycle: run, summarize, and
    apply the bind-failure contract (exit 2, capture path untouched,
    clean zero-traffic sessions still leave a valid empty capture)."""
    try:
        report = _run_live_session(engine_config, sink, capture)
        if capture is not None:
            capture.ensure_open()
    except _BindFailure as exc:
        print(f"failed to bind listeners: {exc}", file=sys.stderr)
        return 2
    finally:
        if capture is not None:
            capture.close()
        if sink is not None:
            sink.close()
    _print_live_summary(report)
    return 0


def cmd_serve(args) -> int:
    from repro.replay.capture import CaptureWriter

    engine_config, rc = _engine_config(args, "serve")
    if rc:
        return rc
    sink = _LazyTextFile(args.output) if args.output else None
    capture = CaptureWriter(args.capture) if args.capture else None
    rc = _run_live_session_cli(engine_config, sink, capture)
    if rc:
        return rc
    if args.output:
        print(f"output written       : {args.output}", file=sys.stderr)
    if args.capture:
        print(f"capture written      : {args.capture} "
              f"({capture.frames_written:,} frames)", file=sys.stderr)
    return 0


def _add_capture(subparsers) -> None:
    from repro.replay.scenarios import GOLDEN_SEED, SCENARIOS

    p = subparsers.add_parser(
        "capture",
        help="produce a capture file: record live sockets for a bounded "
             "duration, or synthesize a scenario",
    )
    p.add_argument("output", nargs="?", default=None,
                   help="capture file to write")
    p.add_argument("--scenario", choices=sorted(SCENARIOS), default=None,
                   help="synthesize this scenario instead of recording live "
                        "sockets")
    p.add_argument("--list-scenarios", action="store_true",
                   help="list the scenario library and exit")
    p.add_argument("--seed", type=int, default=None,
                   help=f"scenario seed (default: {GOLDEN_SEED}, the golden "
                        "corpus seed)")
    _add_live_options(p, default_duration=60.0)
    p.set_defaults(func=cmd_capture)


def cmd_capture(args) -> int:
    from repro.replay.capture import CaptureWriter
    from repro.replay.scenarios import GOLDEN_SEED, SCENARIOS, write_scenario

    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()
            print(f"{name:<22s} {doc[0] if doc else ''}".rstrip())
        return 0
    if args.output is None:
        print("capture: an output path is required (or --list-scenarios)",
              file=sys.stderr)
        return 2
    # The two modes take disjoint options; EngineConfig.from_args rejects
    # any explicitly-passed flag the selected mode would ignore.
    engine_config, rc = _engine_config(args, "capture")
    if rc:
        return rc
    if args.scenario is not None:
        seed = args.seed if args.seed is not None else GOLDEN_SEED
        count = write_scenario(args.scenario, args.output, seed=seed)
        print(f"wrote {args.output} ({count} frames, "
              f"scenario {args.scenario!r}, seed {seed})", file=sys.stderr)
        return 0
    capture = CaptureWriter(args.output)
    rc = _run_live_session_cli(engine_config, sink=None, capture=capture)
    if rc:
        return rc
    print(f"capture written      : {args.output} "
          f"({capture.frames_written:,} frames, "
          f"{capture.bytes_written:,} bytes)", file=sys.stderr)
    return 0


def _add_replay(subparsers) -> None:
    from repro.replay.faults import FAULT_PROFILES
    from repro.replay.runner import REPLAY_ENGINES

    p = subparsers.add_parser(
        "replay",
        help="feed a capture file through a live engine",
    )
    p.add_argument("capture", nargs="?", default=None,
                   help="capture file to replay")
    p.add_argument("--engine", choices=REPLAY_ENGINES, default="threaded",
                   help="engine to replay through (default: threaded)")
    p.add_argument("--realtime", action="store_true",
                   help="sleep out the recorded inter-arrival gaps instead "
                        "of replaying at max speed")
    p.add_argument("--speed", type=float, default=None,
                   help="realtime pacing divisor (default 1.0; 2.0 = twice "
                        "as fast; requires --realtime)")
    p.add_argument("--output", default="-",
                   help="output TSV ('-' = stdout)")
    p.add_argument("--num-split", type=int, default=10)
    p.add_argument("--shards", type=int, default=None,
                   help="worker processes for --engine sharded")
    p.add_argument("--exact-ttl", action="store_true",
                   help="run the Appendix A.8 exact-TTL variant")
    p.add_argument("--max-entries", type=int, default=None,
                   help="bound every storage map to this many entries, "
                        "evicting oldest-first at overflow (default: 0 = "
                        "unbounded)")
    p.add_argument("--fault-profile", choices=sorted(FAULT_PROFILES),
                   default=None,
                   help="perturb the capture with this named fault profile "
                        "before it reaches the engine")
    p.add_argument("--fault", action="append", default=None, metavar="NAME=VALUE",
                   help="set one fault rate on both lanes (e.g. drop=0.05, "
                        "reorder=0.1, clock_skew=30); repeatable; overlays "
                        "--fault-profile")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="seed for the deterministic fault RNG (default: 0; "
                        "requires --fault-profile or --fault)")
    p.add_argument("--list-fault-profiles", action="store_true",
                   help="list the named fault profiles and exit")
    _add_fill_timeout(p)
    p.set_defaults(func=cmd_replay)


def cmd_replay(args) -> int:
    from repro.replay.capture import probe_capture
    from repro.replay.faults import FAULT_PROFILES
    from repro.replay.runner import replay_capture
    from repro.util.errors import ConfigError, ParseError

    if args.list_fault_profiles:
        for name in sorted(FAULT_PROFILES):
            print(f"{name:<18s} {FAULT_PROFILES[name].description}")
        return 0
    # Engine/mode flag mismatches (--shards off sharded, --fill-timeout
    # off threaded, --speed without --realtime, --fault-seed without a
    # fault flag) are rejected here, before any sink opens.
    engine_config, rc = _engine_config(args, "replay")
    if rc:
        return rc
    if args.capture is None:
        print("replay: a capture path is required (or --list-fault-profiles)",
              file=sys.stderr)
        return 2
    try:
        # Validate before the output sink opens: a bad capture path must
        # not truncate an existing results file on its way to exit 2.
        probe_capture(args.capture)
    except (OSError, ParseError) as exc:
        print(f"cannot replay {args.capture}: {exc}", file=sys.stderr)
        return 2
    sink = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    try:
        report = replay_capture(
            args.capture,
            engine=args.engine,
            config=engine_config,
            sink=sink,
            # Pacing/sharding/gating all ride in engine_config.
            # No immediate on_fill_timeout print: the warning lands in
            # report.warnings and the loop below prints it exactly once.
        )
    except (OSError, ParseError, ConfigError) as exc:
        print(f"cannot replay {args.capture}: {exc}", file=sys.stderr)
        return 2
    finally:
        if sink is not sys.stdout:
            sink.close()
    if engine_config.fault_profile or engine_config.fault_rates:
        profile = engine_config.fault_profile or "custom"
        seed = engine_config.fault_seed if engine_config.fault_seed is not None else 0
        print(f"faults injected: profile={profile} seed={seed} "
              f"(re-run with the same seed for an identical stream)",
              file=sys.stderr)
    print(f"replayed {args.capture} through engine={args.engine}: "
          f"{report.matched_flows:,}/{report.flow_records:,} flows correlated "
          f"({report.correlation_rate:.1%} of bytes), "
          f"{report.dns_records:,} dns records", file=sys.stderr)
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def _add_workload_base_options(p) -> None:
    """Workload knobs `generate` and `sweep` share (None defaults:
    :meth:`GeneratorParams.from_args` owns the effective values)."""
    from repro.workloads.generator import SIZE_CDFS, TTL_PROFILES

    p.add_argument("--seed", type=int, default=None,
                   help="workload seed (default: 0); with the same config, "
                        "the output capture is byte-identical per seed")
    p.add_argument("--duration", type=float, default=None,
                   help="trace seconds to synthesize (default: 60)")
    p.add_argument("--rate", type=float, default=None,
                   help="aggregate resolution events/s (mutually exclusive "
                        "with --per-client-rate, which it overrides)")
    p.add_argument("--per-client-rate", type=float, default=None,
                   help="resolution events/s per client (default: 0.02)")
    p.add_argument("--domains", type=int, default=None, dest="n_domains",
                   help="benign domain-universe size (default: 400)")
    p.add_argument("--flow-size-cdf", choices=sorted(SIZE_CDFS), default=None,
                   help="flow-size distribution (default: websearch)")
    p.add_argument("--ttl-profile", choices=sorted(TTL_PROFILES), default=None,
                   help="TTL distribution profile (default: paper)")
    p.add_argument("--cdn-count", type=int, default=None,
                   help="shared-pool CDN providers on top of the dedicated "
                        "streaming CDNs (default: 3)")
    p.add_argument("--aaaa-fraction", type=float, default=None,
                   help="fraction of resolutions answered with AAAA "
                        "(default: 0.1)")
    p.add_argument("--public-resolver-fraction", type=float, default=None,
                   help="fraction of resolutions FlowDNS never sees (flows "
                        "still happen; match rate drops; default: 0)")
    p.add_argument("--diurnal-amplitude", type=float, default=None,
                   help="diurnal rate modulation amplitude in [0,1) "
                        "(default: 0 = flat Poisson)")


def _list_workload_tables(args) -> bool:
    """Handle --list-size-cdfs / --list-ttl-profiles; True if one ran."""
    from repro.workloads.generator import SIZE_CDFS, TTL_PROFILES, SizeCdf
    from repro.workloads.ttl_model import ADDRESS_TTL_WEIGHTS

    if getattr(args, "list_size_cdfs", False):
        for name in sorted(SIZE_CDFS):
            cdf = SizeCdf.named(name)
            print(f"{name:<12s} mean={format_bytes(round(cdf.mean())):>10s}  "
                  f"max={format_bytes(cdf.sizes[-1])}")
        return True
    if getattr(args, "list_ttl_profiles", False):
        for name in sorted(TTL_PROFILES):
            weights = TTL_PROFILES[name]
            address = weights[0] if weights is not None else ADDRESS_TTL_WEIGHTS
            ttls = ", ".join(str(t) for t, _ in address)
            print(f"{name:<8s} address TTLs: {ttls}")
        return True
    return False


def _add_generate(subparsers) -> None:
    p = subparsers.add_parser(
        "generate",
        help="synthesize an internet-scale workload capture (streamed, "
             "bounded memory)",
    )
    p.add_argument("output", nargs="?", default=None,
                   help="capture file to write")
    p.add_argument("--clients", type=int, default=None,
                   help="client population size (default: 5000; max ~4.2M "
                        "— the CGNAT /10)")
    p.add_argument("--zipf-alpha", type=float, default=None,
                   help="domain-popularity Zipf exponent (default: 0.9)")
    p.add_argument("--chain-depth", type=int, default=None,
                   help="max CNAME-chain depth; the paper's Figure 6 "
                        "distribution truncated + renormalised (default: 4)")
    _add_workload_base_options(p)
    p.add_argument("--list-size-cdfs", action="store_true",
                   help="list the named flow-size CDFs and exit")
    p.add_argument("--list-ttl-profiles", action="store_true",
                   help="list the named TTL profiles and exit")
    p.set_defaults(func=cmd_generate)


def cmd_generate(args) -> int:
    from repro.util.errors import ConfigError
    from repro.workloads.generator import GeneratorParams, generate_capture

    if _list_workload_tables(args):
        return 0
    if args.output is None:
        print("generate: an output path is required (or --list-size-cdfs / "
              "--list-ttl-profiles)", file=sys.stderr)
        return 2
    try:
        params = GeneratorParams.from_args(args)
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = generate_capture(params, args.output)
    print(f"wrote {args.output}: {report.flows:,} flows, "
          f"{report.dns_frames:,} dns frames "
          f"({format_bytes(report.wire_bytes)}) in {report.elapsed:.1f}s "
          f"({report.flows_per_sec:,.0f} flows/s, "
          f"peak {report.peak_pending:,} flows buffered)", file=sys.stderr)
    if report.invisible_resolutions:
        print(f"  {report.invisible_resolutions:,} resolutions via public "
              "resolvers (flows without DNS coverage)", file=sys.stderr)
    return 0


def _add_sweep(subparsers) -> None:
    from repro.replay.faults import FAULT_PROFILES
    from repro.replay.runner import REPLAY_ENGINES

    p = subparsers.add_parser(
        "sweep",
        help="generate a workload grid and replay it through engines and "
             "fault profiles, recording bench rows",
    )
    p.add_argument("out_dir", nargs="?", default=None,
                   help="directory for the grid's capture files")
    p.add_argument("--clients", type=int, nargs="+", default=None,
                   dest="clients_axis", metavar="N",
                   help="client-count axis (default: 2000)")
    p.add_argument("--zipf-alpha", type=float, nargs="+", default=None,
                   dest="zipf_axis", metavar="A",
                   help="Zipf-exponent axis (default: 0.9)")
    p.add_argument("--chain-depth", type=int, nargs="+", default=None,
                   dest="depth_axis", metavar="D",
                   help="CNAME-chain-depth axis (default: 4)")
    p.add_argument("--engine", choices=REPLAY_ENGINES, nargs="+",
                   default=None, dest="engines",
                   help="engines to replay each point through "
                        "(default: all three)")
    p.add_argument("--fault-profile", nargs="+", default=None,
                   dest="fault_profiles", metavar="PROFILE",
                   choices=sorted(FAULT_PROFILES) + ["none"],
                   help="fault-profile legs; 'none' = fault-free baseline "
                        "(default: none)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="seed for the fault legs' deterministic RNG")
    p.add_argument("--shards", type=int, default=None,
                   help="worker processes for the sharded engine's legs")
    _add_fill_timeout(p)
    _add_workload_base_options(p)
    p.add_argument("--bench", default=None, metavar="PATH",
                   help="bench JSON to record the row list into "
                        "(default: $BENCH_JSON or the per-PR file)")
    p.add_argument("--keep-captures", action="store_true",
                   help="keep the generated capture files after their legs "
                        "finish")
    p.add_argument("--list-fault-profiles", action="store_true",
                   help="list the named fault profiles and exit")
    p.set_defaults(func=cmd_sweep)


def cmd_sweep(args) -> int:
    from repro.replay.faults import FAULT_PROFILES
    from repro.util.errors import ConfigError
    from repro.workloads.sweep import SweepSpec, run_sweep

    if args.list_fault_profiles:
        for name in sorted(FAULT_PROFILES):
            print(f"{name:<18s} {FAULT_PROFILES[name].description}")
        return 0
    if args.out_dir is None:
        print("sweep: an output directory is required "
              "(or --list-fault-profiles)", file=sys.stderr)
        return 2
    try:
        spec = SweepSpec.from_args(args)
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2

    def say(message: str) -> None:
        print(message, file=sys.stderr)

    rows = run_sweep(
        spec,
        args.out_dir,
        bench_path=args.bench,
        log=say,
        keep_captures=bool(args.keep_captures),
    )
    print(f"{'clients':>8s} {'alpha':>6s} {'depth':>5s} {'engine':<9s} "
          f"{'faults':<12s} {'flows':>9s} {'match':>6s} {'loss':>6s}")
    for row in rows:
        print(f"{row['clients']:>8d} {row['zipf_alpha']:>6.2f} "
              f"{row['chain_depth']:>5d} {row['engine']:<9s} "
              f"{row['fault_profile']:<12s} {row['generated_flows']:>9,d} "
              f"{row['match_rate']:>6.1%} {row['loss_rate']:>6.1%}")
    return 0


def _add_analyze(subparsers) -> None:
    p = subparsers.add_parser("analyze", help="analyze a FlowDNS output TSV")
    p.add_argument("output_file")
    p.add_argument("--top", type=int, default=10, help="top services to list")
    p.set_defaults(func=cmd_analyze)


def cmd_analyze(args) -> int:
    bytes_by_service = defaultdict(int)
    total_bytes = 0
    correlated_bytes = 0
    rows = 0
    invalid = set()
    with open(args.output_file, "r", encoding="utf-8") as handle:
        for line in handle:
            parsed = parse_result_line(line)
            if parsed is None:
                continue
            rows += 1
            total_bytes += parsed["bytes"]
            if parsed["service"]:
                correlated_bytes += parsed["bytes"]
                bytes_by_service[parsed["service"]] += parsed["bytes"]
                if not is_valid_domain(parsed["service"]):
                    invalid.add(parsed["service"])
    if rows == 0:
        print("no data rows found", file=sys.stderr)
        return 1
    rate = correlated_bytes / total_bytes if total_bytes else 0.0
    print(f"rows={rows:,}  volume={format_bytes(total_bytes)}  "
          f"correlation rate={rate:.1%}")
    print(f"distinct services={len(bytes_by_service):,}  "
          f"RFC1035-violating={len(invalid)}")
    print(f"\ntop {args.top} services:")
    top = sorted(bytes_by_service.items(), key=lambda kv: kv[1], reverse=True)
    for name, nbytes in top[: args.top]:
        marker = "  [invalid]" if name in invalid else ""
        print(f"  {name:<44s} {format_bytes(nbytes):>12s}{marker}")
    return 0


def _add_figures(subparsers) -> None:
    p = subparsers.add_parser(
        "figures", help="regenerate figure data files (TSV) from simulations"
    )
    p.add_argument("--out-dir", default="figures", help="output directory")
    p.add_argument("--hours", type=float, default=6.0,
                   help="simulated hours per run (Fig. 2 uses 4x this)")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_figures)


def cmd_figures(args) -> int:
    import pathlib

    from repro.analysis.figures import (
        figure2_rows,
        figure3_rows,
        figure7_rows,
        write_tsv,
    )

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    def run(variant):
        workload = large_isp(seed=args.seed, duration=args.hours * 3600.0)
        engine = SimulationEngine(
            config_for(variant),
            cost_params=workload.cost_params,
            worker_count=workload.worker_count,
            variant_name=variant.value,
        )
        return engine.run(workload.dns_records(), workload.flow_records())

    # Figure 2: a longer Main run.
    workload = large_isp(seed=args.seed, duration=4 * args.hours * 3600.0,
                         resolution_rate=0.5)
    engine = SimulationEngine(config_for(Variant.MAIN),
                              cost_params=workload.cost_params,
                              worker_count=workload.worker_count)
    fig2_report = engine.run(workload.dns_records(), workload.flow_records())
    with open(out_dir / "fig2_week_usage.tsv", "w", encoding="utf-8") as sink:
        write_tsv(sink, ("t_start", "cpu_percent", "memory_gb", "traffic_bytes"),
                  figure2_rows(fig2_report))
    print(f"wrote {out_dir / 'fig2_week_usage.tsv'}")

    reports = {v.value: run(v) for v in FIGURE3_VARIANTS}
    with open(out_dir / "fig3_variant_usage.tsv", "w", encoding="utf-8") as sink:
        write_tsv(sink, ("variant", "t_start", "cpu_percent", "memory_gb"),
                  figure3_rows(reports))
    print(f"wrote {out_dir / 'fig3_variant_usage.tsv'}")
    with open(out_dir / "fig7_variant_correlation.tsv", "w", encoding="utf-8") as sink:
        write_tsv(sink, ("variant", "t_start", "correlation_rate"),
                  figure7_rows(reports))
    print(f"wrote {out_dir / 'fig7_variant_correlation.tsv'}")
    return 0


def _add_mapping_template(subparsers) -> None:
    p = subparsers.add_parser(
        "mapping-template", help="print a field-mapping config template"
    )
    p.set_defaults(func=cmd_mapping_template)


def cmd_mapping_template(_args) -> int:
    template = {
        "dns": {
            "ts": {"field": "timestamp", "unit": "s"},
            "query": {"field": "qname"},
            "rtype": {"field": "type"},
            "ttl": {"field": "ttl"},
            "answer": {"field": "rdata"},
        },
        "flow": {
            "ts": {"field": "end_time", "unit": "ms"},
            "src_ip": {"field": "src_addr"},
            "dst_ip": {"field": "dst_addr"},
            "bytes": {"field": "bytes", "default": 0},
            "packets": {"field": "packets", "default": 1},
            "src_port": {"field": "src_port", "default": 0},
            "dst_port": {"field": "dst_port", "default": 0},
            "protocol": {"field": "proto", "default": 6},
        },
    }
    print(json.dumps(template, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flowdns", description="FlowDNS reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_simulate(subparsers)
    _add_ablation(subparsers)
    _add_correlate(subparsers)
    _add_serve(subparsers)
    _add_capture(subparsers)
    _add_replay(subparsers)
    _add_generate(subparsers)
    _add_sweep(subparsers)
    _add_analyze(subparsers)
    _add_figures(subparsers)
    _add_mapping_template(subparsers)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
