"""Configurable input-format adapters.

Section 3 of the paper: "We note that the system is not bound to NetFlow
data and can be adapted to use other data formats containing IP
addresses and timestamps in a configuration file." This module is that
configuration file's implementation: a declarative field mapping that
turns arbitrary dict-shaped records (CSV rows, JSON log lines, kafka
payloads, …) into the :class:`FlowRecord` / :class:`DnsRecord` objects
the correlator consumes.

A mapping config is a plain dict (JSON-compatible)::

    {
        "flow": {
            "ts": {"field": "end_time", "unit": "ms"},
            "src_ip": {"field": "sa"},
            "dst_ip": {"field": "da"},
            "bytes": {"field": "ibyt", "default": 0},
            "packets": {"field": "ipkt", "default": 1},
            "src_port": {"field": "sp", "default": 0},
            "dst_port": {"field": "dp", "default": 0},
            "protocol": {"field": "pr", "default": 6}
        },
        "dns": {
            "ts": {"field": "timestamp"},
            "query": {"field": "qname"},
            "rtype": {"field": "type"},
            "ttl": {"field": "ttl"},
            "answer": {"field": "rdata"}
        }
    }

Unknown time units, missing required fields and unparseable values raise
:class:`ParseError` (or are counted when using the lenient iterators),
so a typo in the config surfaces immediately rather than as silently
uncorrelated traffic.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, TextIO, Tuple

from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowBatch, FlowRecord
from repro.util.errors import ConfigError, ParseError
from repro.util.interning import cached_ip_text, intern_string

_TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}

_RTYPE_ALIASES = {
    "a": RRType.A,
    "aaaa": RRType.AAAA,
    "cname": RRType.CNAME,
    "1": RRType.A,
    "28": RRType.AAAA,
    "5": RRType.CNAME,
}

_SENTINEL = object()


@dataclass(frozen=True)
class FieldSpec:
    """Where one record attribute comes from and how to convert it."""

    field: str
    unit: str = "s"  # time fields only
    default: object = _SENTINEL

    @classmethod
    def from_config(cls, raw) -> "FieldSpec":
        if isinstance(raw, str):
            return cls(field=raw)
        if isinstance(raw, Mapping):
            if "field" not in raw:
                raise ConfigError(f"field spec needs a 'field' key: {raw!r}")
            unit = raw.get("unit", "s")
            if unit not in _TIME_UNITS:
                raise ConfigError(f"unknown time unit {unit!r}")
            if "default" in raw:
                return cls(field=raw["field"], unit=unit, default=raw["default"])
            return cls(field=raw["field"], unit=unit)
        raise ConfigError(f"unparseable field spec: {raw!r}")

    def extract(self, record: Mapping):
        value = record.get(self.field, _SENTINEL)
        if value is _SENTINEL or value in ("", None):
            if self.default is _SENTINEL:
                raise ParseError(f"record is missing required field {self.field!r}")
            return self.default
        return value

    def extract_time(self, record: Mapping) -> float:
        value = self.extract(record)
        try:
            return float(value) * _TIME_UNITS[self.unit]
        except (TypeError, ValueError) as exc:
            raise ParseError(f"bad timestamp in field {self.field!r}: {value!r}") from exc

    def extract_int(self, record: Mapping) -> int:
        value = self.extract(record)
        try:
            return int(value)
        except (TypeError, ValueError) as exc:
            raise ParseError(f"bad integer in field {self.field!r}: {value!r}") from exc


@dataclass
class AdapterStats:
    records_in: int = 0
    records_out: int = 0
    malformed: int = 0
    skipped_rtype: int = 0


class FlowAdapter:
    """dict-records → :class:`FlowRecord`, per a declarative mapping."""

    REQUIRED = ("ts", "src_ip", "dst_ip")
    OPTIONAL_INTS = {"bytes": 0, "packets": 1, "src_port": 0, "dst_port": 0, "protocol": 6}

    def __init__(self, specs: Dict[str, FieldSpec]):
        for name in self.REQUIRED:
            if name not in specs:
                raise ConfigError(f"flow mapping is missing required field {name!r}")
        self.specs = specs
        self.stats = AdapterStats()

    @classmethod
    def from_config(cls, config: Mapping) -> "FlowAdapter":
        return cls({name: FieldSpec.from_config(raw) for name, raw in config.items()})

    def adapt(self, record: Mapping) -> FlowRecord:
        """Convert one record; raises ParseError on malformed input."""
        self.stats.records_in += 1
        ts = self.specs["ts"].extract_time(record)
        # Interned so FlowRecord's address parse cache keys on shared
        # objects (CSV/JSON replays repeat a small set of hot IP texts).
        src_ip = intern_string(str(self.specs["src_ip"].extract(record)))
        dst_ip = intern_string(str(self.specs["dst_ip"].extract(record)))
        ints = {}
        for name, default in self.OPTIONAL_INTS.items():
            spec = self.specs.get(name)
            ints[name] = spec.extract_int(record) if spec is not None else default
        try:
            flow = FlowRecord(
                ts=ts,
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=ints["src_port"],
                dst_port=ints["dst_port"],
                protocol=ints["protocol"],
                packets=ints["packets"],
                bytes_=ints["bytes"],
            )
        except ValueError as exc:
            raise ParseError(str(exc)) from exc
        self.stats.records_out += 1
        return flow

    def adapt_many(self, records: Iterable[Mapping]) -> Iterator[FlowRecord]:
        """Lenient bulk conversion: malformed records are counted, not raised."""
        for record in records:
            try:
                yield self.adapt(record)
            except ParseError:
                self.stats.malformed += 1

    def adapt_batch(self, records: Iterable[Mapping]) -> FlowBatch:
        """Lenient bulk conversion straight into a columnar FlowBatch.

        The columnar twin of :meth:`adapt_many`: same field extraction,
        validation, and malformed-record counting, but the accepted rows
        land as parallel columns — addresses become interned canonical
        text via the bytes/text→text cache and no ``FlowRecord`` or
        ``ipaddress`` objects are built. ``FlowBatch.record(i)``
        materialises records identical to :meth:`adapt`'s output.
        """
        batch = FlowBatch()
        specs = self.specs
        optional = self.OPTIONAL_INTS
        for record in records:
            self.stats.records_in += 1
            try:
                ts = specs["ts"].extract_time(record)
                src_ip = cached_ip_text(str(specs["src_ip"].extract(record)))
                dst_ip = cached_ip_text(str(specs["dst_ip"].extract(record)))
                ints = {}
                for name, default in optional.items():
                    spec = specs.get(name)
                    ints[name] = spec.extract_int(record) if spec is not None else default
                # FlowRecord.__post_init__'s validation, applied here so a
                # row the object path would reject never enters a column.
                if ints["packets"] < 0 or ints["bytes"] < 0:
                    raise ParseError("flow counters must be non-negative")
                if not (0 <= ints["src_port"] <= 65535 and 0 <= ints["dst_port"] <= 65535):
                    raise ParseError("ports must fit in 16 bits")
            except ParseError:
                self.stats.malformed += 1
                continue
            except ValueError:
                # cached_ip_text on an unparseable address
                self.stats.malformed += 1
                continue
            batch.append_row(
                ts,
                src_ip,
                dst_ip,
                ints["src_port"],
                ints["dst_port"],
                ints["protocol"],
                ints["packets"],
                ints["bytes"],
            )
            self.stats.records_out += 1
        return batch


class DnsAdapter:
    """dict-records → :class:`DnsRecord` (A/AAAA/CNAME only)."""

    REQUIRED = ("ts", "query", "rtype", "ttl", "answer")

    def __init__(self, specs: Dict[str, FieldSpec]):
        for name in self.REQUIRED:
            if name not in specs:
                raise ConfigError(f"dns mapping is missing required field {name!r}")
        self.specs = specs
        self.stats = AdapterStats()

    @classmethod
    def from_config(cls, config: Mapping) -> "DnsAdapter":
        return cls({name: FieldSpec.from_config(raw) for name, raw in config.items()})

    def adapt(self, record: Mapping) -> Optional[DnsRecord]:
        """Convert one record; None for record types FlowDNS ignores."""
        self.stats.records_in += 1
        rtype_raw = str(self.specs["rtype"].extract(record)).strip().lower()
        rtype = _RTYPE_ALIASES.get(rtype_raw)
        if rtype is None:
            self.stats.skipped_rtype += 1
            return None
        ttl = self.specs["ttl"].extract_int(record)
        if ttl < 0:
            raise ParseError(f"negative TTL {ttl}")
        # DnsRecord.__post_init__ interns the normalized query/answer, so
        # the raw spellings need no table entry of their own.
        out = DnsRecord(
            ts=self.specs["ts"].extract_time(record),
            query=str(self.specs["query"].extract(record)),
            rtype=rtype,
            ttl=ttl,
            answer=str(self.specs["answer"].extract(record)),
        )
        self.stats.records_out += 1
        return out

    def adapt_many(self, records: Iterable[Mapping]) -> Iterator[DnsRecord]:
        for record in records:
            try:
                adapted = self.adapt(record)
            except ParseError:
                self.stats.malformed += 1
                continue
            if adapted is not None:
                yield adapted


def load_mapping(config: Mapping) -> Tuple[Optional[DnsAdapter], Optional[FlowAdapter]]:
    """Build (dns_adapter, flow_adapter) from one config dict."""
    dns = DnsAdapter.from_config(config["dns"]) if "dns" in config else None
    flow = FlowAdapter.from_config(config["flow"]) if "flow" in config else None
    if dns is None and flow is None:
        raise ConfigError("mapping config defines neither 'dns' nor 'flow'")
    return dns, flow


def load_mapping_file(path) -> Tuple[Optional[DnsAdapter], Optional[FlowAdapter]]:
    """Load a JSON mapping config from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            config = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"mapping file {path} is not valid JSON: {exc}") from exc
    return load_mapping(config)


def iter_csv(handle: TextIO, delimiter: str = ",") -> Iterator[Dict[str, str]]:
    """Dict rows from a CSV file with a header line."""
    yield from csv.DictReader(handle, delimiter=delimiter)


def iter_jsonl(handle: TextIO) -> Iterator[Dict]:
    """Dict rows from a JSON-lines file; malformed lines are skipped."""
    for line in handle:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict):
            yield row
