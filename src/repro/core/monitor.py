"""Operational metrics exposition.

Renders engine/storage state in the Prometheus text exposition format
so an operator can scrape a running FlowDNS (the paper's Figure 2
series are exactly these gauges over a week). No HTTP server is bundled
— the renderer produces the text; wiring it to a socket is deployment
glue this library stays out of.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.engine import ThreadedEngine
from repro.core.metrics import EngineReport

_PREFIX = "flowdns"


class MetricsRenderer:
    """Accumulates metric samples and renders the exposition text."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._seen_headers = set()

    def gauge(self, name: str, value: float, help_text: str = "", labels: Dict[str, str] = None) -> None:
        full = f"{_PREFIX}_{name}"
        if full not in self._seen_headers:
            if help_text:
                self._lines.append(f"# HELP {full} {help_text}")
            self._lines.append(f"# TYPE {full} gauge")
            self._seen_headers.add(full)
        label_text = ""
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            label_text = "{" + inner + "}"
        self._lines.append(f"{full}{label_text} {value}")

    def counter(self, name: str, value: float, help_text: str = "", labels: Dict[str, str] = None) -> None:
        full = f"{_PREFIX}_{name}_total"
        if full not in self._seen_headers:
            if help_text:
                self._lines.append(f"# HELP {full} {help_text}")
            self._lines.append(f"# TYPE {full} counter")
            self._seen_headers.add(full)
        label_text = ""
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            label_text = "{" + inner + "}"
        self._lines.append(f"{full}{label_text} {value}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_report(report: EngineReport) -> str:
    """Expose an EngineReport's aggregates."""
    out = MetricsRenderer()
    out.counter("dns_records", report.dns_records, "DNS stream records processed")
    out.counter("flow_records", report.flow_records, "Netflow records processed")
    out.counter("matched_flows", report.matched_flows, "flows correlated to a service")
    out.counter("correlated_bytes", report.correlated_bytes, "bytes attributed to a service")
    out.counter("total_bytes", report.total_bytes, "bytes observed")
    out.gauge("correlation_rate", report.correlation_rate,
              "correlated bytes / total bytes")
    out.gauge("stream_loss_rate", report.overall_loss_rate,
              "fraction of offered records dropped at ingress buffers")
    out.gauge("write_delay_seconds_max", report.max_write_delay,
              "max delay between flow timestamp and output write")
    out.gauge("map_entries", report.final_map_entries, "live hashmap entries")
    for length, count in sorted(report.chain_lengths.items()):
        out.counter("chains", count, "lookup chains by length",
                    labels={"length": str(length)})
    return out.render()


def render_engine(engine: ThreadedEngine) -> str:
    """Expose a (possibly running) threaded engine's live state."""
    out = MetricsRenderer()
    counts = engine.storage.entry_counts()
    for bank, tiers in counts.items():
        for tier, entries in tiers.items():
            out.gauge("storage_entries", entries, "entries per bank/tier",
                      labels={"bank": bank, "tier": tier})
    out.counter("storage_overwrites", engine.storage.overwrites(),
                "IP-key overwrites (accuracy-relevant)")
    out.counter("storage_lock_contention", engine.storage.contended_acquisitions(),
                "contended shard-lock acquisitions")
    for stream in engine.dns_streams + engine.flow_streams:
        labels = {"stream": stream.name}
        out.counter("stream_offered", stream.buffer.stats.offered,
                    "records offered to the ingress buffer", labels=labels)
        out.counter("stream_dropped", stream.buffer.stats.dropped,
                    "records dropped at the ingress buffer", labels=labels)
        out.gauge("stream_buffer_fill", stream.buffer.fill_fraction,
                  "ingress buffer occupancy fraction", labels=labels)
    out.gauge("write_rows", engine.writer.stats.rows, "output rows written")
    return out.render()


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text back into {metric{labels}: value}.

    Only used by tests and the examples; real deployments scrape with
    Prometheus itself.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            out[name] = float(value)
        except ValueError:
            continue
    return out
