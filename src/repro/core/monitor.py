"""Operational metrics exposition.

Renders engine/storage state in the Prometheus text exposition format
so an operator can scrape a running FlowDNS (the paper's Figure 2
series are exactly these gauges over a week). For long-lived ``serve``
sessions, :class:`MetricsHttpServer` wires a renderer to a socket: a
minimal asyncio HTTP responder that shares the engine's event loop, so
scraping a live session needs no extra thread and no dependency.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import ThreadedEngine
from repro.core.metrics import EngineReport

_PREFIX = "flowdns"


class MetricsRenderer:
    """Accumulates metric samples and renders the exposition text."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._seen_headers = set()

    def gauge(self, name: str, value: float, help_text: str = "", labels: Optional[Dict[str, str]] = None) -> None:
        full = f"{_PREFIX}_{name}"
        if full not in self._seen_headers:
            if help_text:
                self._lines.append(f"# HELP {full} {help_text}")
            self._lines.append(f"# TYPE {full} gauge")
            self._seen_headers.add(full)
        label_text = ""
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            label_text = "{" + inner + "}"
        self._lines.append(f"{full}{label_text} {value}")

    def counter(self, name: str, value: float, help_text: str = "", labels: Optional[Dict[str, str]] = None) -> None:
        full = f"{_PREFIX}_{name}_total"
        if full not in self._seen_headers:
            if help_text:
                self._lines.append(f"# HELP {full} {help_text}")
            self._lines.append(f"# TYPE {full} counter")
            self._seen_headers.add(full)
        label_text = ""
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            label_text = "{" + inner + "}"
        self._lines.append(f"{full}{label_text} {value}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_report(report: EngineReport) -> str:
    """Expose an EngineReport's aggregates."""
    out = MetricsRenderer()
    out.counter("dns_records", report.dns_records, "DNS stream records processed")
    out.counter("flow_records", report.flow_records, "Netflow records processed")
    out.counter("matched_flows", report.matched_flows, "flows correlated to a service")
    out.counter("correlated_bytes", report.correlated_bytes, "bytes attributed to a service")
    out.counter("total_bytes", report.total_bytes, "bytes observed")
    out.gauge("correlation_rate", report.correlation_rate,
              "correlated bytes / total bytes")
    out.gauge("stream_loss_rate", report.overall_loss_rate,
              "fraction of offered records dropped at ingress buffers")
    out.gauge("write_delay_seconds_max", report.max_write_delay,
              "max delay between flow timestamp and output write")
    out.gauge("map_entries", report.final_map_entries, "live hashmap entries")
    out.counter("storage_evictions", report.evictions,
                "entries dropped by the max_entries memory bound")
    out.counter("worker_restarts", report.worker_restarts,
                "supervised ingest workers respawned")
    for length, count in sorted(report.chain_lengths.items()):
        out.counter("chains", count, "lookup chains by length",
                    labels={"length": str(length)})
    return out.render()


def render_engine(engine: ThreadedEngine) -> str:
    """Expose a (possibly running) threaded engine's live state."""
    out = MetricsRenderer()
    counts = engine.storage.entry_counts()
    for bank, tiers in counts.items():
        for tier, entries in tiers.items():
            out.gauge("storage_entries", entries, "entries per bank/tier",
                      labels={"bank": bank, "tier": tier})
    out.counter("storage_overwrites", engine.storage.overwrites(),
                "IP-key overwrites (accuracy-relevant)")
    out.counter("storage_lock_contention", engine.storage.contended_acquisitions(),
                "contended shard-lock acquisitions")
    for stream in engine.dns_streams + engine.flow_streams:
        labels = {"stream": stream.name}
        out.counter("stream_offered", stream.buffer.stats.offered,
                    "records offered to the ingress buffer", labels=labels)
        out.counter("stream_dropped", stream.buffer.stats.dropped,
                    "records dropped at the ingress buffer", labels=labels)
        out.gauge("stream_buffer_fill", stream.buffer.fill_fraction,
                  "ingress buffer occupancy fraction", labels=labels)
    out.gauge("write_rows", engine.writer.stats.rows, "output rows written")
    return out.render()


def render_async_engine(engine, sources: Tuple = ()) -> str:
    """Expose a *running* async engine's live service state.

    This is what ``serve --metrics-port`` publishes mid-run: lane
    progress, per-bank entry counts, the memory-bound eviction counter,
    worker supervision restarts, and snapshot freshness — the numbers an
    operator needs to answer "is this service healthy" without stopping
    it. Duck-typed on the AsyncEngine surface so tests can feed a stub.
    """
    out = MetricsRenderer()
    out.counter("dns_records", engine.dns_records_seen,
                "DNS stream records processed")
    out.counter("flow_records", engine.flows_seen,
                "Netflow records processed")
    storage = engine.storage
    counts = storage.entry_counts()
    for bank, tiers in counts.items():
        for tier, entries in tiers.items():
            out.gauge("storage_entries", entries, "entries per bank/tier",
                      labels={"bank": bank, "tier": tier})
    out.gauge("map_entries", storage.total_entries(), "live hashmap entries")
    out.counter("storage_overwrites", storage.overwrites(),
                "IP-key overwrites (accuracy-relevant)")
    out.counter("storage_evictions", storage.evictions(),
                "entries dropped by the max_entries memory bound")
    out.counter("storage_lock_contention", storage.contended_acquisitions(),
                "contended shard-lock acquisitions")
    for buffer in getattr(engine, "_buffers", ()):
        labels = {"stream": buffer.name}
        out.counter("stream_offered", buffer.stats.offered,
                    "records offered to the ingress buffer", labels=labels)
        out.counter("stream_dropped", buffer.stats.dropped,
                    "records dropped at the ingress buffer", labels=labels)
    restarts = 0
    for source in sources:
        stats = getattr(source, "ingest_stats", None)
        if stats is not None:
            labels = {"source": stats.name}
            out.counter("ingest_received", stats.received,
                        "wire units received", labels=labels)
            out.counter("ingest_accepted", stats.accepted,
                        "wire units handed to the pipeline", labels=labels)
            out.counter("ingest_dropped", stats.dropped,
                        "wire units dropped at ingest", labels=labels)
            out.counter("ingest_malformed", stats.malformed,
                        "wire units that failed to decode", labels=labels)
        restarts += int(getattr(source, "restarts", 0) or 0)
    out.counter("worker_restarts", restarts,
                "supervised ingest workers respawned")
    out.counter("snapshots_written", getattr(engine, "snapshots_written", 0),
                "periodic snapshots written this run")
    out.gauge("snapshot_age_seconds", getattr(engine, "snapshot_age", lambda: -1.0)(),
              "seconds since the last snapshot write (-1: none yet)")
    out.gauge("restored_entries", getattr(engine, "restored_entries", 0),
              "entries restored from a snapshot at startup")
    return out.render()


class MetricsHttpServer:
    """A minimal asyncio HTTP responder for live metrics scraping.

    Serves every GET with the current output of ``render()`` (a callable
    returning exposition text) and closes the connection — the subset of
    HTTP a Prometheus scrape or ``curl`` needs, on the engine's own
    event loop. Render failures return a 500 with the error in the body
    rather than killing the serving task.
    """

    def __init__(self, render: Callable[[], str], host: str = "127.0.0.1", port: int = 0):
        self.render_fn = render
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError, ConnectionError, OSError):
                return
            try:
                body = self.render_fn()
                status = "200 OK"
            except Exception as exc:  # surface, don't kill the server task
                body = f"# metrics render failed: {exc!r}\n"
                status = "500 Internal Server Error"
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text back into {metric{labels}: value}.

    Only used by tests and the examples; real deployments scrape with
    Prometheus itself.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            out[name] = float(value)
        except ValueError:
            continue
    return out
