"""Correlation metrics and the resource cost model.

The paper evaluates FlowDNS on a 128-core / 756 GB host at 1M flow
records/s — three orders of magnitude beyond what pure Python sustains
(the calibration band for this reproduction says exactly that). We
therefore split measurement into two layers:

* **counters** — exact, measured on the events the engines actually
  process: records, bytes, matches, map entries, rotations, sweep scans,
  contended lock acquisitions;
* **cost model** — converts those counters into paper-scale CPU-% and
  memory-GB figures via calibrated constants, so Figures 2 and 3 can be
  regenerated shape-faithfully.

Calibration (documented in EXPERIMENTS.md): one work unit ≈ 13.5 µs of
one core (``cpu_scale``), chosen so the Main variant at the large-ISP
rates lands near the paper's ~2500 % CPU; ``bytes_per_entry = 600`` (Go
string pair + map bucket overhead) lands Main's memory in the paper's
15–30 GB band at paper-scale entry counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.units import GIB


@dataclass
class CostModelParams:
    """Calibrated constants translating operation counts into resources.

    ``rate_scale`` is the down-scaling factor of the simulated workload
    relative to the deployment being modelled: a preset that simulates
    1/2000th of the large ISP's record rate sets ``rate_scale = 2000`` so
    modelled CPU/memory extrapolate back to deployment scale.
    """

    # Work units per operation (dimensionless).
    cost_fillup: float = 1.0
    cost_lookup: float = 1.2
    cost_cname_step: float = 0.4
    cost_rotation_per_entry: float = 0.5
    cost_sweep_per_entry: float = 0.8
    cost_write: float = 0.3
    #: Extra per-op cost per additional split ("splitting … consumes
    #: higher CPU for the same amount of data" — Section 6).
    split_overhead_per_extra: float = 0.05
    #: Serialization multiplier for the exact-TTL variant: every map
    #: access contends with the expiry scanner and takes the shared locks
    #: hot (Appendix A.8: "the contention to access the shared memory is
    #: so high that the performance degrades dramatically").
    exact_ttl_op_multiplier: float = 55.0

    # CPU calibration. The paper's Figure 2a shows CPU in a narrow band
    # (~2200–2600 %) while traffic swings several-fold: worker threads
    # cost a near-constant baseline (queue polling, scheduling) and the
    # per-record work adds a comparatively small diurnal component on
    # top. ``per_worker_cpu_percent`` models the baseline, ``cpu_scale``
    # the slope.
    cpu_scale: float = 0.00021  # CPU-percent-seconds per work unit
    per_worker_cpu_percent: float = 31.0
    #: Engine capacity in work units/second at deployment scale (the
    #: 128-core host has ample headroom for Main). Demand beyond this
    #: overflows the ingest buffers (= stream loss).
    capacity_units_per_sec: float = 9.5e6

    # Memory calibration.
    bytes_per_entry: float = 600.0
    #: exact-TTL entries cost far more resident memory per live entry:
    #: (value, expiry) tuples, tombstones from eager deletes, and hashmap
    #: growth that never shrinks because the sweeper can't keep up
    #: (A.8: memory doubled while only 10 % of the data arrived).
    exact_ttl_entry_multiplier: float = 10.0
    per_worker_bytes: float = 96.0 * 1024 * 1024
    base_bytes: float = 1.5 * GIB

    # Workload scale factors (set by the ISP preset). Record *rates* and
    # unique map *entries* scale differently between the simulation and
    # the deployment being modelled: rates scale with traffic volume,
    # while unique keys saturate against the (much larger) real domain/IP
    # universe. ``rate_scale`` maps sim *flow* record rates to deployment
    # rates, ``dns_rate_scale`` maps sim DNS record rates (the two ratios
    # differ per deployment: 1M:75K at the large ISP, 138K:115K at the
    # small one), and ``entry_scale`` maps sim map-entry counts.
    rate_scale: float = 1.0
    dns_rate_scale: float = 1.0
    entry_scale: float = 1.0


@dataclass
class IntervalCounters:
    """Raw operation counts accumulated over one sampling interval."""

    duration: float = 0.0
    dns_records: int = 0
    flow_records: int = 0
    flow_bytes: int = 0
    correlated_bytes: int = 0
    matched_flows: int = 0
    cname_steps: int = 0
    writes: int = 0
    rotation_entries: int = 0
    sweep_scanned: int = 0

    def dns_work_units(self, params: CostModelParams, num_splits: int, exact_ttl: bool) -> float:
        """Work proportional to the DNS record rate."""
        split_factor = 1.0 + params.split_overhead_per_extra * max(0, num_splits - 1)
        units = self.dns_records * params.cost_fillup * split_factor
        if exact_ttl:
            units *= params.exact_ttl_op_multiplier
        return units

    def flow_work_units(self, params: CostModelParams, num_splits: int, exact_ttl: bool) -> float:
        """Work proportional to the flow record rate."""
        split_factor = 1.0 + params.split_overhead_per_extra * max(0, num_splits - 1)
        units = (
            self.flow_records * params.cost_lookup
            + self.cname_steps * params.cost_cname_step
            + self.writes * params.cost_write
        ) * split_factor
        if exact_ttl:
            units *= params.exact_ttl_op_multiplier
        return units

    def entry_work_units(self, params: CostModelParams) -> float:
        """Work proportional to map *entries* (scales with entry_scale)."""
        return (
            self.rotation_entries * params.cost_rotation_per_entry
            + self.sweep_scanned * params.cost_sweep_per_entry
        )


@dataclass
class IntervalSample:
    """One point of the Figure 2/3 time series."""

    t_start: float
    t_end: float
    cpu_percent: float
    memory_bytes: float
    traffic_bytes: int
    correlated_bytes: int
    dns_records: int
    flow_records: int
    loss_rate: float
    map_entries: int

    @property
    def correlation_rate(self) -> float:
        return self.correlated_bytes / self.traffic_bytes if self.traffic_bytes else 0.0

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / GIB


class CostModel:
    """Turns interval counters + storage state into CPU/memory/loss samples."""

    def __init__(self, params: CostModelParams, num_splits: int, exact_ttl: bool, workers: int):
        self.params = params
        self.num_splits = num_splits
        self.exact_ttl = exact_ttl
        self.workers = workers

    def cpu_percent(self, counters: IntervalCounters) -> float:
        """Modelled CPU usage (100 % = one full core), deployment scale."""
        baseline = self.workers * self.params.per_worker_cpu_percent
        return baseline + self.demand_units_per_sec(counters) * self.params.cpu_scale

    def demand_units_per_sec(self, counters: IntervalCounters) -> float:
        if counters.duration <= 0:
            return 0.0
        flow_part = (
            counters.flow_work_units(self.params, self.num_splits, self.exact_ttl)
            * self.params.rate_scale
        )
        dns_part = (
            counters.dns_work_units(self.params, self.num_splits, self.exact_ttl)
            * self.params.dns_rate_scale
        )
        entry_part = counters.entry_work_units(self.params) * self.params.entry_scale
        return (flow_part + dns_part + entry_part) / counters.duration

    def loss_rate(self, counters: IntervalCounters) -> float:
        """Modelled stream loss: excess demand over engine capacity.

        When demand ≤ capacity the buffers stay stable (the paper's goal);
        beyond capacity the streams drop the un-servable fraction. This is
        what produces the >90 % loss of the exact-TTL variant.
        """
        demand = self.demand_units_per_sec(counters)
        capacity = self.params.capacity_units_per_sec
        if demand <= capacity:
            return 0.0
        return 1.0 - capacity / demand

    def memory_bytes(self, map_entries: int) -> float:
        """Modelled RSS at deployment scale from live map entries."""
        per_entry = self.params.bytes_per_entry
        if self.exact_ttl:
            per_entry *= self.params.exact_ttl_entry_multiplier
        return (
            self.params.base_bytes
            + map_entries * self.params.entry_scale * per_entry
            + self.workers * self.params.per_worker_bytes
        )


@dataclass
class IngestStats:
    """Per-source ingest counters for socket-fed pipeline sources.

    Models the paper's loss point at the collector's edge: a receiver
    (UDP datagram listener, DNS-over-TCP server, or the blocking
    :class:`repro.netflow.udp.UdpFlowSource`) counts what arrived off the
    wire, what it managed to hand to the pipeline, and what it had to
    drop when its bounded buffer was full (backpressure). Engines attach
    one of these per socket source under :attr:`EngineReport.ingest`.
    """

    name: str = "ingest"
    #: Wire units received (UDP datagrams / framed TCP messages).
    received: int = 0
    #: Items actually handed to the pipeline's buffers.
    accepted: int = 0
    #: Items dropped because the bounded ingest buffer was full.
    dropped: int = 0
    #: Wire units that failed to decode/frame (counted, never raised).
    malformed: int = 0
    bytes_in: int = 0
    #: The *achieved* kernel receive buffer (``getsockopt(SO_RCVBUF)``
    #: after the best-effort ``setsockopt``): the kernel silently clamps
    #: requests to rmem_max, and an undersized buffer is the usual cause
    #: of burst drops on CI hosts — it must be visible in the report, not
    #: guessed from the request. 0 for sources without a socket.
    recv_buffer_bytes: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of received wire units that were dropped."""
        return self.dropped / self.received if self.received else 0.0


def merge_ingest_stats(name: str, parts) -> "IngestStats":
    """Fold per-worker :class:`IngestStats` into one source-level view.

    Counters sum; ``recv_buffer_bytes`` takes the *minimum* non-zero
    achieved size — the most pessimistic worker bounds the burst the
    sharded socket set can absorb, which is the number an operator
    diagnosing drops needs.
    """
    merged = IngestStats(name=name)
    buffers = []
    for part in parts:
        merged.received += part.received
        merged.accepted += part.accepted
        merged.dropped += part.dropped
        merged.malformed += part.malformed
        merged.bytes_in += part.bytes_in
        if part.recv_buffer_bytes:
            buffers.append(part.recv_buffer_bytes)
    merged.recv_buffer_bytes = min(buffers) if buffers else 0
    return merged


@dataclass
class EngineReport:
    """Everything one engine run produced, for benches and tests."""

    samples: List[IntervalSample] = field(default_factory=list)
    total_bytes: int = 0
    correlated_bytes: int = 0
    dns_records: int = 0
    flow_records: int = 0
    matched_flows: int = 0
    overall_loss_rate: float = 0.0
    max_write_delay: float = 0.0
    chain_lengths: Dict[int, int] = field(default_factory=dict)
    final_map_entries: int = 0
    overwrites: int = 0
    #: Entries dropped by the ``max_entries_per_map`` memory bound across
    #: all stores; 0 when the bound is unset or never hit.
    evictions: int = 0
    #: Ingest worker processes respawned by supervision after dying
    #: mid-run; 0 for unsupervised or clean runs.
    worker_restarts: int = 0
    #: Periodic snapshots written during the run (``serve --snapshot``).
    snapshots_written: int = 0
    #: Entries restored from a snapshot at start-up (restore-on-start).
    restored_entries: int = 0
    #: DNS wire messages that failed the FillUp filter (unparseable or
    #: invalid) — counted where decode happens (the engine's fill stacks,
    #: or the sharded engine's router-side filter) so corrupted input is
    #: never silently absorbed.
    dns_invalid: int = 0
    #: Flow export datagrams that failed to decode (malformed or
    #: unknown-version), summed over the run's lane collectors. Covers
    #: the offline/replay paths whose decode errors are not already
    #: charged to a live source's :class:`IngestStats`.
    flow_decode_errors: int = 0
    duration: float = 0.0
    variant_name: str = "main"
    #: Which representation the engine's flow lane carried: "columnar"
    #: (FlowBatch columns end-to-end, the live engines' default) or
    #: "object" (per-record FlowRecord/CorrelationResult, the reference
    #: path the simulation engine and direct processor calls use).
    flow_lane: str = "object"
    #: Per-source ingest counters for socket-fed sources (keyed by source
    #: name); empty for runs whose sources are plain iterables.
    ingest: Dict[str, IngestStats] = field(default_factory=dict)
    #: Run-level anomalies a caller should not have to scrape stderr for
    #: (e.g. the offline fill gate timing out and correlating against a
    #: partially-filled store). Empty for a clean run.
    warnings: List[str] = field(default_factory=list)

    @property
    def correlation_rate(self) -> float:
        return self.correlated_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def mean_cpu_percent(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.cpu_percent for s in self.samples) / len(self.samples)

    @property
    def peak_memory_gb(self) -> float:
        if not self.samples:
            return 0.0
        return max(s.memory_bytes for s in self.samples) / GIB

    @property
    def mean_memory_gb(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.memory_bytes for s in self.samples) / len(self.samples) / GIB

    def hourly_correlation_rates(self) -> List[float]:
        """Correlation rate per sample interval (Figure 7's series)."""
        return [s.correlation_rate for s in self.samples if s.traffic_bytes]


def dedupe_warnings(warnings: List[str]) -> List[str]:
    """Collapse repeated warning messages to ``message ×N``.

    A chaos run can emit the same source-failure warning hundreds of
    times (one per faulted connection); the report must stay readable
    and bounded. First-occurrence order is preserved; a message seen
    once passes through unchanged.
    """
    counts: Dict[str, int] = {}
    for message in warnings:
        counts[message] = counts.get(message, 0) + 1
    return [
        message if count == 1 else f"{message} ×{count}"
        for message, count in counts.items()
    ]
