"""FlowDNS core: the paper's primary contribution.

The pipeline (Figure 1) is assembled from:

* :class:`FlowDNSConfig` — Table 1 parameters and engine knobs;
* :class:`DnsStorage` — the shared Active/Inactive/Long (or exact-TTL)
  storage behind one facade;
* :class:`FillUpProcessor` / :class:`LookUpProcessor` — the record-level
  worker logic (Algorithms 1 and 2);
* :class:`ThreadedEngine` — real threads, real buffers, batched worker
  loops, Python-scale;
* :class:`ShardedEngine` — worker processes over hash-partitioned
  storage, multi-core scale;
* :class:`AsyncEngine` — one asyncio loop with live socket ingest
  (NetFlow over UDP, DNS over TCP), the deployed-service shape;
* :class:`SimulationEngine` — deterministic replay with a calibrated
  resource model, deployment-scale figures;
* :class:`Variant` — the paper's ablation benchmarks.
"""

from repro.core.adapter import (
    DnsAdapter,
    FlowAdapter,
    load_mapping,
    load_mapping_file,
)
from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest
from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.flowdns import FlowDNS
from repro.core.ingest import ReuseportUdpIngest
from repro.core.monitor import render_engine, render_report
from repro.core.fillup import FillUpProcessor, FillUpStats
from repro.core.labeler import ip_label, last_octet_label, name_label
from repro.core.lookup import CorrelationResult, LookUpProcessor, LookUpStats
from repro.core.metrics import (
    CostModel,
    CostModelParams,
    EngineReport,
    IngestStats,
    IntervalCounters,
    IntervalSample,
    merge_ingest_stats,
)
from repro.core.pipeline import is_live_source
from repro.core.sharded import ShardedEngine
from repro.core.simulation import SimulationEngine
from repro.core.storage_adapter import DnsStorage
from repro.core.variants import (
    ENGINE_VARIANTS,
    FIGURE3_VARIANTS,
    FIGURE7_VARIANTS,
    Variant,
    config_for,
    engine_for,
)
from repro.core.writer import (
    DiscardSink,
    WriteWorker,
    format_result,
    parse_result_line,
)

__all__ = [
    "FlowDNS",
    "FlowDNSConfig",
    "EngineConfig",
    "ThreadedEngine",
    "ShardedEngine",
    "AsyncEngine",
    "UdpFlowIngest",
    "TcpDnsIngest",
    "ReuseportUdpIngest",
    "SimulationEngine",
    "IngestStats",
    "merge_ingest_stats",
    "is_live_source",
    "ENGINE_VARIANTS",
    "engine_for",
    "DnsStorage",
    "FillUpProcessor",
    "FillUpStats",
    "LookUpProcessor",
    "LookUpStats",
    "CorrelationResult",
    "CostModel",
    "CostModelParams",
    "EngineReport",
    "IntervalCounters",
    "IntervalSample",
    "Variant",
    "FIGURE3_VARIANTS",
    "FIGURE7_VARIANTS",
    "config_for",
    "ip_label",
    "name_label",
    "last_octet_label",
    "WriteWorker",
    "DiscardSink",
    "format_result",
    "parse_result_line",
    "DnsAdapter",
    "FlowAdapter",
    "load_mapping",
    "load_mapping_file",
    "render_report",
    "render_engine",
]
