"""ThreadedEngine: the live, multi-threaded FlowDNS pipeline (Figure 1).

Faithful to the paper's worker architecture:

* one receiver thread per stream pumps records into that stream's bounded
  internal buffer (Section 2's loss point);
* FillUp workers per DNS stream pop, filter, and fill the shared storage;
* LookUp workers per Netflow stream pop, correlate, and enqueue results;
* Write workers drain the write queue to the output sink.

Worker bodies drain their buffers in batches (``engine_batch_size``
records per wake-up) through the batched processor APIs, so the lock
round-trip per stage is paid once per batch rather than once per record —
the Python analogue of the Go implementation's amortised worker loops.

This engine measures real concurrency behaviour — buffer loss, lock
contention, queueing delay — at Python-scale record rates. The paper's
1M records/s is out of reach for CPython (the calibration band for this
reproduction says so explicitly); deployment-scale resource figures come
from :class:`repro.core.simulation.SimulationEngine` instead.

Stream items may be:

* DNS streams — :class:`DnsRecord`, or ``(ts, wire_bytes)``, or
  ``(ts, DnsMessage)`` tuples (the filter handles validation);
* Netflow streams — :class:`FlowRecord`, a whole :class:`FlowBatch`, or
  raw export datagrams (``bytes``), decoded by a per-stream
  :class:`FlowCollector`. Whatever the item type, the lookup lane runs
  columnar: decode→correlate touches only :class:`FlowBatch` columns and
  per-record objects are never materialised.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import CorrelationBatch, LookUpProcessor
from repro.core.metrics import EngineReport
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import DiscardSink, WriteWorker
from repro.dns.stream import DnsRecord
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowBatch, FlowRecord
from repro.streams.queues import WorkerQueue
from repro.streams.stream import RecordStream

_POP_TIMEOUT = 0.1


def gated_flow_source(
    engine: "ThreadedEngine",
    items: Iterable,
    timeout: float = 300.0,
    poll: float = 0.005,
    on_timeout=None,
) -> Iterable:
    """A flow source that waits for the engine's DNS fill to finish.

    Yields nothing until ``engine.fillup_complete`` (or ``timeout``
    seconds pass, after which ``on_timeout`` — if given — is called once
    before yielding anyway). The wait runs in the receiver thread at the
    first ``next()``. This is the one shared implementation of the
    deterministic-matching gate used by the CLI's offline mode, the test
    suite, and the benchmarks.
    """

    def source():
        deadline = time.monotonic() + timeout
        while not engine.fillup_complete and time.monotonic() < deadline:
            time.sleep(poll)
        if not engine.fillup_complete and on_timeout is not None:
            on_timeout()
        yield from items

    return source()


class ThreadedEngine:
    """Run FlowDNS with real threads over finite stream sources."""

    def __init__(
        self,
        config: Optional[FlowDNSConfig] = None,
        sink: Optional[TextIO] = None,
    ):
        self.config = config if config is not None else FlowDNSConfig()
        self.storage = DnsStorage(self.config)
        self.sink = sink if sink is not None else DiscardSink()
        self._fillup_processors: List[FillUpProcessor] = []
        self._lookup_processors: List[LookUpProcessor] = []
        self.dns_streams: List[RecordStream] = []
        self.flow_streams: List[RecordStream] = []
        self.writer = WriteWorker(self.sink)
        self._writer_lock = threading.Lock()
        self._fillup_threads: Optional[List[threading.Thread]] = None

    @property
    def fillup_complete(self) -> bool:
        """True once every FillUp worker has drained its stream and exited.

        Flow sources that want deterministic matching (offline replays,
        tests) can poll this before yielding their first record. False
        until run() has set its workers up; vacuously true for a run with
        no DNS sources.
        """
        threads = self._fillup_threads
        if threads is None:
            return False
        # is_alive() is False for a thread that has not started yet, so a
        # worker only counts as done once it has an ident (i.e. ran).
        return all(t.ident is not None and not t.is_alive() for t in threads)

    # --- worker bodies --------------------------------------------------------

    def _receiver(self, stream: RecordStream) -> None:
        """Pump a source into its bounded buffer until exhaustion."""
        while not stream.exhausted:
            stream.pump(1024)

    def _fillup_worker(self, stream: RecordStream, processor: FillUpProcessor) -> None:
        """Drain the DNS buffer in batches through the batched fill path.

        One buffer lock round-trip and one storage round-trip per batch.
        Exact-TTL mode keeps per-record processing and per-record sweeps:
        the A.8 experiment's result *is* the sweep-cost meltdown, so its
        timing must not be amortised away.
        """
        batch_size = self.config.engine_batch_size
        exact_ttl = self.config.exact_ttl
        buffer = stream.buffer
        while True:
            items = buffer.pop_many(batch_size, timeout=_POP_TIMEOUT)
            if not items:
                if buffer.closed and len(buffer) == 0:
                    return
                continue
            records: List[DnsRecord] = []
            for item in items:
                records.extend(self._to_dns_records(item, processor))
            if not records:
                continue
            if exact_ttl:
                for record in records:
                    processor.process(record)
                    self.storage.tick(record.ts)
            else:
                processor.process_batch(records)

    @staticmethod
    def _to_dns_records(item, processor: FillUpProcessor) -> Iterable[DnsRecord]:
        if isinstance(item, DnsRecord):
            return (item,)
        if isinstance(item, tuple) and len(item) == 2:
            ts, payload = item
            return processor.filter_message(ts, payload)
        return ()

    def _lookup_worker(
        self,
        stream: RecordStream,
        processor: LookUpProcessor,
        collector: FlowCollector,
        write_queue: WorkerQueue,
    ) -> None:
        """Drain the flow buffer through the columnar decode→correlate path.

        Stream items (raw datagrams, :class:`FlowRecord` objects, or whole
        :class:`FlowBatch` es) are gathered into one batch of columns per
        wake-up, correlated with :meth:`correlate_batch_columns`, and the
        resulting :class:`CorrelationBatch` is enqueued as a single write
        item — no per-flow record/result objects anywhere on the lane.
        """
        batch_size = self.config.engine_batch_size
        buffer = stream.buffer
        while True:
            items = buffer.pop_many(batch_size, timeout=_POP_TIMEOUT)
            if not items:
                if buffer.closed and len(buffer) == 0:
                    return
                continue
            batch = FlowBatch()
            for item in items:
                if isinstance(item, FlowBatch):
                    batch.extend(item)
                elif isinstance(item, FlowRecord):
                    batch.append_record(item)
                elif isinstance(item, (bytes, bytearray)):
                    batch.extend(collector.ingest_columns(bytes(item)))
            if not len(batch):
                continue
            correlated = processor.correlate_batch_columns(batch)
            write_queue.push((correlated, time.monotonic()))

    def _write_worker(self, write_queue: WorkerQueue) -> None:
        batch_size = self.config.engine_batch_size
        while True:
            items = write_queue.pop_many(batch_size, timeout=_POP_TIMEOUT)
            if not items:
                if write_queue.closed and len(write_queue) == 0:
                    return
                continue
            now = time.monotonic()
            with self._writer_lock:
                for payload, created_monotonic in items:
                    queueing_delay = now - created_monotonic
                    if isinstance(payload, CorrelationBatch):
                        self.writer.write_batch(payload, delay=queueing_delay)
                    else:
                        self.writer.write(payload, now=payload.flow.ts + queueing_delay)

    # --- orchestration -----------------------------------------------------------

    def run(
        self,
        dns_sources: Sequence[Iterable],
        flow_sources: Sequence[Iterable],
    ) -> EngineReport:
        """Run the full pipeline until every source is drained."""
        cfg = self.config
        self.dns_streams = [
            RecordStream(f"dns[{i}]", src, capacity=cfg.stream_buffer_capacity)
            for i, src in enumerate(dns_sources)
        ]
        self.flow_streams = [
            RecordStream(f"netflow[{i}]", src, capacity=cfg.stream_buffer_capacity)
            for i, src in enumerate(flow_sources)
        ]
        write_queue = WorkerQueue("write")

        threads: List[threading.Thread] = []

        def spawn(target, *args) -> None:
            t = threading.Thread(target=target, args=args, daemon=True)
            threads.append(t)

        for stream in self.dns_streams + self.flow_streams:
            spawn(self._receiver, stream)

        fillup_threads: List[threading.Thread] = []
        for stream in self.dns_streams:
            for _ in range(cfg.fillup_workers_per_stream):
                processor = FillUpProcessor(self.storage)
                self._fillup_processors.append(processor)
                t = threading.Thread(
                    target=self._fillup_worker, args=(stream, processor), daemon=True
                )
                fillup_threads.append(t)
                threads.append(t)
        self._fillup_threads = fillup_threads

        lookup_threads: List[threading.Thread] = []
        for stream in self.flow_streams:
            collector = FlowCollector()
            for _ in range(cfg.lookup_workers_per_stream):
                processor = LookUpProcessor(self.storage, cfg)
                self._lookup_processors.append(processor)
                t = threading.Thread(
                    target=self._lookup_worker,
                    args=(stream, processor, collector, write_queue),
                    daemon=True,
                )
                lookup_threads.append(t)
                threads.append(t)

        write_threads: List[threading.Thread] = []
        for _ in range(cfg.write_workers):
            t = threading.Thread(target=self._write_worker, args=(write_queue,), daemon=True)
            write_threads.append(t)
            threads.append(t)

        for t in threads:
            t.start()
        for t in fillup_threads + lookup_threads:
            t.join()
        write_queue.close()
        for t in write_threads:
            t.join()

        return self._build_report()

    def _build_report(self) -> EngineReport:
        report = EngineReport(variant_name="threaded", flow_lane="columnar")
        lookup_stats = [p.stats for p in self._lookup_processors]
        report.total_bytes = sum(s.bytes_in for s in lookup_stats)
        report.correlated_bytes = sum(s.bytes_matched for s in lookup_stats)
        report.flow_records = sum(s.flows_in for s in lookup_stats)
        report.matched_flows = sum(s.matched for s in lookup_stats)
        report.dns_records = sum(p.stats.records_in for p in self._fillup_processors)
        for stats in lookup_stats:
            for length, count in stats.chain_lengths.items():
                report.chain_lengths[length] = report.chain_lengths.get(length, 0) + count
        offered = sum(s.buffer.stats.offered for s in self.dns_streams + self.flow_streams)
        dropped = sum(s.buffer.stats.dropped for s in self.dns_streams + self.flow_streams)
        report.overall_loss_rate = dropped / offered if offered else 0.0
        report.max_write_delay = self.writer.stats.max_delay
        report.final_map_entries = self.storage.total_entries()
        report.overwrites = self.storage.overwrites()
        return report
