"""ThreadedEngine: the live, multi-threaded FlowDNS pipeline (Figure 1).

Faithful to the paper's worker architecture:

* one receiver thread per stream pumps records into that stream's bounded
  internal buffer (Section 2's loss point);
* FillUp workers per DNS stream pop, filter, and fill the shared storage;
* LookUp workers per Netflow stream pop, correlate, and enqueue results;
* Write workers drain the write queue to the output sink.

This engine measures real concurrency behaviour — buffer loss, lock
contention, queueing delay — at Python-scale record rates. The paper's
1M records/s is out of reach for CPython (the calibration band for this
reproduction says so explicitly); deployment-scale resource figures come
from :class:`repro.core.simulation.SimulationEngine` instead.

Stream items may be:

* DNS streams — :class:`DnsRecord`, or ``(ts, wire_bytes)``, or
  ``(ts, DnsMessage)`` tuples (the filter handles validation);
* Netflow streams — :class:`FlowRecord`, or raw export datagrams
  (``bytes``), decoded by a per-stream :class:`FlowCollector`.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.metrics import EngineReport
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import DiscardSink, WriteWorker
from repro.dns.stream import DnsRecord
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowRecord
from repro.streams.queues import WorkerQueue
from repro.streams.stream import RecordStream

_POP_TIMEOUT = 0.1


class ThreadedEngine:
    """Run FlowDNS with real threads over finite stream sources."""

    def __init__(
        self,
        config: FlowDNSConfig = None,
        sink: Optional[TextIO] = None,
    ):
        self.config = config if config is not None else FlowDNSConfig()
        self.storage = DnsStorage(self.config)
        self.sink = sink if sink is not None else DiscardSink()
        self._fillup_processors: List[FillUpProcessor] = []
        self._lookup_processors: List[LookUpProcessor] = []
        self.dns_streams: List[RecordStream] = []
        self.flow_streams: List[RecordStream] = []
        self.writer = WriteWorker(self.sink)
        self._writer_lock = threading.Lock()

    # --- worker bodies --------------------------------------------------------

    def _receiver(self, stream: RecordStream) -> None:
        """Pump a source into its bounded buffer until exhaustion."""
        while not stream.exhausted:
            stream.pump(1024)

    def _fillup_worker(self, stream: RecordStream, processor: FillUpProcessor) -> None:
        while True:
            item = stream.buffer.pop(timeout=_POP_TIMEOUT)
            if item is None:
                if stream.buffer.closed and len(stream.buffer) == 0:
                    return
                continue
            for record in self._to_dns_records(item, processor):
                processor.process(record)
                if self.config.exact_ttl:
                    self.storage.tick(record.ts)

    @staticmethod
    def _to_dns_records(item, processor: FillUpProcessor) -> Iterable[DnsRecord]:
        if isinstance(item, DnsRecord):
            return (item,)
        if isinstance(item, tuple) and len(item) == 2:
            ts, payload = item
            return processor.filter_message(ts, payload)
        return ()

    def _lookup_worker(
        self,
        stream: RecordStream,
        processor: LookUpProcessor,
        collector: FlowCollector,
        write_queue: WorkerQueue,
    ) -> None:
        while True:
            item = stream.buffer.pop(timeout=_POP_TIMEOUT)
            if item is None:
                if stream.buffer.closed and len(stream.buffer) == 0:
                    return
                continue
            if isinstance(item, FlowRecord):
                flows: Sequence[FlowRecord] = (item,)
            elif isinstance(item, (bytes, bytearray)):
                flows = collector.ingest(bytes(item))
            else:
                continue
            for flow in flows:
                result = processor.process(flow)
                write_queue.push((result, time.monotonic()))

    def _write_worker(self, write_queue: WorkerQueue) -> None:
        while True:
            item = write_queue.pop(timeout=_POP_TIMEOUT)
            if item is None:
                if write_queue.closed and len(write_queue) == 0:
                    return
                continue
            result, created_monotonic = item
            queueing_delay = time.monotonic() - created_monotonic
            with self._writer_lock:
                self.writer.write(result, now=result.flow.ts + queueing_delay)

    # --- orchestration -----------------------------------------------------------

    def run(
        self,
        dns_sources: Sequence[Iterable],
        flow_sources: Sequence[Iterable],
    ) -> EngineReport:
        """Run the full pipeline until every source is drained."""
        cfg = self.config
        self.dns_streams = [
            RecordStream(f"dns[{i}]", src, capacity=cfg.stream_buffer_capacity)
            for i, src in enumerate(dns_sources)
        ]
        self.flow_streams = [
            RecordStream(f"netflow[{i}]", src, capacity=cfg.stream_buffer_capacity)
            for i, src in enumerate(flow_sources)
        ]
        write_queue = WorkerQueue("write")

        threads: List[threading.Thread] = []

        def spawn(target, *args) -> None:
            t = threading.Thread(target=target, args=args, daemon=True)
            threads.append(t)

        for stream in self.dns_streams + self.flow_streams:
            spawn(self._receiver, stream)

        fillup_threads: List[threading.Thread] = []
        for stream in self.dns_streams:
            for _ in range(cfg.fillup_workers_per_stream):
                processor = FillUpProcessor(self.storage)
                self._fillup_processors.append(processor)
                t = threading.Thread(
                    target=self._fillup_worker, args=(stream, processor), daemon=True
                )
                fillup_threads.append(t)
                threads.append(t)

        lookup_threads: List[threading.Thread] = []
        for stream in self.flow_streams:
            collector = FlowCollector()
            for _ in range(cfg.lookup_workers_per_stream):
                processor = LookUpProcessor(self.storage, cfg)
                self._lookup_processors.append(processor)
                t = threading.Thread(
                    target=self._lookup_worker,
                    args=(stream, processor, collector, write_queue),
                    daemon=True,
                )
                lookup_threads.append(t)
                threads.append(t)

        write_threads: List[threading.Thread] = []
        for _ in range(cfg.write_workers):
            t = threading.Thread(target=self._write_worker, args=(write_queue,), daemon=True)
            write_threads.append(t)
            threads.append(t)

        for t in threads:
            t.start()
        for t in fillup_threads + lookup_threads:
            t.join()
        write_queue.close()
        for t in write_threads:
            t.join()

        return self._build_report()

    def _build_report(self) -> EngineReport:
        report = EngineReport(variant_name="threaded")
        lookup_stats = [p.stats for p in self._lookup_processors]
        report.total_bytes = sum(s.bytes_in for s in lookup_stats)
        report.correlated_bytes = sum(s.bytes_matched for s in lookup_stats)
        report.flow_records = sum(s.flows_in for s in lookup_stats)
        report.matched_flows = sum(s.matched for s in lookup_stats)
        report.dns_records = sum(p.stats.records_in for p in self._fillup_processors)
        for stats in lookup_stats:
            for length, count in stats.chain_lengths.items():
                report.chain_lengths[length] = report.chain_lengths.get(length, 0) + count
        offered = sum(s.buffer.stats.offered for s in self.dns_streams + self.flow_streams)
        dropped = sum(s.buffer.stats.dropped for s in self.dns_streams + self.flow_streams)
        report.overall_loss_rate = dropped / offered if offered else 0.0
        report.max_write_delay = self.writer.stats.max_delay
        report.final_map_entries = self.storage.total_entries()
        report.overwrites = self.storage.overwrites()
        return report
