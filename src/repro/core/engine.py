"""ThreadedEngine: the live, multi-threaded FlowDNS pipeline (Figure 1).

Faithful to the paper's worker architecture:

* one receiver thread per stream pumps records into that stream's bounded
  internal buffer (Section 2's loss point);
* FillUp workers per DNS stream pop, filter, and fill the shared storage;
* LookUp workers per Netflow stream pop, correlate, and enqueue results;
* Write workers drain the write queue to the output sink.

The lane bodies — item normalisation, batch accumulation, exact-TTL
semantics, the columnar decode→correlate path, report assembly — live in
:mod:`repro.core.pipeline`, shared with the sharded and async engines.
What remains here is this engine's *scheduling policy*: real threads
over bounded buffers, draining in batches (``engine_batch_size`` records
per wake-up) so the lock round-trip per stage is paid once per batch
rather than once per record — the Python analogue of the Go
implementation's amortised worker loops.

This engine measures real concurrency behaviour — buffer loss, lock
contention, queueing delay — at Python-scale record rates. The paper's
1M records/s is out of reach for CPython (the calibration band for this
reproduction says so explicitly); deployment-scale resource figures come
from :class:`repro.core.simulation.SimulationEngine` instead.

Stream items may be:

* DNS streams — :class:`DnsRecord`, or ``(ts, wire_bytes)``, or
  ``(ts, DnsMessage)`` tuples (the filter handles validation);
* Netflow streams — :class:`FlowRecord`, a whole :class:`FlowBatch`, or
  raw export datagrams (``bytes``), decoded by a per-stream
  :class:`FlowCollector`. Whatever the item type, the lookup lane runs
  columnar: decode→correlate touches only :class:`FlowBatch` columns and
  per-record objects are never materialised.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import CorrelationBatch, LookUpProcessor
from repro.core.metrics import EngineReport
from repro.core.pipeline import (
    POP_TIMEOUT,
    FillLane,
    LookupLane,
    buffer_loss_rate,
    buffer_loss_warning,
    collect_ingest,
    drain_buffer,
    gated_flow_source,
    merge_summaries,
    source_failure_warning,
    stack_summary,
)
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import DiscardSink, WriteWorker
from repro.netflow.collector import FlowCollector
from repro.streams.queues import WorkerQueue
from repro.streams.stream import RecordStream

__all__ = ["ThreadedEngine", "gated_flow_source"]

_POP_TIMEOUT = POP_TIMEOUT


class ThreadedEngine:
    """Run FlowDNS with real threads over finite stream sources."""

    def __init__(
        self,
        config: Optional[FlowDNSConfig | EngineConfig] = None,
        sink: Optional[TextIO] = None,
    ):
        # Accepts either a bare FlowDNSConfig (correlator knobs only) or
        # a full EngineConfig (runtime knobs too) — EngineConfig.of
        # normalises so embedders and the CLI construct engines uniformly.
        self.engine_config = EngineConfig.of(config)
        self.config = self.engine_config.flowdns
        self.storage = DnsStorage(self.config)
        self.sink = sink if sink is not None else DiscardSink()
        self._fillup_processors: List[FillUpProcessor] = []
        self._lookup_processors: List[LookUpProcessor] = []
        #: One decode collector per flow stream; kept so the report can
        #: surface decode failures (malformed/unknown-version datagrams)
        #: that are not charged to any live source's ingest stats.
        self._flow_collectors: List[FlowCollector] = []
        self.dns_streams: List[RecordStream] = []
        self.flow_streams: List[RecordStream] = []
        self.writer = WriteWorker(self.sink)
        self._writer_lock = threading.Lock()
        self._fillup_threads: Optional[List[threading.Thread]] = None

    @property
    def fillup_complete(self) -> bool:
        """True once every FillUp worker has drained its stream and exited.

        Flow sources that want deterministic matching (offline replays,
        tests) can poll this before yielding their first record. Gating
        alone makes *match outcomes* reproducible; byte-identical rows
        additionally need ``fillup_workers_per_stream=1`` — concurrent
        fill workers apply same-IP overwrites in scheduling order, so
        which announcing name wins is otherwise a race. False until
        run() has set its workers up; vacuously true for a run with no
        DNS sources.
        """
        threads = self._fillup_threads
        if threads is None:
            return False
        # is_alive() is False for a thread that has not started yet, so a
        # worker only counts as done once it has an ident (i.e. ran).
        return all(t.ident is not None and not t.is_alive() for t in threads)

    # --- worker bodies --------------------------------------------------------

    def _receiver(self, stream: RecordStream) -> None:
        """Pump a source into its bounded buffer until exhaustion."""
        try:
            while not stream.exhausted:
                stream.pump(1024)
        except Exception:
            # pump() has already closed the buffer and recorded the
            # exception on stream.error; run() surfaces it as a report
            # warning instead of letting a daemon thread die noisily.
            pass

    def _fillup_worker(self, stream: RecordStream, lane: FillLane) -> None:
        """Drain the DNS buffer in batches through the shared fill lane."""
        drain_buffer(
            stream.buffer, self.config.engine_batch_size,
            lane.process_items, timeout=_POP_TIMEOUT,
        )

    def _lookup_worker(
        self,
        stream: RecordStream,
        lane: LookupLane,
        write_queue: WorkerQueue,
    ) -> None:
        """Drain the flow buffer through the columnar decode→correlate lane.

        One :class:`CorrelationBatch` is enqueued per wake-up as a single
        write item — no per-flow record/result objects anywhere.
        """

        def handle(items: List) -> None:
            correlated = lane.correlate_items(items)
            if correlated is not None:
                write_queue.push((correlated, time.monotonic()))

        drain_buffer(
            stream.buffer, self.config.engine_batch_size,
            handle, timeout=_POP_TIMEOUT,
        )

    def _write_worker(self, write_queue: WorkerQueue) -> None:
        def handle(items: List) -> None:
            now = time.monotonic()
            with self._writer_lock:
                for payload, created_monotonic in items:
                    queueing_delay = now - created_monotonic
                    if isinstance(payload, CorrelationBatch):
                        self.writer.write_batch(payload, delay=queueing_delay)
                    else:
                        self.writer.write(payload, now=payload.flow.ts + queueing_delay)

        drain_buffer(
            write_queue, self.config.engine_batch_size, handle, timeout=_POP_TIMEOUT
        )

    # --- orchestration -----------------------------------------------------------

    def run(
        self,
        dns_sources: Sequence[Iterable],
        flow_sources: Sequence[Iterable],
    ) -> EngineReport:
        """Run the full pipeline until every source is drained."""
        cfg = self.config
        self.dns_streams = [
            RecordStream(f"dns[{i}]", src, capacity=cfg.stream_buffer_capacity)
            for i, src in enumerate(dns_sources)
        ]
        self.flow_streams = [
            RecordStream(f"netflow[{i}]", src, capacity=cfg.stream_buffer_capacity)
            for i, src in enumerate(flow_sources)
        ]
        write_queue = WorkerQueue("write")

        threads: List[threading.Thread] = []

        def spawn(target, *args) -> None:
            t = threading.Thread(target=target, args=args, daemon=True)
            threads.append(t)

        for stream in self.dns_streams + self.flow_streams:
            spawn(self._receiver, stream)

        fillup_threads: List[threading.Thread] = []
        for stream in self.dns_streams:
            for _ in range(cfg.fillup_workers_per_stream):
                processor = FillUpProcessor(self.storage)
                self._fillup_processors.append(processor)
                lane = FillLane(
                    processor,
                    self.storage,
                    exact_ttl=cfg.exact_ttl,
                    columnar=cfg.dns_fill_columnar,
                )
                t = threading.Thread(
                    target=self._fillup_worker, args=(stream, lane), daemon=True
                )
                fillup_threads.append(t)
                threads.append(t)
        self._fillup_threads = fillup_threads

        lookup_threads: List[threading.Thread] = []
        self._flow_collectors = []
        for stream in self.flow_streams:
            collector = FlowCollector()
            self._flow_collectors.append(collector)
            for _ in range(cfg.lookup_workers_per_stream):
                processor = LookUpProcessor(self.storage, cfg)
                self._lookup_processors.append(processor)
                lane = LookupLane(processor, collector)
                t = threading.Thread(
                    target=self._lookup_worker,
                    args=(stream, lane, write_queue),
                    daemon=True,
                )
                lookup_threads.append(t)
                threads.append(t)

        write_threads: List[threading.Thread] = []
        for _ in range(cfg.write_workers):
            t = threading.Thread(target=self._write_worker, args=(write_queue,), daemon=True)
            write_threads.append(t)
            threads.append(t)

        for t in threads:
            t.start()
        for t in fillup_threads + lookup_threads:
            t.join()
        write_queue.close()
        for t in write_threads:
            t.join()

        report = self._build_report()
        for stream in self.dns_streams + self.flow_streams:
            if stream.error is not None:
                report.warnings.append(
                    source_failure_warning(stream.name, stream.error)
                )
        collect_ingest(report, list(dns_sources) + list(flow_sources))
        return report

    def _build_report(self) -> EngineReport:
        summary = stack_summary(
            self._fillup_processors, self._lookup_processors, self.storage
        )
        report = merge_summaries([summary], variant_name="threaded")
        report.flow_decode_errors = sum(
            c.stats.malformed + c.stats.unknown_version
            for c in self._flow_collectors
        )
        report.overall_loss_rate = buffer_loss_rate(
            s.buffer for s in self.dns_streams + self.flow_streams
        )
        if report.overall_loss_rate > 0:
            report.warnings.append(buffer_loss_warning(report.overall_loss_rate))
        report.max_write_delay = self.writer.stats.max_delay
        return report
