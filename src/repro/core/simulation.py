"""Deterministic simulation engine.

Replays timestamp-ordered DNS and Netflow record streams through the same
FillUp/LookUp processors the threaded engine uses, entirely
single-threaded, with simulated time driven by record timestamps. A
week-long ISP deployment (Figure 2) replays in seconds and is
reproducible bit-for-bit from the workload seed.

Resource usage is produced by :class:`repro.core.metrics.CostModel` from
the exact operation counts of each sampling interval; stream loss is the
model's capacity term and feeds back into the replay (records arriving
during overload are dropped before processing, like the ISP stream
buffers drop them), which is how the Appendix A.8 exact-TTL meltdown —
loss >90 %, sweeps starved, memory ballooning — emerges here from the
same mechanics the paper describes.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, TextIO

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.metrics import (
    CostModel,
    CostModelParams,
    EngineReport,
    IntervalCounters,
    IntervalSample,
)
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import DiscardSink, WriteWorker
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord


class SimulationEngine:
    """Single-threaded, deterministic FlowDNS replay with modelled resources."""

    def __init__(
        self,
        config: Optional[FlowDNSConfig] = None,
        cost_params: Optional[CostModelParams] = None,
        sample_interval: float = 3600.0,
        write_flush_interval: float = 30.0,
        sink: Optional[TextIO] = None,
        worker_count: int = 8,
        variant_name: str = "main",
        on_result=None,
    ):
        self.config = config if config is not None else FlowDNSConfig()
        self.cost_params = cost_params if cost_params is not None else CostModelParams()
        self.sample_interval = float(sample_interval)
        self.write_flush_interval = float(write_flush_interval)
        self.worker_count = worker_count
        self.variant_name = variant_name
        self.storage = DnsStorage(self.config)
        self.fillup = FillUpProcessor(self.storage)
        self.lookup = LookUpProcessor(self.storage, self.config)
        self.writer = WriteWorker(sink if sink is not None else DiscardSink())
        self.cost_model = CostModel(
            self.cost_params,
            num_splits=self.config.effective_num_split,
            exact_ttl=self.config.exact_ttl,
            workers=worker_count,
        )
        #: Optional hook fired with every CorrelationResult — the analysis
        #: modules use it to aggregate without materialising all results.
        self.on_result = on_result
        self._counters = IntervalCounters()
        self._pending_writes = []

    def run(
        self,
        dns_records: Iterable[DnsRecord],
        flow_records: Iterable[FlowRecord],
    ) -> EngineReport:
        """Replay both streams to exhaustion; returns the full report.

        Both inputs must be sorted by timestamp (workload generators emit
        them that way). At equal timestamps DNS records are processed
        before flows, matching reality: a resolution precedes the traffic
        it enables.
        """
        report = EngineReport(variant_name=self.variant_name)
        merged = heapq.merge(
            ((rec.ts, 0, rec) for rec in dns_records),
            ((rec.ts, 1, rec) for rec in flow_records),
            key=lambda item: (item[0], item[1]),
        )

        interval_start: Optional[float] = None
        current_loss = 0.0
        loss_accumulator = 0.0
        offered = 0
        dropped = 0
        last_flush_ts: Optional[float] = None
        last_rotated = 0
        last_cname_steps = 0
        first_ts: Optional[float] = None
        last_ts: Optional[float] = None

        def flush_writes(now: float) -> None:
            for result in self._pending_writes:
                self.writer.write(result, now=now)
                self._counters.writes += 1
            self._pending_writes.clear()

        def close_interval(t_end: float) -> None:
            nonlocal interval_start, current_loss, last_rotated, last_cname_steps
            self._counters.duration = t_end - interval_start
            rotated_total = self._rotated_entries()
            self._counters.rotation_entries = rotated_total - last_rotated
            last_rotated = rotated_total
            self._counters.cname_steps = self.lookup.stats.cname_steps - last_cname_steps
            last_cname_steps = self.lookup.stats.cname_steps
            entries = self.storage.total_entries()
            sample = IntervalSample(
                t_start=interval_start,
                t_end=t_end,
                cpu_percent=self.cost_model.cpu_percent(self._counters),
                memory_bytes=self.cost_model.memory_bytes(entries),
                traffic_bytes=self._counters.flow_bytes,
                correlated_bytes=self._counters.correlated_bytes,
                dns_records=self._counters.dns_records,
                flow_records=self._counters.flow_records,
                loss_rate=self.cost_model.loss_rate(self._counters),
                map_entries=entries,
            )
            report.samples.append(sample)
            current_loss = sample.loss_rate
            self._counters = IntervalCounters()
            interval_start = t_end

        for ts, kind, record in merged:
            if first_ts is None:
                first_ts = ts
                interval_start = ts
                last_flush_ts = ts
            last_ts = ts

            while ts >= interval_start + self.sample_interval:
                boundary = interval_start + self.sample_interval
                flush_writes(boundary)
                last_flush_ts = boundary
                close_interval(boundary)

            if ts - last_flush_ts >= self.write_flush_interval:
                flush_writes(ts)
                last_flush_ts = ts

            # Stream-buffer loss feedback: during overload the ingress
            # buffers drop the un-servable fraction before FlowDNS sees it.
            offered += 1
            if current_loss > 0.0:
                loss_accumulator += current_loss
                if loss_accumulator >= 1.0:
                    loss_accumulator -= 1.0
                    dropped += 1
                    if kind == 1:
                        # Lost traffic still exists on the wire: it counts
                        # toward total volume but can never be correlated.
                        self._counters.flow_bytes += record.bytes_
                        self._counters.flow_records += 1
                    else:
                        self._counters.dns_records += 1
                    continue

            if kind == 0:
                self._process_dns(record, overloaded=current_loss > 0.0)
                self._counters.dns_records += 1
            else:
                result = self.lookup.process(record)
                self._counters.flow_records += 1
                self._counters.flow_bytes += record.bytes_
                if result.matched:
                    self._counters.correlated_bytes += record.bytes_
                    self._counters.matched_flows += 1
                if self.on_result is not None:
                    self.on_result(result)
                self._pending_writes.append(result)

        if first_ts is not None:
            flush_writes(last_ts)
            if last_ts > interval_start:
                close_interval(last_ts)

        report.total_bytes = sum(s.traffic_bytes for s in report.samples)
        report.correlated_bytes = sum(s.correlated_bytes for s in report.samples)
        report.dns_records = sum(s.dns_records for s in report.samples)
        report.flow_records = sum(s.flow_records for s in report.samples)
        report.matched_flows = self.lookup.stats.matched
        report.overall_loss_rate = dropped / offered if offered else 0.0
        report.max_write_delay = self.writer.stats.max_delay
        report.chain_lengths = dict(self.lookup.stats.chain_lengths)
        report.final_map_entries = self.storage.total_entries()
        report.overwrites = self.storage.overwrites()
        report.duration = (last_ts - first_ts) if first_ts is not None else 0.0
        return report

    def _process_dns(self, record: DnsRecord, overloaded: bool) -> None:
        self.fillup.process(record)
        if self.config.exact_ttl and not overloaded:
            # The A.8 expiry sweeper is itself starved during overload:
            # "the regular clear-up process not being fast enough to
            # clear-up all the expired TTLs as the hashmaps grow".
            self._counters.sweep_scanned += self.storage.tick(record.ts)
        # Rotating-store clear-up runs inside StoreBank.put (record-time
        # driven), so no extra tick is needed on that path.

    def _rotated_entries(self) -> int:
        ip_bank = self.storage.ip_bank
        cname_bank = self.storage.cname_bank
        total = 0
        if ip_bank is not None:
            total += ip_bank.stats.entries_rotated
        if cname_bank is not None:
            total += cname_bank.stats.entries_rotated
        return total
