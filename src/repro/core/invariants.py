"""Accounting invariants over :class:`~repro.core.metrics.EngineReport`.

The chaos contract: an engine fed hostile input may lose or reject data,
but every lost or mangled item must land in a counter and every loss
must be visible in ``report.warnings`` — never a hang, a crash, or a
silently wrong row. This module is the checker the chaos differential
suite (and the clean-path baseline) runs over every report.

Conservation semantics, as the engines actually account:

* per source, ``received == accepted + dropped`` — what arrived off the
  wire either reached the pipeline or was dropped by a full bounded
  buffer. ``malformed`` is charged *orthogonally*: for UDP/replay
  sources it counts decode failures among **accepted** items (decode
  happens in the lane, off the hot callback); for TCP DNS it counts
  framing-level events (a truncated tail, a corrupt prefix, an empty
  frame) and can exceed ``received``, which counts only cleanly framed
  messages;
* ``matched_flows == sum(chain_lengths)`` — every match records its
  CNAME chain length exactly once;
* ``matched_flows <= flow_records`` and ``correlated_bytes <=
  total_bytes`` — you cannot match more than you decoded;
* output rows ``== flow_records`` — every decoded flow produces exactly
  one TSV row (matched or NULL-service);
* ``evictions <= dns_records + restored_entries`` for single-stack
  engines — an eviction happens only at an insert, and inserts come
  from ingested or restored records (the sharded engine broadcasts
  CNAMEs to every shard, inflating per-shard inserts, so the bound is
  skipped there);
* loss visibility — any dropped item or non-zero ``overall_loss_rate``
  must be accompanied by at least one warning.

:func:`call_with_deadline` is the watchdog the chaos suite wraps every
engine run in: a hang becomes a :class:`WatchdogTimeout` failure with
the offending label, not a CI-level timeout.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.core.metrics import EngineReport

#: EngineReport counters that must never go negative.
_NON_NEGATIVE_FIELDS = (
    "total_bytes",
    "correlated_bytes",
    "dns_records",
    "flow_records",
    "matched_flows",
    "final_map_entries",
    "overwrites",
    "evictions",
    "worker_restarts",
    "snapshots_written",
    "restored_entries",
    "dns_invalid",
    "flow_decode_errors",
)

#: IngestStats counters that must never go negative.
_INGEST_FIELDS = ("received", "accepted", "dropped", "malformed", "bytes_in")


def check_report(report: EngineReport, rows: Optional[int] = None) -> List[str]:
    """Return every violated invariant as a human-readable string.

    ``rows`` (optional) is the number of data rows the run's sink
    received; when given, it must equal ``report.flow_records``. An
    empty list means the report is conservation-clean.
    """
    violations: List[str] = []

    for name in _NON_NEGATIVE_FIELDS:
        value = getattr(report, name)
        if value < 0:
            violations.append(f"{name} is negative: {value}")

    for source_name, stats in report.ingest.items():
        for counter in _INGEST_FIELDS:
            value = getattr(stats, counter)
            if value < 0:
                violations.append(
                    f"ingest[{source_name}].{counter} is negative: {value}"
                )
        if stats.received != stats.accepted + stats.dropped:
            violations.append(
                f"ingest[{source_name}] conservation broken: received="
                f"{stats.received} != accepted={stats.accepted} + "
                f"dropped={stats.dropped}"
            )

    chain_total = sum(report.chain_lengths.values())
    if chain_total != report.matched_flows:
        violations.append(
            f"chain-length histogram sums to {chain_total}, but "
            f"matched_flows={report.matched_flows}"
        )
    if any(count < 0 for count in report.chain_lengths.values()):
        violations.append("chain_lengths contains a negative count")

    if report.matched_flows > report.flow_records:
        violations.append(
            f"matched_flows={report.matched_flows} exceeds "
            f"flow_records={report.flow_records}"
        )
    if report.correlated_bytes > report.total_bytes:
        violations.append(
            f"correlated_bytes={report.correlated_bytes} exceeds "
            f"total_bytes={report.total_bytes}"
        )
    if not 0.0 <= report.overall_loss_rate <= 1.0:
        violations.append(
            f"overall_loss_rate out of [0, 1]: {report.overall_loss_rate}"
        )

    # Eviction conservation (single-stack engines only: the sharded
    # engine broadcasts CNAME records to every shard, so per-shard
    # inserts — and therefore summed evictions — can legitimately
    # exceed the once-counted dns_records).
    if report.variant_name != "sharded":
        insert_budget = report.dns_records + report.restored_entries
        if report.evictions > insert_budget:
            violations.append(
                f"evictions={report.evictions} exceeds possible inserts "
                f"(dns_records={report.dns_records} + "
                f"restored_entries={report.restored_entries})"
            )

    if rows is not None and rows != report.flow_records:
        violations.append(
            f"sink carries {rows} data rows, but flow_records="
            f"{report.flow_records} (every decoded flow must produce "
            f"exactly one row)"
        )

    # Loss visibility: counters saying "we lost data" must be matched by
    # a warning an operator would actually see.
    dropped_total = sum(stats.dropped for stats in report.ingest.values())
    if dropped_total > 0 and not report.warnings:
        violations.append(
            f"{dropped_total} items dropped across ingest sources but "
            f"report.warnings is empty (silent loss)"
        )
    if report.overall_loss_rate > 0 and not report.warnings:
        violations.append(
            f"overall_loss_rate={report.overall_loss_rate:.4f} but "
            f"report.warnings is empty (silent loss)"
        )

    return violations


def assert_invariants(report: EngineReport, rows: Optional[int] = None) -> None:
    """Raise :class:`AssertionError` listing every violated invariant."""
    violations = check_report(report, rows=rows)
    if violations:
        raise AssertionError(
            f"{len(violations)} accounting invariant(s) violated "
            f"(variant={report.variant_name!r}):\n  - "
            + "\n  - ".join(violations)
        )


class WatchdogTimeout(RuntimeError):
    """A watchdogged call exceeded its deadline (a hang, surfaced)."""


def call_with_deadline(fn: Callable, timeout: float, label: str = "call"):
    """Run ``fn()`` under a hard deadline; a hang fails, never blocks CI.

    The call runs in a daemon thread; if it does not finish within
    ``timeout`` seconds, :class:`WatchdogTimeout` is raised and the
    daemon thread is abandoned (it cannot block interpreter exit). An
    exception inside ``fn`` propagates unchanged.
    """
    outcome: dict = {}
    done = threading.Event()

    def body() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            outcome["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(target=body, daemon=True, name=f"watchdog:{label}")
    worker.start()
    if not done.wait(timeout):
        raise WatchdogTimeout(
            f"{label} still running after {timeout:.1f}s watchdog deadline"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("value")
