"""Shared pipeline runtime for the live engines (stages and lanes).

Every live engine — threads (:class:`repro.core.engine.ThreadedEngine`),
processes (:class:`repro.core.sharded.ShardedEngine`), or a single
asyncio loop (:class:`repro.core.async_engine.AsyncEngine`) — runs the
same two lanes from the paper's Figure 1:

* the **fill lane** (DNS): batch a wake-up's raw wire payloads into one
  :class:`~repro.dns.columnar.DnsBatch` via the selective columnar
  decoder and store its columns directly (non-wire items — records,
  decoded messages — take the object FillUp filter); per-record with
  expiry sweeps in exact-TTL mode, which always stays on the reference
  object path;
* the **lookup lane** (Netflow): normalise stream items (raw export
  datagrams, :class:`FlowRecord` objects, or whole :class:`FlowBatch`
  es) into one columnar batch per wake-up, correlate it, and hand the
  resulting :class:`CorrelationBatch` to the write sink.

Before this module existed each engine re-implemented the lanes, the
buffer drain loop, and the report assembly; an engine now only supplies
*scheduling policy* — how lane invocations map onto threads, worker
processes + IPC column tuples, or asyncio tasks — and everything else
(item normalisation, exact-TTL semantics, stats plumbing, report
merging) stays in one place, pinned by one parity suite.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import DEFAULT_FILL_TIMEOUT  # noqa: F401 - re-export
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import CorrelationBatch, LookUpProcessor
from repro.core.metrics import EngineReport, IngestStats, dedupe_warnings
from repro.core.storage_adapter import DnsStorage
from repro.dns.columnar import decode_fill_columns
from repro.dns.stream import DnsRecord
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowBatch, FlowRecord

#: Default blocking-pop slice for thread-based drain loops.
POP_TIMEOUT = 0.1


# --- the ingest-source protocol ---------------------------------------------
#
# Every socket- or capture-fed stream source — :class:`repro.netflow.udp
# .UdpFlowSource`, :class:`repro.replay.source.ReplaySource`, the async
# engine's :class:`~repro.core.async_engine.UdpFlowIngest` /
# :class:`~repro.core.async_engine.TcpDnsIngest`, and the multi-process
# :class:`~repro.core.ingest.ReuseportUdpIngest` — implements one
# protocol, so engines and the capture tee never special-case types:
#
# * ``ingest_stats`` — an :class:`IngestStats` of what arrived off the
#   wire, what reached the pipeline, and what was dropped or malformed;
#   :func:`collect_ingest` surfaces it under ``EngineReport.ingest``.
# * ``capture=`` — constructors accept an optional
#   :class:`repro.replay.capture.CaptureWriter`; every received wire
#   unit is recorded *pre-decode* (malformed input included) so a replay
#   reproduces the same counters.
# * ``close()`` — idempotent teardown; a closed source's iteration ends
#   and its sockets/processes are released. Iterating after close is
#   safe and yields nothing.
# * optional ``ingest_errors`` — strings describing partial-ingest
#   failures (e.g. a dead worker process); :func:`collect_ingest` folds
#   them into ``EngineReport.warnings`` so a degraded run warns instead
#   of failing silently.
#
# Sources that can feed the asyncio engine *live* (rather than being
# pumped as finite iterables) additionally implement the live hooks
# ``connect_buffer(buffer)``, ``await start(loop)`` and ``await stop()``
# — :func:`is_live_source` duck-types on those.


def is_live_source(source) -> bool:
    """True for sources implementing the live asyncio ingest hooks."""
    return callable(getattr(source, "connect_buffer", None)) and callable(
        getattr(source, "start", None)
    )


# --- flow gating ------------------------------------------------------------


class GatedSource:
    """A flow source that waits for the engine's DNS fill to finish.

    Yields nothing until ``engine.fillup_complete`` (or ``timeout``
    seconds pass, after which ``on_timeout`` — if given — is called once
    before yielding anyway). The wait runs in the receiver thread at the
    first ``next()``.

    A class, not a generator, so the gate is *transparent* to the
    ingest-source protocol: ``ingest_stats``, ``ingest_errors``, and
    ``close()`` proxy through to the wrapped source. A gated
    :class:`~repro.replay.source.ReplaySource` therefore still surfaces
    its per-lane counters under :attr:`EngineReport.ingest` — the
    accounting must not disappear just because the stream is gated.
    """

    def __init__(self, engine, items: Iterable, timeout: float,
                 poll: float = 0.005, on_timeout=None):
        self._engine = engine
        self._items = items
        self._timeout = timeout
        self._poll = poll
        self._on_timeout = on_timeout

    @property
    def ingest_stats(self):
        return getattr(self._items, "ingest_stats", None)

    @property
    def ingest_errors(self):
        return getattr(self._items, "ingest_errors", ())

    def close(self) -> None:
        close = getattr(self._items, "close", None)
        if close is not None:
            close()

    def __iter__(self):
        deadline = time.monotonic() + self._timeout
        while not self._engine.fillup_complete and time.monotonic() < deadline:
            time.sleep(self._poll)
        if not self._engine.fillup_complete and self._on_timeout is not None:
            self._on_timeout()
        yield from self._items


def gated_flow_source(
    engine,
    items: Iterable,
    timeout: float = DEFAULT_FILL_TIMEOUT,
    poll: float = 0.005,
    on_timeout=None,
) -> Iterable:
    """The shared deterministic-matching gate (see :class:`GatedSource`).

    This is the one implementation used by the CLI's offline mode, the
    test suite, and the benchmarks.
    """
    return GatedSource(engine, items, timeout, poll=poll, on_timeout=on_timeout)


def fill_gate_warning(timeout: float) -> str:
    """The report warning recorded when the fill gate times out."""
    return (
        f"DNS fill still running after {timeout:.0f}s; correlated against a "
        f"partially-filled store (match counts may be low)"
    )


def gated_with_warning(
    engine,
    items: Iterable,
    timeout: float,
    warnings_out: List[str],
    on_timeout=None,
) -> Iterable:
    """A fill-gated flow source whose timeout is recorded, not just printed.

    ``warnings_out`` collects the warning text so the caller can attach
    it to the run's :attr:`EngineReport.warnings` after the engine
    returns; ``on_timeout`` (optional) additionally fires for immediate
    operator feedback (the CLI prints to stderr).
    """

    def note():
        warnings_out.append(fill_gate_warning(timeout))
        if on_timeout is not None:
            on_timeout()

    return gated_flow_source(engine, items, timeout=timeout, on_timeout=note)


# --- item normalisation -----------------------------------------------------


def dns_item_records(item, processor: FillUpProcessor) -> Sequence[DnsRecord]:
    """Normalise one DNS stream item into stream records.

    Accepts a :class:`DnsRecord` (passed through) or a ``(ts, payload)``
    tuple whose payload is wire bytes or a decoded message — the FillUp
    filter handles validation. Anything else normalises to nothing.
    """
    if isinstance(item, DnsRecord):
        return (item,)
    if isinstance(item, tuple) and len(item) == 2:
        ts, payload = item
        return processor.filter_message(ts, payload)
    return ()


def extend_flow_batch(batch: FlowBatch, item, collector: FlowCollector) -> None:
    """Fold one flow stream item into a columnar accumulator.

    Raw export datagrams decode through the (stateful, template-holding)
    ``collector`` straight to columns; records and batches append without
    materialising anything. Unknown item types are ignored, matching the
    engines' historical tolerance.
    """
    if isinstance(item, FlowBatch):
        batch.extend(item)
    elif isinstance(item, FlowRecord):
        batch.append_record(item)
    elif isinstance(item, (bytes, bytearray)):
        batch.extend(collector.ingest_columns(bytes(item)))


def flow_items_to_batch(items: Iterable, collector: FlowCollector) -> FlowBatch:
    """Accumulate a drained wake-up's items into one :class:`FlowBatch`."""
    batch = FlowBatch()
    for item in items:
        extend_flow_batch(batch, item, collector)
    return batch


# --- lanes ------------------------------------------------------------------


class FillLane:
    """The DNS fill stage: items → validated records → storage.

    The default path is columnar: a wake-up's raw wire payloads
    accumulate into one :class:`~repro.dns.columnar.DnsBatch` (the DNS
    twin of the shape :class:`LookupLane` feeds
    ``correlate_batch_columns``) and go to storage without materialising
    a single per-record object. ``columnar=False`` keeps the object
    reference path (``filter_message`` → ``process_batch``) the
    differential suite compares against.

    Exact-TTL mode always keeps per-record processing and per-record
    sweeps: the A.8 experiment's result *is* the sweep-cost meltdown,
    so its timing must not be amortised away.
    """

    __slots__ = ("processor", "storage", "exact_ttl", "columnar")

    def __init__(
        self,
        processor: FillUpProcessor,
        storage: Optional[DnsStorage] = None,
        exact_ttl: bool = False,
        columnar: bool = True,
    ):
        self.processor = processor
        self.storage = storage if storage is not None else processor.storage
        self.exact_ttl = exact_ttl
        self.columnar = columnar and not exact_ttl

    def process_records(self, records: Sequence[DnsRecord]) -> None:
        """Store already-normalised records (one batch round-trip)."""
        if not records:
            return
        if self.exact_ttl:
            for record in records:
                self.processor.process(record)
                self.storage.tick(record.ts)
        else:
            self.processor.process_batch(records)

    def process_columns(self, batch) -> None:
        """Store one already-decoded :class:`~repro.dns.columnar.DnsBatch`.

        The sharded engine's shards receive pre-partitioned column
        tuples over IPC and land here. In exact-TTL mode rows rehydrate
        to records so the per-record store + sweep cadence is preserved.
        """
        if self.exact_ttl:
            stats = self.processor.stats
            stats.raw_messages += batch.messages
            stats.invalid += batch.invalid
            stats.records_unknown_type += batch.unknown_records
            for i in range(len(batch)):
                record = batch.record(i)
                self.processor.process(record)
                self.storage.tick(record.ts)
            return
        self.processor.process_columns(batch)

    def process_items(self, items: Iterable) -> None:
        """Normalise and store one wake-up's worth of stream items."""
        if not self.columnar:
            records: List[DnsRecord] = []
            for item in items:
                records.extend(dns_item_records(item, self.processor))
            self.process_records(records)
            return
        # Columnar: contiguous runs of (ts, wire) items batch-decode
        # straight to columns; anything else (DnsRecord objects, decoded
        # messages) takes the object path. Runs flush on kind switches so
        # storage sees items in arrival order — overwrite and clear-up
        # semantics are order-sensitive.
        payloads: List = []
        stamps: List[float] = []
        records = []
        for item in items:
            if (
                type(item) is tuple
                and len(item) == 2
                and isinstance(item[1], (bytes, bytearray, memoryview))
            ):
                if records:
                    self.process_records(records)
                    records = []
                stamps.append(item[0])
                payloads.append(item[1])
                continue
            if payloads:
                self.processor.process_columns(
                    decode_fill_columns(payloads, stamps)
                )
                payloads = []
                stamps = []
            records.extend(dns_item_records(item, self.processor))
        if payloads:
            self.processor.process_columns(decode_fill_columns(payloads, stamps))
        if records:
            self.process_records(records)


class LookupLane:
    """The flow lookup stage: items → one columnar batch → correlation.

    The columnar fast path end-to-end: whatever mix of item types a
    stream carries, decode→correlate touches only :class:`FlowBatch`
    columns and per-record objects are never materialised. The object
    reference path stays available via the processor's
    ``process``/``correlate_batch`` for parity tooling.
    """

    __slots__ = ("processor", "collector", "ingest_stats")

    def __init__(
        self,
        processor: LookUpProcessor,
        collector: Optional[FlowCollector] = None,
        ingest_stats: Optional[IngestStats] = None,
    ):
        self.processor = processor
        self.collector = collector if collector is not None else FlowCollector()
        #: When a live source defers datagram decode to this lane (the
        #: off-loop batched path), its per-source stats ride along so the
        #: malformed-input count lands where operators look for it —
        #: decode moved off the socket callback, the accounting must not
        #: move with it.
        self.ingest_stats = ingest_stats

    def correlate_batch(self, batch: FlowBatch) -> Optional[CorrelationBatch]:
        """Correlate one columnar batch; None when it is empty."""
        if not len(batch):
            return None
        return self.processor.correlate_batch_columns(batch)

    def correlate_items(self, items: Iterable) -> Optional[CorrelationBatch]:
        """Accumulate one wake-up's items into a batch and correlate it."""
        if self.ingest_stats is None:
            return self.correlate_batch(flow_items_to_batch(items, self.collector))
        cstats = self.collector.stats
        errors_before = cstats.malformed + cstats.unknown_version
        batch = flow_items_to_batch(items, self.collector)
        self.ingest_stats.malformed += (
            cstats.malformed + cstats.unknown_version - errors_before
        )
        return self.correlate_batch(batch)


# --- drain loop -------------------------------------------------------------


def drain_buffer(
    buffer,
    batch_size: int,
    handle: Callable[[List], None],
    timeout: float = POP_TIMEOUT,
) -> None:
    """The standard worker body: batch-pop a bounded buffer until closed.

    One blocking ``pop_many`` per wake-up (lock round-trip amortised over
    the batch), re-checking closure on every timeout slice. Shared by the
    threaded engine's fill/lookup/write workers; the asyncio engine runs
    the same shape over its own awaitable buffers.
    """
    while True:
        items = buffer.pop_many(batch_size, timeout=timeout)
        if not items:
            if buffer.closed and len(buffer) == 0:
                return
            continue
        handle(items)


def source_failure_warning(name: str, exc: BaseException) -> str:
    """The report warning recorded when a stream source raises mid-run.

    A failing source (a truncated capture file, a corrupt export) must
    not hang the engine or silently truncate the run: its buffer closes,
    everything received before the failure still flows through, and this
    warning lands in :attr:`EngineReport.warnings`.
    """
    return (
        f"source {name} failed mid-stream: {exc!r}; results cover only "
        f"items received before the failure"
    )


def ingest_drop_warning(name: str, stats: IngestStats) -> str:
    """The report warning recorded when an ingest source dropped items.

    Loss must be *visible*, not just counted: the accounting-invariant
    checker (:mod:`repro.core.invariants`) fails any report whose
    counters say data was lost while ``warnings`` stays empty.
    """
    return (
        f"source {name} dropped {stats.dropped} of {stats.received} "
        f"received items (ingest buffer overflow)"
    )


def buffer_loss_warning(rate: float) -> str:
    """The report warning recorded for non-zero ingress buffer loss."""
    return (
        f"ingress stream buffers overflowed: {rate:.2%} of offered items "
        f"dropped (see overall_loss_rate)"
    )


# --- ingest accounting ------------------------------------------------------


def collect_ingest(report: EngineReport, sources: Iterable) -> None:
    """Attach per-source ingest counters for socket-fed sources.

    Any source exposing an ``ingest_stats`` attribute (an
    :class:`IngestStats`, per the ingest-source protocol above) gets its
    counters surfaced under :attr:`EngineReport.ingest`, keyed by the
    stats' name (suffixed on collision so two unnamed sources don't
    shadow each other). A source's ``ingest_errors`` strings — partial
    failures like a dead worker process — fold into
    :attr:`EngineReport.warnings`.

    Loss visibility, then bounded readability: every source whose
    counters say it dropped items gets an
    :func:`ingest_drop_warning`, and the final warning list is
    collapsed through :func:`repro.core.metrics.dedupe_warnings`
    (``message ×N``) — chaos runs can repeat one failure hundreds of
    times. Engines call this as the last step of report assembly.
    """
    for source in sources:
        stats = getattr(source, "ingest_stats", None)
        if isinstance(stats, IngestStats):
            key = stats.name
            if key in report.ingest:
                key = f"{key}#{len(report.ingest)}"
            report.ingest[key] = stats
        for error in getattr(source, "ingest_errors", ()):
            report.warnings.append(str(error))
        # Supervised sources (ReuseportUdpIngest) count worker respawns.
        report.worker_restarts += int(getattr(source, "restarts", 0) or 0)
    for key, stats in report.ingest.items():
        if stats.dropped > 0:
            report.warnings.append(ingest_drop_warning(key, stats))
    report.warnings[:] = dedupe_warnings(report.warnings)


# --- report assembly --------------------------------------------------------

#: The counter keys one worker stack (fillup + lookup + storage) reports.
_SUMMARY_ZEROS = {
    "flows_in": 0,
    "bytes_in": 0,
    "bytes_matched": 0,
    "matched": 0,
    "unmatched": 0,
    "chain_lengths": {},
    "records_in": 0,
    "records_stored": 0,
    "records_invalid": 0,
    "map_entries": 0,
    "overwrites": 0,
    "evictions": 0,
}


def empty_summary(shard_id: int, error: Optional[str]) -> Dict:
    """A zeroed per-stack report, used when a worker dies before reporting."""
    summary: Dict = {"shard": shard_id, "error": error}
    summary.update({k: ({} if isinstance(v, dict) else v) for k, v in _SUMMARY_ZEROS.items()})
    return summary


def stack_summary(
    fillup_processors: Sequence[FillUpProcessor],
    lookup_processors: Sequence[LookUpProcessor],
    storage: DnsStorage,
    shard_id: int = 0,
    error: Optional[str] = None,
) -> Dict:
    """Flatten one worker stack's counters into a plain-dict summary.

    The dict is the engines' lingua franca for report assembly: the
    sharded engine pickles it over IPC, the threaded and async engines
    build it in-process, and :func:`merge_summaries` folds any number of
    them into one :class:`EngineReport`.
    """
    chain_lengths: Dict[int, int] = {}
    for processor in lookup_processors:
        for length, count in processor.stats.chain_lengths.items():
            chain_lengths[length] = chain_lengths.get(length, 0) + count
    return {
        "shard": shard_id,
        "error": error,
        "flows_in": sum(p.stats.flows_in for p in lookup_processors),
        "bytes_in": sum(p.stats.bytes_in for p in lookup_processors),
        "bytes_matched": sum(p.stats.bytes_matched for p in lookup_processors),
        "matched": sum(p.stats.matched for p in lookup_processors),
        "unmatched": sum(p.stats.unmatched for p in lookup_processors),
        "chain_lengths": chain_lengths,
        "records_in": sum(p.stats.records_in for p in fillup_processors),
        "records_stored": sum(p.stats.records_stored for p in fillup_processors),
        "records_invalid": sum(p.stats.invalid for p in fillup_processors),
        "map_entries": storage.total_entries(),
        "overwrites": storage.overwrites(),
        "evictions": storage.evictions(),
    }


def merge_summaries(
    summaries: Sequence[Dict],
    variant_name: str,
    flow_lane: str = "columnar",
    dns_records: Optional[int] = None,
    dns_invalid: Optional[int] = None,
    broadcast_overwrites: bool = False,
) -> EngineReport:
    """Fold worker-stack summaries into one :class:`EngineReport`.

    ``dns_records`` overrides the summed ``records_in`` when the engine
    counted DNS records upstream of the stacks (the sharded engine's
    router counts each record once, while broadcast records re-count in
    every shard); ``dns_invalid`` overrides the summed
    ``records_invalid`` for the same reason (the router's wire filter is
    where sharded decode failures happen). ``broadcast_overwrites=True``
    takes the max overwrite count instead of the sum — with broadcast
    address records every stack observes the same IP-key overwrites, so
    summing would multiply them.
    """
    report = EngineReport(variant_name=variant_name, flow_lane=flow_lane)
    report.total_bytes = sum(s["bytes_in"] for s in summaries)
    report.correlated_bytes = sum(s["bytes_matched"] for s in summaries)
    report.flow_records = sum(s["flows_in"] for s in summaries)
    report.matched_flows = sum(s["matched"] for s in summaries)
    report.dns_records = (
        dns_records
        if dns_records is not None
        else sum(s["records_in"] for s in summaries)
    )
    # .get: summaries from pre-invalid-count worker builds lack the key.
    report.dns_invalid = (
        dns_invalid
        if dns_invalid is not None
        else sum(s.get("records_invalid", 0) for s in summaries)
    )
    for summary in summaries:
        for length, count in summary["chain_lengths"].items():
            report.chain_lengths[length] = report.chain_lengths.get(length, 0) + count
    # Resident entries across all stacks: replicated (broadcast) entries
    # genuinely occupy memory in each holding process, so they always sum.
    report.final_map_entries = sum(s["map_entries"] for s in summaries)
    # .get: summaries from pre-eviction worker builds lack the key.
    report.evictions = sum(s.get("evictions", 0) for s in summaries)
    if broadcast_overwrites:
        report.overwrites = max((s["overwrites"] for s in summaries), default=0)
    else:
        report.overwrites = sum(s["overwrites"] for s in summaries)
    return report


def buffer_loss_rate(buffers: Iterable) -> float:
    """Overall ingress loss across a run's bounded stream buffers."""
    offered = dropped = 0
    for buffer in buffers:
        offered += buffer.stats.offered
        dropped += buffer.stats.dropped
    return dropped / offered if offered else 0.0
