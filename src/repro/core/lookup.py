"""LookUp processing: flows against the shared storage (Section 3.3).

Implements Algorithm 2: ``deepLookUp`` the source IP in the IP-NAME maps,
then follow the NAME-CNAME chain (bounded by the loop limit, 6 in the
paper) towards the name the client originally asked for, memoising
multi-hop chains back into the Active CNAME map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import FlowDNSConfig
from repro.core.storage_adapter import DnsStorage
from repro.netflow.records import FlowDirection, FlowRecord


@dataclass(frozen=True)
class CorrelationResult:
    """The outcome of looking up one flow.

    ``chain`` is the name sequence discovered (``[name, cname1, ...]``);
    ``service`` is the final element — the paper's "result" — or ``None``
    when the IP was not in the DNS maps.
    """

    flow: FlowRecord
    chain: tuple
    ts: float

    @property
    def matched(self) -> bool:
        return bool(self.chain)

    @property
    def service(self) -> Optional[str]:
        return self.chain[-1] if self.chain else None

    @property
    def dns_name(self) -> Optional[str]:
        """The direct IP→NAME hit, before any CNAME unrolling."""
        return self.chain[0] if self.chain else None


@dataclass
class LookUpStats:
    """Counters for the Netflow side of the pipeline."""

    flows_in: int = 0
    invalid: int = 0
    matched: int = 0
    unmatched: int = 0
    bytes_in: int = 0
    bytes_matched: int = 0
    cname_steps: int = 0
    chains_memoized: int = 0
    loop_limit_hits: int = 0
    chain_lengths: dict = field(default_factory=dict)

    @property
    def correlation_rate(self) -> float:
        """Correlated bytes over total bytes — the paper's headline metric."""
        return self.bytes_matched / self.bytes_in if self.bytes_in else 0.0

    @property
    def match_rate(self) -> float:
        """Correlated flow count over total flows (secondary metric)."""
        total = self.matched + self.unmatched
        return self.matched / total if total else 0.0

    def note_chain(self, length: int) -> None:
        self.chain_lengths[length] = self.chain_lengths.get(length, 0) + 1


class LookUpProcessor:
    """Correlates flow records against the DNS storage (Algorithm 2)."""

    def __init__(self, storage: DnsStorage, config: FlowDNSConfig):
        self.storage = storage
        self.config = config
        self.stats = LookUpStats()

    def is_valid(self, flow: FlowRecord) -> bool:
        """Step 2's flow filter: discard flows without usable counters."""
        return flow.bytes_ >= 0 and flow.packets >= 0

    def process(self, flow: FlowRecord) -> CorrelationResult:
        """Steps 4–7 for one flow record."""
        self.stats.flows_in += 1
        self.stats.bytes_in += flow.bytes_
        if not self.is_valid(flow):
            self.stats.invalid += 1
            return CorrelationResult(flow, (), flow.ts)

        direction = self.config.direction
        if direction == FlowDirection.BOTH:
            # Try the source first (the paper's primary interest), fall
            # back to the destination.
            chain = self._resolve(str(flow.src_ip), flow.ts)
            if not chain:
                chain = self._resolve(str(flow.dst_ip), flow.ts)
        else:
            chain = self._resolve(str(flow.lookup_ip(direction)), flow.ts)

        if chain:
            self.stats.matched += 1
            self.stats.bytes_matched += flow.bytes_
            self.stats.note_chain(len(chain))
        else:
            self.stats.unmatched += 1
        return CorrelationResult(flow, tuple(chain), flow.ts)

    def _resolve(self, ip_text: str, now: float) -> List[str]:
        """IP → [name, cname...] per Algorithm 2; [] when nothing found."""
        name = self.storage.lookup_ip(ip_text, now)
        if name is None:
            return []
        chain = [name]
        seen = {name}
        loop_count = 0
        current = name
        while loop_count < self.config.cname_loop_limit:
            cname = self.storage.lookup_cname(current, now)
            self.stats.cname_steps += 1
            if cname is None:
                break
            if cname in seen:
                break  # defensive: a CNAME cycle in poisoned data
            chain.append(cname)
            seen.add(cname)
            current = cname
            loop_count += 1
        else:
            self.stats.loop_limit_hits += 1
        if len(chain) > 2 and self.config.memoize_cname_chains:
            # Step 7: "If the result is found with more than one look-up in
            # NAME-CNAME maps, we add it to NAME-CNAME_active for later use."
            self.storage.memoize_chain(chain[0], chain[-1])
            self.stats.chains_memoized += 1
        return chain
