"""LookUp processing: flows against the shared storage (Section 3.3).

Implements Algorithm 2: ``deepLookUp`` the source IP in the IP-NAME maps,
then follow the NAME-CNAME chain (bounded by the loop limit, 6 in the
paper) towards the name the client originally asked for, memoising
multi-hop chains back into the Active CNAME map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import FlowDNSConfig
from repro.core.storage_adapter import DnsStorage
from repro.netflow.records import FlowBatch, FlowDirection, FlowRecord
from repro.util.interning import intern_string


@dataclass(frozen=True)
class CorrelationResult:
    """The outcome of looking up one flow.

    ``chain`` is the name sequence discovered (``[name, cname1, ...]``);
    ``service`` is the final element — the paper's "result" — or ``None``
    when the IP was not in the DNS maps.
    """

    flow: FlowRecord
    chain: tuple
    ts: float

    @property
    def matched(self) -> bool:
        return bool(self.chain)

    @property
    def service(self) -> Optional[str]:
        return self.chain[-1] if self.chain else None

    @property
    def dns_name(self) -> Optional[str]:
        """The direct IP→NAME hit, before any CNAME unrolling."""
        return self.chain[0] if self.chain else None


class CorrelationBatch:
    """Columnar outcome of correlating one :class:`FlowBatch`.

    ``chains`` is parallel to the batch's rows (empty tuple = unmatched).
    The ``matched``/``invalid``/``bytes_*`` attributes are this batch's
    stats deltas (already flushed into the processor's counters) so the
    engines can report without re-deriving them. ``CorrelationResult`` /
    ``FlowRecord`` objects are materialised only on demand via
    :meth:`results` — the write path formats rows straight from the
    columns and never needs them.
    """

    __slots__ = ("flows", "chains", "matched", "invalid", "bytes_in", "bytes_matched")

    def __init__(
        self,
        flows: FlowBatch,
        chains: List[tuple],
        matched: int = 0,
        invalid: int = 0,
        bytes_in: int = 0,
        bytes_matched: int = 0,
    ):
        self.flows = flows
        self.chains = chains
        self.matched = matched
        self.invalid = invalid
        self.bytes_in = bytes_in
        self.bytes_matched = bytes_matched

    def __len__(self) -> int:
        return len(self.chains)

    def matched_mask(self) -> List[bool]:
        return [bool(chain) for chain in self.chains]

    def results(self, only_matched: bool = False) -> List[CorrelationResult]:
        """Materialise per-flow results (sinks/analysis hand-off).

        With ``only_matched=True`` only matched flows pay for object
        construction — the batch's headline economy.
        """
        flows = self.flows
        ts = flows.ts
        out: List[CorrelationResult] = []
        append = out.append
        for i, chain in enumerate(self.chains):
            if only_matched and not chain:
                continue
            append(CorrelationResult(flows.record(i), chain, ts[i]))
        return out


@dataclass
class LookUpStats:
    """Counters for the Netflow side of the pipeline."""

    flows_in: int = 0
    invalid: int = 0
    matched: int = 0
    unmatched: int = 0
    bytes_in: int = 0
    bytes_matched: int = 0
    cname_steps: int = 0
    chains_memoized: int = 0
    loop_limit_hits: int = 0
    chain_lengths: dict = field(default_factory=dict)

    @property
    def correlation_rate(self) -> float:
        """Correlated bytes over total bytes — the paper's headline metric."""
        return self.bytes_matched / self.bytes_in if self.bytes_in else 0.0

    @property
    def match_rate(self) -> float:
        """Correlated flow count over total flows (secondary metric)."""
        total = self.matched + self.unmatched
        return self.matched / total if total else 0.0

    def note_chain(self, length: int) -> None:
        self.chain_lengths[length] = self.chain_lengths.get(length, 0) + 1


class LookUpProcessor:
    """Correlates flow records against the DNS storage (Algorithm 2)."""

    #: Cap on the address→text memo; cleared wholesale when exceeded.
    _IP_TEXT_CACHE_MAX = 1 << 16

    def __init__(self, storage: DnsStorage, config: FlowDNSConfig):
        self.storage = storage
        self.config = config
        self.stats = LookUpStats()
        # address object -> interned text, persistent across batches so a
        # hot IP is stringified and hashed once per processor lifetime,
        # and the text object is the same one FillUp interned as map key.
        self._ip_text_cache: dict = {}

    def is_valid(self, flow: FlowRecord) -> bool:
        """Step 2's flow filter: discard flows without usable counters."""
        return flow.bytes_ >= 0 and flow.packets >= 0

    def process(self, flow: FlowRecord) -> CorrelationResult:
        """Steps 4–7 for one flow record."""
        self.stats.flows_in += 1
        self.stats.bytes_in += flow.bytes_
        if not self.is_valid(flow):
            self.stats.invalid += 1
            return CorrelationResult(flow, (), flow.ts)

        direction = self.config.direction
        if direction == FlowDirection.BOTH:
            # Try the source first (the paper's primary interest), fall
            # back to the destination.
            chain = self._resolve(str(flow.src_ip), flow.ts)
            if not chain:
                chain = self._resolve(str(flow.dst_ip), flow.ts)
        else:
            chain = self._resolve(str(flow.lookup_ip(direction)), flow.ts)

        if chain:
            self.stats.matched += 1
            self.stats.bytes_matched += flow.bytes_
            self.stats.note_chain(len(chain))
        else:
            self.stats.unmatched += 1
        return CorrelationResult(flow, tuple(chain), flow.ts)

    def correlate_batch(self, flows: Sequence[FlowRecord]) -> List[CorrelationResult]:
        """Batched steps 4–7: correlate many flows in one storage round-trip.

        Produces the same results and flow-level counters as calling
        :meth:`process` per record, with two batch-level differences:

        * each distinct lookup IP is resolved once per batch and its chain
          shared across the batch's flows, so the chain-walk counters
          (``cname_steps``, ``chains_memoized``) count unique resolutions,
          and a multi-hop chain memoised mid-batch shortens later *batches*
          rather than later flows of the same batch;
        * the exact-TTL store's expiry depends on each flow's own
          timestamp, which makes sharing resolutions unsound — that
          configuration transparently falls back to per-record processing.
        """
        batch = flows if isinstance(flows, list) else list(flows)
        if not batch:
            return []
        if self.config.exact_ttl:
            return [self.process(flow) for flow in batch]

        direction = self.config.direction
        both = direction is FlowDirection.BOTH
        use_src = both or direction is FlowDirection.SOURCE
        now = batch[0].ts

        # Pass 1: validity filter + primary lookup key per flow. The str()
        # conversion is cached per distinct address object (persistently,
        # across batches) and the text is interned.
        primaries: List[Optional[str]] = [None] * len(batch)
        if len(self._ip_text_cache) > self._IP_TEXT_CACHE_MAX:
            self._ip_text_cache.clear()
        str_cache = self._ip_text_cache
        cache_get = str_cache.get
        invalid = 0
        for i, flow in enumerate(batch):
            if flow.bytes_ < 0 or flow.packets < 0:  # is_valid(), inlined
                invalid += 1
                continue
            ip = flow.src_ip if use_src else flow.dst_ip
            text = cache_get(ip)
            if text is None:
                text = intern_string(str(ip))
                str_cache[ip] = text
            primaries[i] = text

        # Pass 2: one batched deepLookUp for the unique IPs, then one
        # chain walk per unique hit. First-appearance order (not a set):
        # chain memoisation makes walk results order-sensitive, and the
        # per-record path resolves in flow order.
        unique = dict.fromkeys(text for text in primaries if text is not None)
        names = self.storage.lookup_ips(unique, now)
        chains: dict = {}
        for text in unique:
            name = names.get(text)
            chains[text] = tuple(self._walk_chain(name, now)) if name else ()

        if both:
            # Destination fallback for flows whose source IP missed.
            fallbacks: List[Optional[str]] = [None] * len(batch)
            fb_unique: dict = {}
            for i, flow in enumerate(batch):
                text = primaries[i]
                if text is None or chains[text]:
                    continue
                dst = str_cache.get(flow.dst_ip)
                if dst is None:
                    dst = intern_string(str(flow.dst_ip))
                    str_cache[flow.dst_ip] = dst
                fallbacks[i] = dst
                if dst not in chains:
                    fb_unique[dst] = None
            fb_names = self.storage.lookup_ips(fb_unique, now)
            for text in fb_unique:
                name = fb_names.get(text)
                chains[text] = tuple(self._walk_chain(name, now)) if name else ()

        # Pass 3: per-flow results and counters, flushed to stats once.
        stats = self.stats
        results: List[CorrelationResult] = []
        append = results.append
        length_counts: dict = {}
        matched = unmatched = bytes_matched = bytes_in = 0
        for i, flow in enumerate(batch):
            bytes_in += flow.bytes_
            text = primaries[i]
            if text is None:
                append(CorrelationResult(flow, (), flow.ts))
                continue
            chain = chains[text]
            if both and not chain and fallbacks[i] is not None:
                chain = chains[fallbacks[i]]
            if chain:
                matched += 1
                bytes_matched += flow.bytes_
                length = len(chain)
                length_counts[length] = length_counts.get(length, 0) + 1
            else:
                unmatched += 1
            append(CorrelationResult(flow, chain, flow.ts))
        stats.flows_in += len(batch)
        stats.bytes_in += bytes_in
        stats.invalid += invalid
        stats.matched += matched
        stats.unmatched += unmatched
        stats.bytes_matched += bytes_matched
        chain_lengths = stats.chain_lengths
        for length, count in length_counts.items():
            chain_lengths[length] = chain_lengths.get(length, 0) + count
        return results

    def correlate_batch_columns(self, flows: FlowBatch) -> CorrelationBatch:
        """Columnar steps 4–7: correlate one :class:`FlowBatch`.

        The columnar twin of :meth:`correlate_batch`: the same unique-IP
        dedup, one batched ``lookup_ips``, and one chain walk per unique
        hit — but the lookup keys come straight from the batch's interned
        text columns, so no ``FlowRecord``/``ipaddress``/``str()`` work
        happens per flow. Counters land in :attr:`stats` exactly as the
        object path's would; the per-batch deltas also ride on the
        returned :class:`CorrelationBatch` so engines can report without
        re-deriving them. Exact-TTL mode falls back to per-record
        :meth:`process` over materialised records (sharing resolutions is
        unsound when expiry depends on each flow's own timestamp), which
        keeps the parity suite's exact-TTL case byte-identical.
        """
        n = len(flows)
        if n == 0:
            return CorrelationBatch(flows, [])
        stats = self.stats
        if self.config.exact_ttl:
            chains: List[tuple] = []
            matched = invalid = bytes_matched = 0
            before_invalid = stats.invalid
            for i in range(n):
                result = self.process(flows.record(i))
                chains.append(result.chain)
                if result.chain:
                    matched += 1
                    bytes_matched += result.flow.bytes_
            invalid = stats.invalid - before_invalid
            return CorrelationBatch(
                flows, chains, matched, invalid, sum(flows.bytes_), bytes_matched
            )

        direction = self.config.direction
        both = direction is FlowDirection.BOTH
        use_src = both or direction is FlowDirection.SOURCE
        ts_col = flows.ts
        bytes_col = flows.bytes_
        packets_col = flows.packets
        now = ts_col[0]

        # Pass 1: validity filter + primary lookup key per flow, read
        # straight off the interned text columns. When no row has a
        # negative counter — every flow decoded from the wire, since the
        # formats carry unsigned counters — the key column itself serves
        # as the (read-only) primaries list and the per-row loop is two
        # C-speed min() scans.
        keys = flows.src_ip_text if use_src else flows.dst_ip_text
        invalid = 0
        if min(bytes_col) >= 0 and min(packets_col) >= 0:
            primaries: List[Optional[str]] = keys
        else:
            primaries = [None] * n
            for i in range(n):
                if bytes_col[i] < 0 or packets_col[i] < 0:  # is_valid(), inlined
                    invalid += 1
                    continue
                primaries[i] = keys[i]

        # Pass 2: one batched deepLookUp for the unique IPs, then one
        # chain walk per unique hit, in first-appearance order (chain
        # memoisation makes walk results order-sensitive).
        if primaries is keys:
            unique = dict.fromkeys(primaries)
        else:
            unique = dict.fromkeys(text for text in primaries if text is not None)
        names = self.storage.lookup_ips(unique, now)
        chains_by_ip: dict = {}
        for text in unique:
            name = names.get(text)
            chains_by_ip[text] = tuple(self._walk_chain(name, now)) if name else ()

        fallbacks: List[Optional[str]] = []
        if both:
            # Destination fallback for flows whose source IP missed.
            dst_col = flows.dst_ip_text
            fallbacks = [None] * n
            fb_unique: dict = {}
            for i in range(n):
                text = primaries[i]
                if text is None or chains_by_ip[text]:
                    continue
                dst = dst_col[i]
                fallbacks[i] = dst
                if dst not in chains_by_ip:
                    fb_unique[dst] = None
            fb_names = self.storage.lookup_ips(fb_unique, now)
            for text in fb_unique:
                name = fb_names.get(text)
                chains_by_ip[text] = tuple(self._walk_chain(name, now)) if name else ()

        # Pass 3: the per-flow chain column and counters, flushed once.
        # bytes_in counts every row, valid or not, so it sums at C speed.
        bytes_in = sum(bytes_col)
        chains = [()] * n
        length_counts: dict = {}
        matched = unmatched = bytes_matched = 0
        for i in range(n):
            text = primaries[i]
            if text is None:
                continue
            chain = chains_by_ip[text]
            if both and not chain and fallbacks[i] is not None:
                chain = chains_by_ip[fallbacks[i]]
            if chain:
                chains[i] = chain
                matched += 1
                bytes_matched += bytes_col[i]
                length = len(chain)
                length_counts[length] = length_counts.get(length, 0) + 1
            else:
                unmatched += 1
        stats.flows_in += n
        stats.bytes_in += bytes_in
        stats.invalid += invalid
        stats.matched += matched
        stats.unmatched += unmatched
        stats.bytes_matched += bytes_matched
        chain_lengths = stats.chain_lengths
        for length, count in length_counts.items():
            chain_lengths[length] = chain_lengths.get(length, 0) + count
        return CorrelationBatch(flows, chains, matched, invalid, bytes_in, bytes_matched)

    def resolve(self, ip_text: str, now: float) -> List[str]:
        """Public Algorithm-2 resolution of one bare IP.

        Updates only the chain-walk counters, not the flow counters — the
        facade's ``service_of`` probe and other IP-only callers use this.
        """
        return self._resolve(ip_text, now)

    def _resolve(self, ip_text: str, now: float) -> List[str]:
        """IP → [name, cname...] per Algorithm 2; [] when nothing found."""
        name = self.storage.lookup_ip(ip_text, now)
        if name is None:
            return []
        return self._walk_chain(name, now)

    def _walk_chain(self, name: str, now: float) -> List[str]:
        """Follow the NAME-CNAME chain from a direct hit (Algorithm 2)."""
        chain = [name]
        seen = {name}
        loop_count = 0
        current = name
        while loop_count < self.config.cname_loop_limit:
            cname = self.storage.lookup_cname(current, now)
            self.stats.cname_steps += 1
            if cname is None:
                break
            if cname in seen:
                break  # defensive: a CNAME cycle in poisoned data
            chain.append(cname)
            seen.add(cname)
            current = cname
            loop_count += 1
        else:
            self.stats.loop_limit_hits += 1
        if len(chain) > 2 and self.config.memoize_cname_chains:
            # Step 7: "If the result is found with more than one look-up in
            # NAME-CNAME maps, we add it to NAME-CNAME_active for later use."
            self.storage.memoize_chain(chain[0], chain[-1])
            self.stats.chains_memoized += 1
        return chain
