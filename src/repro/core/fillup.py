"""FillUp processing: DNS records into the shared storage (Section 3.2).

The pure record-level logic lives in :class:`FillUpProcessor` so the
threaded engine (which wraps it in worker threads) and the simulation
engine (which calls it inline) share one implementation — any divergence
between the two engines would make the ablation comparisons meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.core.storage_adapter import DnsStorage
from repro.dns.stream import DnsRecord, records_from_message
from repro.dns.wire import DnsMessage, decode_message
from repro.util.errors import ParseError


@dataclass
class FillUpStats:
    """Counters for the DNS side of the pipeline."""

    raw_messages: int = 0
    invalid: int = 0
    records_in: int = 0
    records_stored: int = 0
    records_skipped: int = 0
    #: RRs skipped inside otherwise-valid responses for carrying an
    #: rtype/rclass outside the enums (SVCB/HTTPS/EDNS OPT). Counted
    #: only for messages that pass the response/NOERROR filter — the
    #: columnar path short-circuits rejected messages before walking
    #: their sections, and the two paths must count identically.
    records_unknown_type: int = 0


class FillUpProcessor:
    """Validates and stores DNS records (Section 3.2 steps 2–6)."""

    def __init__(self, storage: DnsStorage):
        self.storage = storage
        self.stats = FillUpStats()

    def filter_message(
        self, ts: float, payload: Union[bytes, bytearray, memoryview, DnsMessage]
    ) -> list:
        """Step 2's validity filter: wire bytes/message → stream records.

        Invalid payloads (unparseable, queries, error responses) yield an
        empty list and are counted, never raised — a malformed response
        must not take the FillUp path down.
        """
        self.stats.raw_messages += 1
        if isinstance(payload, (bytes, bytearray, memoryview)):
            try:
                # Zero-copy: the decoder reads wire bytes (or a memoryview
                # over a larger capture buffer) in place.
                message = decode_message(payload)
            except ParseError:
                self.stats.invalid += 1
                return []
        else:
            message = payload
        records = records_from_message(ts, message)
        if message.is_response and message.header.rcode == 0:
            # Same gate the columnar decoder applies: rejected messages
            # (queries, error rcodes) never have their sections walked
            # there, so their unknown-RR counts must not surface here
            # either.
            self.stats.records_unknown_type += message.unknown_records
        if not records:
            self.stats.invalid += 1
        return records

    def process(self, record: DnsRecord) -> bool:
        """Steps 4–6: label and store one record; True when stored.

        Only A/AAAA and CNAME records reach the hashmaps; anything else is
        skipped (the FillUp queue normally only carries the former).
        """
        self.stats.records_in += 1
        if not (record.is_address or record.is_cname):
            self.stats.records_skipped += 1
            return False
        self.storage.add_record(record)
        self.stats.records_stored += 1
        return True

    def process_many(self, records: Iterable[DnsRecord]) -> int:
        stored = 0
        for record in records:
            if self.process(record):
                stored += 1
        return stored

    def process_batch(self, records: Iterable[DnsRecord]) -> int:
        """Batched steps 4–6: one storage round-trip for many records.

        Equivalent to calling :meth:`process` per record (same counters,
        same stored set) but with the per-record lock acquisitions and the
        rotation check amortised over the batch via
        :meth:`DnsStorage.add_many`. Returns how many records were stored.
        """
        batch = records if isinstance(records, list) else list(records)
        if not batch:
            return 0
        storable = [r for r in batch if r.is_address or r.is_cname]
        self.storage.add_many(storable)
        self.stats.records_in += len(batch)
        self.stats.records_stored += len(storable)
        self.stats.records_skipped += len(batch) - len(storable)
        return len(storable)

    def process_columns(self, batch) -> int:
        """The columnar fill path: one :class:`~repro.dns.columnar.DnsBatch`
        straight into storage.

        Equivalent to :meth:`filter_message` per payload followed by one
        :meth:`process_batch` — same counters, same stored set — but the
        batch already carries the per-message accounting from
        :func:`repro.dns.columnar.decode_fill_columns` and every row is
        storable by construction (the decoder only emits A/AAAA/CNAME
        answers). Returns how many records were stored.
        """
        self.stats.raw_messages += batch.messages
        self.stats.invalid += batch.invalid
        self.stats.records_unknown_type += batch.unknown_records
        stored = len(batch)
        if stored:
            self.storage.add_many_columns(batch)
        self.stats.records_in += stored
        self.stats.records_stored += stored
        return stored
