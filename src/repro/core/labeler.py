"""Record labelling: which split a record belongs to.

Section 3.2 step 4: the FillUp worker "labels [the record] based on the IP
address. This label will be used as a hashmap index later on." The same
label function must be used by LookUp workers on flow source IPs so both
sides agree on the split. CNAME records carry no IP, so they are labelled
by a hash of the *answer name* — and lookups of a name use the same hash,
keeping fill and lookup consistent (the property Algorithm 1/2's shared
``label()`` notation implies).
"""

from __future__ import annotations

import ipaddress
from functools import lru_cache
from typing import Union

IPLike = Union[str, ipaddress.IPv4Address, ipaddress.IPv6Address]


def _fnv1a_bytes(data: bytes) -> int:
    h = 0x811C9DC5
    for byte in data:
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


@lru_cache(maxsize=1 << 16)
def ip_label(ip: IPLike) -> int:
    """Label an IP address (A/AAAA records and flow lookup addresses).

    Hashes the packed address bytes so IPv4 and IPv6 both spread evenly —
    a last-octet scheme would skew badly for CDN pools that allocate from
    a few /24s (an ablation in ``benchmarks`` quantifies this).

    Cached (bounded LRU): fill and lookup relabel the same hot addresses
    millions of times, and the per-byte FNV loop is pure Python.
    """
    if not isinstance(ip, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        ip = ipaddress.ip_address(ip)
    return _fnv1a_bytes(ip.packed)


@lru_cache(maxsize=1 << 16)
def name_label(name: str) -> int:
    """Label a domain name (CNAME records and chain lookups). Cached."""
    return _fnv1a_bytes(name.encode("utf-8", errors="surrogateescape"))


def last_octet_label(ip: IPLike) -> int:
    """Alternative labeler: the address's final byte.

    Cheaper than hashing but skewed when providers number hosts densely;
    kept as an ablation comparator, not used by the default pipeline.
    """
    if not isinstance(ip, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        ip = ipaddress.ip_address(ip)
    return ip.packed[-1]
