"""DnsStorage: one facade over the rotating store and the exact-TTL store.

The FillUp and LookUp workers don't care which expiry policy is in force;
they fill and query "the internal shared storage" (Section 3.1). This
adapter owns the IP-NAME and NAME-CNAME banks for whichever policy the
config selects, so the workers and both engines share one code path and
the Appendix-A.8 exact-TTL experiment swaps in without touching them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.config import FlowDNSConfig
from repro.core.labeler import ip_label, name_label
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.storage.exact_ttl import ExactTtlStore
from repro.storage.rotating import StoreBank

#: The raw wire value the columnar rtype column stores for CNAME rows.
_CNAME_TYPE = int(RRType.CNAME)


class DnsStorage:
    """The internal shared storage both worker kinds touch."""

    def __init__(self, config: FlowDNSConfig):
        self.config = config
        splits = config.effective_num_split
        if config.exact_ttl:
            self._ip_exact = ExactTtlStore(
                num_splits=splits,
                shard_count=config.map_shard_count,
                sweep_interval=config.exact_ttl_sweep_interval,
                max_entries=config.max_entries_per_map,
            )
            self._cname_exact = ExactTtlStore(
                num_splits=splits,
                shard_count=config.map_shard_count,
                sweep_interval=config.exact_ttl_sweep_interval,
                max_entries=config.max_entries_per_map,
            )
            self._ip_bank = None
            self._cname_bank = None
        else:
            self._ip_bank = StoreBank(
                clear_up_interval=config.a_clear_up_interval,
                num_splits=splits,
                shard_count=config.map_shard_count,
                rotation_enabled=config.rotation_enabled,
                clear_up_enabled=config.clear_up_enabled,
                long_enabled=config.long_enabled,
                max_entries=config.max_entries_per_map,
            )
            self._cname_bank = StoreBank(
                clear_up_interval=config.c_clear_up_interval,
                num_splits=splits,
                shard_count=config.map_shard_count,
                rotation_enabled=config.rotation_enabled,
                clear_up_enabled=config.clear_up_enabled,
                long_enabled=config.long_enabled,
                max_entries=config.max_entries_per_map,
            )
            self._ip_exact = None
            self._cname_exact = None

    # --- fill side -----------------------------------------------------------

    def add_record(self, record: DnsRecord) -> None:
        """Insert one DNS stream record (Algorithm 1's body)."""
        if record.is_address:
            label = ip_label(record.answer)
            if self._ip_exact is not None:
                self._ip_exact.put(label, record.answer, record.query, record.ttl, record.ts)
            else:
                self._ip_bank.put(label, record.answer, record.query, record.ttl, record.ts)
        elif record.is_cname:
            label = name_label(record.answer)
            if self._cname_exact is not None:
                self._cname_exact.put(label, record.answer, record.query, record.ttl, record.ts)
            else:
                self._cname_bank.put(label, record.answer, record.query, record.ttl, record.ts)
        # Other record types were filtered before the FillUp queue.

    def add_many(self, records: Iterable[DnsRecord]) -> None:
        """Batched Algorithm-1 insert (the engines' fast path).

        For the rotating store this costs one rotation check per bank and
        one lock acquisition per touched map shard for the whole batch;
        the exact-TTL store batches the same way (its expiry sweeps are
        timestamp-driven through :meth:`tick`, never by puts).
        """
        ip_entries = []
        cname_entries = []
        for record in records:
            if record.is_address:
                ip_entries.append(
                    (ip_label(record.answer), record.answer, record.query,
                     record.ttl, record.ts)
                )
            elif record.is_cname:
                cname_entries.append(
                    (name_label(record.answer), record.answer, record.query,
                     record.ttl, record.ts)
                )
        if self._ip_exact is not None:
            if ip_entries:
                self._ip_exact.put_many(ip_entries)
            if cname_entries:
                self._cname_exact.put_many(cname_entries)
            return
        if ip_entries:
            self._ip_bank.put_many(ip_entries)
        if cname_entries:
            self._cname_bank.put_many(cname_entries)

    def add_many_columns(self, batch) -> None:
        """Batched Algorithm-1 insert straight from DnsBatch columns.

        The columnar twin of :meth:`add_many`: same entry tuples, same
        bank routing (including the exact-TTL branch), same one-lock-
        round-trip-per-shard batching via ``put_many`` — but reading
        parallel columns instead of ``DnsRecord`` attributes/properties.
        Labels come from the same cached FNV hashers, and because the
        decoder interned every name and IP text, the label caches and
        map-key hashing share objects with the reference path.
        """
        names = batch.name
        rtypes = batch.rtype
        ttls = batch.ttl
        answers = batch.rdata_text
        stamps = batch.ts
        cname_type = _CNAME_TYPE
        ip_entries = []
        cname_entries = []
        for i in range(len(names)):
            answer = answers[i]
            if rtypes[i] == cname_type:
                cname_entries.append(
                    (name_label(answer), answer, names[i], ttls[i], stamps[i])
                )
            else:
                ip_entries.append(
                    (ip_label(answer), answer, names[i], ttls[i], stamps[i])
                )
        if self._ip_exact is not None:
            if ip_entries:
                self._ip_exact.put_many(ip_entries)
            if cname_entries:
                self._cname_exact.put_many(cname_entries)
            return
        if ip_entries:
            self._ip_bank.put_many(ip_entries)
        if cname_entries:
            self._cname_bank.put_many(cname_entries)

    # --- lookup side ----------------------------------------------------------

    def lookup_ips(self, ip_texts: Iterable[str], now: float) -> Dict[str, str]:
        """Batched first stage of Algorithm 2 over unique IPs.

        Returns ``{ip: queried name}`` for the hits; missing IPs are
        absent. One lock acquisition per map shard per tier instead of one
        per IP.
        """
        if self._ip_exact is not None:
            out: Dict[str, str] = {}
            for ip_text in ip_texts:
                name = self.lookup_ip(ip_text, now)
                if name is not None:
                    out[ip_text] = name
            return out
        return self._ip_bank.deep_lookup_many(
            (ip_label(ip_text), ip_text) for ip_text in ip_texts
        )

    def lookup_ip(self, ip_text: str, now: float) -> Optional[str]:
        """IP → queried name (first stage of Algorithm 2)."""
        label = ip_label(ip_text)
        if self._ip_exact is not None:
            return self._ip_exact.lookup(label, ip_text, now)
        value, _tier = self._ip_bank.deep_lookup(label, ip_text)
        return value

    def lookup_cname(self, name: str, now: float) -> Optional[str]:
        """Name → the name that aliased to it (one CNAME chain step)."""
        label = name_label(name)
        if self._cname_exact is not None:
            return self._cname_exact.lookup(label, name, now)
        value, _tier = self._cname_bank.deep_lookup(label, name)
        return value

    def memoize_chain(self, name: str, final: str) -> None:
        """Step 7: cache a multi-hop chain result for later lookups."""
        if self._cname_exact is not None:
            return  # the exact-TTL variant has no safe TTL for a synthetic entry
        self._cname_bank.put_active(name_label(name), name, final)

    # --- maintenance ------------------------------------------------------------

    def tick(self, ts: float) -> int:
        """Time-driven maintenance; returns entries scanned (cost driver).

        For the rotating store this is the record-timestamp clear-up check
        (cheap); for the exact-TTL store it is the periodic full-map sweep
        whose cost Appendix A.8 blames for the meltdown.
        """
        if self._ip_exact is not None:
            scanned = self._ip_exact.maybe_sweep(ts)
            scanned += self._cname_exact.maybe_sweep(ts)
            return scanned
        self._ip_bank.maybe_clear_up(ts)
        self._cname_bank.maybe_clear_up(ts)
        return 0

    # --- accounting ---------------------------------------------------------------

    def total_entries(self) -> int:
        if self._ip_exact is not None:
            return self._ip_exact.total_entries() + self._cname_exact.total_entries()
        return self._ip_bank.total_entries() + self._cname_bank.total_entries()

    def entry_counts(self) -> Dict[str, Dict[str, int]]:
        if self._ip_exact is not None:
            return {
                "ip_name": self._ip_exact.entry_counts(),
                "name_cname": self._cname_exact.entry_counts(),
            }
        return {
            "ip_name": self._ip_bank.entry_counts(),
            "name_cname": self._cname_bank.entry_counts(),
        }

    def contended_acquisitions(self) -> int:
        if self._ip_exact is not None:
            return (
                self._ip_exact.contended_acquisitions()
                + self._cname_exact.contended_acquisitions()
            )
        return (
            self._ip_bank.contended_acquisitions()
            + self._cname_bank.contended_acquisitions()
        )

    def evictions(self) -> int:
        """Entries dropped by the max_entries memory bound, both banks."""
        if self._ip_exact is not None:
            return self._ip_exact.stats.evictions + self._cname_exact.stats.evictions
        return self._ip_bank.stats.evictions + self._cname_bank.stats.evictions

    def overwrites(self) -> int:
        """IP-key overwrites (accuracy-relevant events; 0 for exact-TTL)."""
        if self._ip_bank is not None:
            return self._ip_bank.stats.overwrites
        return 0

    @property
    def ip_bank(self) -> Optional[StoreBank]:
        return self._ip_bank

    @property
    def cname_bank(self) -> Optional[StoreBank]:
        return self._cname_bank
