"""AsyncEngine: the live asyncio FlowDNS pipeline with socket ingest.

The paper's deployed system is a *live* service: routers export
NetFlow/IPFIX over UDP and the ISP resolvers ship DNS responses to the
collectors over TCP, continuously, while correlation keeps up in real
time (Sections 2–3). This engine reproduces that shape inside one
asyncio event loop:

* a :class:`UdpFlowIngest` binds a nonblocking UDP socket registered
  with the loop via ``add_reader``; one readiness wakeup drains *many*
  datagrams with ``recv_into`` into a reused buffer (``recvmmsg``-style
  bulk reads) instead of paying one callback per packet, and the
  callback does **no decoding** — raw datagrams go straight to the
  bounded buffer, and the engine's lookup lane batch-decodes them via
  :meth:`FlowCollector.ingest_columns` exactly like the offline path,
  so live UDP ingest rides the columnar fast lane off the event loop;
* a :class:`TcpDnsIngest` runs an asyncio server speaking RFC 1035
  §4.2.2 framing, reassembling messages with :class:`TcpFrameDecoder`
  under arbitrary chunk boundaries and timestamping them on arrival;
* both feed bounded buffers whose overflow *drops and counts* — the
  paper's "streams start to drop data" loss point, surfaced per source
  under :attr:`EngineReport.ingest` and in ``overall_loss_rate``;
* plain iterables (records, wire tuples, datagrams, batches) remain
  first-class sources, pumped cooperatively, so the engine also runs
  offline corpora — that is what the parity suite compares against the
  threaded engine;
* any object implementing the ingest-source protocol's live hooks
  (``connect_buffer``/``start``/``stop``; see
  :mod:`repro.core.pipeline`) can serve as a live source — e.g. the
  multi-process :class:`repro.core.ingest.ReuseportUdpIngest`, whose
  workers ship ready-decoded :class:`FlowBatch` items.

The lane bodies are :mod:`repro.core.pipeline`'s :class:`FillLane` and
:class:`LookupLane`, identical to the threaded and sharded engines';
this module owns only the asyncio *scheduling policy*: one pump or
socket server per source, one lane task per buffer, one write task, and
graceful drain-then-shutdown — :meth:`AsyncEngine.request_stop` (safe
from any thread or a signal handler) stops the listeners, every buffered
item still flows through its lane, and the report is assembled only
after the write sink has drained.
"""

from __future__ import annotations

import asyncio
import os
import socket
import sys
import threading
import time
from collections import deque
from typing import Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.core.config import (
    DEFAULT_RECV_BUFFER_BYTES,
    EngineConfig,
    FlowDNSConfig,
)
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.metrics import EngineReport, IngestStats
from repro.core.pipeline import (
    FillLane,
    LookupLane,
    buffer_loss_rate,
    buffer_loss_warning,
    collect_ingest,
    is_live_source,
    merge_summaries,
    source_failure_warning,
    stack_summary,
)
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import DiscardSink, WriteWorker
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.dns.tcp import MAX_MESSAGE_SIZE, TcpFrameDecoder
from repro.netflow.collector import FlowCollector
from repro.netflow.udp import MAX_DATAGRAM, bind_udp_socket, set_recv_buffer
from repro.streams.buffer import BufferStats
from repro.util.errors import ParseError

#: How many items an iterable pump moves before yielding to the loop.
_PUMP_CHUNK = 512


class AsyncBuffer:
    """A bounded FIFO for one event loop, with drop accounting.

    The asyncio analogue of :class:`repro.streams.buffer.BoundedBuffer`:
    single-loop, so no locks — just events. Socket callbacks offer items
    with the non-blocking :meth:`try_put` (overflow drops the incoming
    item and counts it, the paper's loss semantics); iterable pumps use
    the awaitable :meth:`put`, which applies backpressure instead of
    dropping because an offline replay has no real-time deadline.
    """

    def __init__(self, capacity: int, name: str = "buffer"):
        self.capacity = capacity
        self.name = name
        self.stats = BufferStats()
        self._items: deque = deque()
        self._closed = False
        self._not_empty = asyncio.Event()
        self._not_full = asyncio.Event()
        self._not_full.set()

    def try_put(self, item) -> bool:
        """Offer one item; False (and a counted drop) when full or closed."""
        stats = self.stats
        stats.offered += 1
        if self._closed or len(self._items) >= self.capacity:
            # A put after close would be silently lost (the lane task has
            # already drained and exited), so it counts as a drop too.
            stats.dropped += 1
            return False
        self._items.append(item)
        stats.accepted += 1
        if len(self._items) > stats.high_watermark:
            stats.high_watermark = len(self._items)
        self._not_empty.set()
        return True

    async def put(self, item) -> None:
        """Backpressuring put: wait for space instead of dropping."""
        while len(self._items) >= self.capacity and not self._closed:
            self._not_full.clear()
            await self._not_full.wait()
        self.try_put(item)

    async def get_many(self, max_items: int) -> List:
        """Wait for at least one item; drain up to ``max_items``.

        Returns an empty list only when the buffer is closed and drained
        — the lane tasks' termination signal.
        """
        while not self._items:
            if self._closed:
                return []
            self._not_empty.clear()
            await self._not_empty.wait()
        items = self._items
        n = min(max_items, len(items))
        batch = [items.popleft() for _ in range(n)]
        self.stats.popped += n
        self._not_full.set()
        return batch

    def close(self) -> None:
        """Mark the producer side done; consumers drain then stop."""
        self._closed = True
        self._not_empty.set()
        self._not_full.set()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)


class UdpFlowIngest:
    """Live NetFlow/IPFIX-over-UDP source for the async engine.

    The batched socket layer: ``(host, port)`` is bound as a
    *nonblocking* UDP socket registered with the event loop through
    ``add_reader``, and one readiness wakeup drains up to
    ``max_recv_per_wakeup`` datagrams via ``recv_into`` on a reused
    buffer — the ``recvmmsg`` shape, minus the syscall CPython does not
    expose. The receive path does **no decoding**: each raw datagram is
    offered to the engine's bounded buffer (overflow drops it and counts
    it in :attr:`ingest_stats` — backpressure by loss, like the paper's
    collectors under burst), and the engine's lookup lane batch-decodes
    through :attr:`collector` off the hot callback. Malformed datagrams
    are therefore charged to :attr:`ingest_stats` *by the lane* at
    decode time, against the same collector counters as before.

    The achieved kernel receive buffer (``SO_RCVBUF`` after the
    best-effort request — the kernel clamps to rmem_max) is recorded in
    ``ingest_stats.recv_buffer_bytes``: export bursts ride out decode
    latency in that buffer, so when it is silently small (CI hosts),
    drop diagnostics must show it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        collector: Optional[FlowCollector] = None,
        capacity: Optional[int] = None,
        recv_buffer_bytes: int = DEFAULT_RECV_BUFFER_BYTES,
        name: Optional[str] = None,
        capture=None,
        max_recv_per_wakeup: int = 256,
    ):
        self.host = host
        self.port = port
        #: The lane-side decoder: the engine builds this source's
        #: :class:`~repro.core.pipeline.LookupLane` around it, so
        #: template state and malformed counting live with the source.
        self.collector = collector if collector is not None else FlowCollector()
        #: Overrides the engine's stream_buffer_capacity when set.
        self.capacity = capacity
        #: Optional :class:`repro.replay.capture.CaptureWriter` tee: every
        #: datagram is recorded as received, before decode — malformed
        #: input included, so a replay reproduces those counters too.
        self.capture = capture
        #: Requested SO_RCVBUF (best-effort; see class docstring).
        self.recv_buffer_bytes = recv_buffer_bytes
        #: Datagrams drained per readiness wakeup. Bounded so a sustained
        #: flood cannot starve the decode lane sharing the loop.
        self.max_recv_per_wakeup = max_recv_per_wakeup
        self.ingest_stats = IngestStats(name=name or f"udp[{host}:{port}]")
        self.address: Optional[Tuple[str, int]] = None
        self._buffer: Optional[AsyncBuffer] = None
        self._sock: Optional[socket.socket] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._recv_view = memoryview(bytearray(MAX_DATAGRAM))
        self._ready = threading.Event()

    def connect_buffer(self, buffer: AsyncBuffer) -> None:
        """Attach the engine buffer raw datagrams are offered to."""
        self._buffer = buffer

    def on_datagram(self, data: bytes) -> None:
        """Offer one raw datagram to the buffer (no decode here)."""
        stats = self.ingest_stats
        stats.received += 1
        stats.bytes_in += len(data)
        if self.capture is not None:
            self.capture.record_flow(data)
        if self._buffer.try_put(data):
            stats.accepted += 1
        else:
            stats.dropped += 1

    def _on_readable(self) -> None:
        """Drain the socket: many ``recv_into`` calls per loop wakeup."""
        sock = self._sock
        if sock is None:  # racing close(); the reader is being removed
            return
        view = self._recv_view
        stats = self.ingest_stats
        buffer = self._buffer
        capture = self.capture
        for _ in range(self.max_recv_per_wakeup):
            try:
                n = sock.recv_into(view)
            except (BlockingIOError, InterruptedError):
                return  # kernel queue drained
            except OSError:
                return  # closing under our feet: stop() owns cleanup
            data = bytes(view[:n])
            stats.received += 1
            stats.bytes_in += n
            if capture is not None:
                capture.record_flow(data)
            if buffer.try_put(data):
                stats.accepted += 1
            else:
                stats.dropped += 1

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        sock = bind_udp_socket((self.host, self.port))
        sock.setblocking(False)
        self.ingest_stats.recv_buffer_bytes = set_recv_buffer(
            sock, self.recv_buffer_bytes
        )
        self._sock = sock
        self._loop = loop
        self.address = sock.getsockname()[:2]
        if self.ingest_stats.name == f"udp[{self.host}:{self.port}]":
            self.ingest_stats.name = f"udp[{self.address[0]}:{self.address[1]}]"
        loop.add_reader(sock.fileno(), self._on_readable)
        self._ready.set()

    async def stop(self) -> None:
        """Stop receiving; buffered datagrams still drain through the lane."""
        self.close()

    def close(self) -> None:
        """Idempotent teardown (the ingest-source protocol's close())."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        if self._loop is not None:
            try:
                self._loop.remove_reader(sock.fileno())
            except (RuntimeError, ValueError, OSError):
                pass  # loop already closed; nothing left to wake
        sock.close()

    def wait_ready(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Block (from another thread) until bound; returns the address."""
        if not self._ready.wait(timeout):
            raise TimeoutError("UDP ingest did not bind in time")
        return self.address


class TcpDnsIngest:
    """Live DNS-over-TCP source for the async engine.

    An asyncio server on ``(host, port)``; every connection gets its own
    :class:`TcpFrameDecoder` reassembling length-prefixed messages from
    arbitrary chunk boundaries. Complete messages are stamped with
    ``clock()`` on arrival (the collector's receive time, like the
    paper's live deployment) and offered to the bounded buffer as
    ``(ts, wire_bytes)`` items — the fill lane's standard tuple form.
    A frame claiming more than ``max_message_size`` bytes means the
    stream desynchronised: the connection is dropped and counted, never
    raised into the engine.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        clock=time.time,
        capacity: Optional[int] = None,
        max_message_size: int = MAX_MESSAGE_SIZE,
        name: Optional[str] = None,
        capture=None,
    ):
        self.host = host
        self.port = port
        self.clock = clock
        self.capacity = capacity
        self.max_message_size = max_message_size
        #: Optional :class:`repro.replay.capture.CaptureWriter` tee. Each
        #: reassembled message is recorded with the *same* arrival stamp
        #: the fill lane gets, so a replayed capture stores records at
        #: identical timestamps to the live session.
        self.capture = capture
        self.ingest_stats = IngestStats(name=name or f"tcp-dns[{host}:{port}]")
        self.address: Optional[Tuple[str, int]] = None
        self._buffer: Optional[AsyncBuffer] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = threading.Event()
        self._connections: set = set()
        self._handler_tasks: set = set()

    def connect_buffer(self, buffer: AsyncBuffer) -> None:
        self._buffer = buffer

    def feed_chunk(self, decoder: TcpFrameDecoder, chunk: bytes) -> bool:
        """Run one received chunk through a connection's decoder.

        Returns False when the stream is corrupt (oversized frame) and
        the connection must be dropped. Shared by the live handler and
        the deterministic unit tests.
        """
        stats = self.ingest_stats
        empty_before = decoder.empty_frames
        try:
            messages = decoder.feed(chunk)
        except ParseError:
            stats.malformed += 1 + (decoder.empty_frames - empty_before)
            return False
        # Zero-length frames carry no parseable message; charge them as
        # malformed so the frame-level accounting still sees them.
        stats.malformed += decoder.empty_frames - empty_before
        ts = self.clock()
        for wire in messages:
            stats.received += 1
            stats.bytes_in += len(wire)
            if self.capture is not None:
                self.capture.record_dns(wire, ts=ts)
            if self._buffer.try_put((ts, wire)):
                stats.accepted += 1
            else:
                stats.dropped += 1
        return True

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handler_tasks.add(task)
        self._connections.add(writer)
        decoder = TcpFrameDecoder(max_message_size=self.max_message_size)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                if not self.feed_chunk(decoder, chunk):
                    return  # corrupt stream: drop the connection
            try:
                decoder.close()
            except ParseError:
                # Truncated final frame: counted like any malformed input.
                self.ingest_stats.malformed += 1
        finally:
            self._connections.discard(writer)
            self._handler_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        if self.ingest_stats.name == f"tcp-dns[{self.host}:{self.port}]":
            self.ingest_stats.name = f"tcp-dns[{self.address[0]}:{self.address[1]}]"
        self._ready.set()

    async def stop(self) -> None:
        """Stop accepting and close live connections (graceful drain:
        messages already buffered still flow through the fill lane)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        # Await the connection handlers before the engine closes the
        # buffer: a handler woken by the close above may still hold
        # already-received bytes, and those messages must reach the
        # buffer while the fill lane is alive — otherwise they would be
        # counted `accepted` yet never processed.
        if self._handler_tasks:
            await asyncio.gather(*list(self._handler_tasks), return_exceptions=True)

    def close(self) -> None:
        """Idempotent teardown (the ingest-source protocol's close()).

        Best-effort from outside the loop: closes the listening server
        socket. The graceful in-loop path — which also awaits live
        connection handlers — is ``await stop()``.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
        for writer in list(self._connections):
            writer.close()

    def wait_ready(self, timeout: float = 10.0) -> Tuple[str, int]:
        if not self._ready.wait(timeout):
            raise TimeoutError("TCP ingest did not start in time")
        return self.address


#: The built-in live socket listeners (kept for import compatibility;
#: the engine itself duck-types via
#: :func:`repro.core.pipeline.is_live_source`, so any object with the
#: protocol's live hooks — e.g. ReuseportUdpIngest — works as a source).
LIVE_INGEST_TYPES = (UdpFlowIngest, TcpDnsIngest)


class AsyncEngine:
    """Run FlowDNS inside one asyncio loop, with live socket sources.

    ``run()`` (or ``await run_async()``) accepts the same source mix the
    threaded engine does — iterables of records / wire tuples / export
    datagrams / batches — plus :class:`TcpDnsIngest` (DNS sources) and
    :class:`UdpFlowIngest` (flow sources) for live traffic. A run with
    only finite sources terminates when they drain; a run with live
    listeners keeps serving until :meth:`request_stop`, then drains
    every buffer through its lane before reporting.
    """

    def __init__(
        self,
        config: "Optional[FlowDNSConfig | EngineConfig]" = None,
        sink: Optional[TextIO] = None,
    ):
        self.engine_config = EngineConfig.of(config)
        self.config = self.engine_config.flowdns
        self.storage = DnsStorage(self.config)
        self.sink = sink if sink is not None else DiscardSink()
        #: Created per run, *after* the live listeners bind: the first
        #: thing a WriteWorker does is write the TSV header, and a sink
        #: backed by a real file must stay untouched when the session
        #: dies at bind time.
        self.writer: Optional[WriteWorker] = None
        self._fillup_processors: List[FillUpProcessor] = []
        self._lookup_processors: List[LookUpProcessor] = []
        #: Decode collectors for *finite* flow sources (offline/replay):
        #: their malformed counts are not charged to any ingest stats, so
        #: the report surfaces them as flow_decode_errors. Live sources'
        #: collectors are excluded — their decode failures already land
        #: in the source's own IngestStats via the lane.
        self._flow_collectors: List[FlowCollector] = []
        #: Ingress stream buffers only (the write buffer is not loss-
        #: accounted and lives in run_async's scope).
        self._buffers: List[AsyncBuffer] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stop_pending = False
        #: True once any run has begun: a stop request with no loop to
        #: deliver to latches only before the first run; afterwards it
        #: targets a run that already ended and is dropped.
        self._started = False
        self._fill_finite_done = False
        #: ``(buffer_name, exception)`` per source that raised mid-pump.
        self._source_errors: List[Tuple[str, BaseException]] = []
        # Service-lifecycle state (serve --snapshot / --stats-interval /
        # --metrics-port); zeroed per run, readable mid-run.
        self.snapshots_written = 0
        self.restored_entries = 0
        self.metrics_address: Optional[Tuple[str, int]] = None
        self._last_snapshot_monotonic: Optional[float] = None
        self._snapshot_failed = False
        self._service_warnings: List[str] = []
        self._run_sources: List = []

    # --- cross-thread control & observability ---------------------------------

    def request_stop(self) -> None:
        """Begin graceful shutdown; callable from any thread or a signal
        handler, any number of times, at any point in the run's life.

        Idempotent by construction: before the first run exists the
        request is latched (``run_async`` honours it at startup, then
        clears the latch); during a run the stop event is (re-)set,
        which is a no-op once set; and a request arriving after a run
        completed — or racing its completion, the loop closing between
        the ``self._loop`` read and the threadsafe call — is dropped,
        because a finished run needs no stopping (latching would
        silently truncate a reused engine's next run at startup)."""
        loop = self._loop
        if loop is None or self._stop_event is None:
            if not self._started:
                self._stop_pending = True
            return
        try:
            loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            # The loop shut down under us: the run is already over, so
            # the request is dropped — deliberately NOT latched, or a
            # reused engine's next run would stop itself at startup.
            pass

    @property
    def dns_records_seen(self) -> int:
        """Records accepted by the fill lane so far (poll-safe)."""
        return sum(p.stats.records_in for p in self._fillup_processors)

    @property
    def flows_seen(self) -> int:
        """Flows correlated by the lookup lane so far (poll-safe)."""
        return sum(p.stats.flows_in for p in self._lookup_processors)

    @property
    def fillup_complete(self) -> bool:
        """True once every *finite* DNS source has drained through the
        fill lane (live DNS listeners never 'complete' until stop)."""
        return self._fill_finite_done

    def snapshot_age(self) -> float:
        """Seconds since the last snapshot write this run (-1: none yet)."""
        if self._last_snapshot_monotonic is None:
            return -1.0
        return time.monotonic() - self._last_snapshot_monotonic

    # --- service lifecycle ------------------------------------------------

    def _restore_on_start(self) -> None:
        """Load the snapshot file into the fresh per-run storage, if any.

        Degrades gracefully by design: a missing file is a cold start, a
        corrupt or config-mismatched snapshot warns and starts empty
        (the restore is all-or-nothing, so a failed load leaves the
        fresh storage untouched) — a service must come up either way.
        """
        path = self.engine_config.snapshot_path
        if not path or not os.path.exists(path):
            return
        try:
            self.restored_entries = load_snapshot(self.storage, path)
        except (ParseError, OSError) as exc:
            self._service_warnings.append(
                f"snapshot restore from {path} failed ({exc}); starting empty"
            )

    async def _write_snapshot(self, loop: asyncio.AbstractEventLoop, path: str) -> None:
        """One crash-safe snapshot write, off-loop.

        ``save_snapshot`` reads shard-consistent map snapshots and does
        file I/O — both safe and desirable off the event loop, so the
        executor hop keeps the lanes serving while the state is dumped.
        """
        try:
            await loop.run_in_executor(None, save_snapshot, self.storage, path)
            self.snapshots_written += 1
            self._last_snapshot_monotonic = time.monotonic()
            self._snapshot_failed = False
        except (ParseError, OSError) as exc:
            if not self._snapshot_failed:  # warn once per failure streak
                self._service_warnings.append(
                    f"snapshot write to {path} failed: {exc}"
                )
            self._snapshot_failed = True

    async def _snapshot_task(self) -> None:
        loop = asyncio.get_running_loop()
        interval = self.engine_config.snapshot_interval
        path = self.engine_config.snapshot_path
        while True:
            await asyncio.sleep(interval)
            await self._write_snapshot(loop, path)

    def _stats_line(self) -> str:
        storage = self.storage
        restarts = sum(
            int(getattr(s, "restarts", 0) or 0) for s in self._run_sources
        )
        dropped = sum(b.stats.dropped for b in self._buffers)
        age = self.snapshot_age()
        age_text = f"{age:.0f}s" if age >= 0 else "n/a"
        return (
            f"[flowdns] dns={self.dns_records_seen} flows={self.flows_seen} "
            f"entries={storage.total_entries()} "
            f"evictions={storage.evictions()} dropped={dropped} "
            f"worker_restarts={restarts} snapshots={self.snapshots_written} "
            f"snapshot_age={age_text}"
        )

    async def _stats_task(self) -> None:
        interval = self.engine_config.stats_interval
        while True:
            await asyncio.sleep(interval)
            print(self._stats_line(), file=sys.stderr, flush=True)

    # --- scheduling policy ----------------------------------------------------

    async def _pump(self, source: Iterable, buffer: AsyncBuffer) -> None:
        """Move a finite iterable into its buffer, cooperatively.

        A source that raises mid-stream (a truncated capture file, a
        corrupt export) is recorded — the buffer still closes, everything
        pumped before the failure still drains through its lane, and the
        failure surfaces in :attr:`EngineReport.warnings` instead of
        aborting the run.
        """
        count = 0
        try:
            for item in source:
                await buffer.put(item)
                count += 1
                if count % _PUMP_CHUNK == 0:
                    await asyncio.sleep(0)
        except Exception as exc:
            self._source_errors.append((buffer.name, exc))
        finally:
            buffer.close()

    async def _fill_task(self, buffer: AsyncBuffer, lane: FillLane) -> None:
        batch_size = self.config.engine_batch_size
        while True:
            items = await buffer.get_many(batch_size)
            if not items:
                return
            lane.process_items(items)
            await asyncio.sleep(0)  # let receivers breathe between batches

    async def _lookup_task(
        self, buffer: AsyncBuffer, lane: LookupLane, write_buffer: AsyncBuffer
    ) -> None:
        batch_size = self.config.engine_batch_size
        loop = asyncio.get_running_loop()
        while True:
            items = await buffer.get_many(batch_size)
            if not items:
                return
            correlated = lane.correlate_items(items)
            if correlated is not None:
                await write_buffer.put((correlated, loop.time()))
            await asyncio.sleep(0)

    async def _write_task(self, write_buffer: AsyncBuffer) -> None:
        batch_size = self.config.engine_batch_size
        loop = asyncio.get_running_loop()
        while True:
            items = await write_buffer.get_many(batch_size)
            if not items:
                return
            now = loop.time()
            for correlated, created in items:
                self.writer.write_batch(correlated, delay=now - created)

    # --- orchestration --------------------------------------------------------

    def run(
        self,
        dns_sources: Sequence,
        flow_sources: Sequence,
        dns_first: bool = False,
    ) -> EngineReport:
        """Synchronous wrapper: run the pipeline in a fresh event loop."""
        return asyncio.run(self.run_async(dns_sources, flow_sources, dns_first))

    async def run_async(
        self,
        dns_sources: Sequence,
        flow_sources: Sequence,
        dns_first: bool = False,
    ) -> EngineReport:
        """Run until every finite source drains — and, when live
        listeners are present, until :meth:`request_stop` — then drain
        and report.

        ``dns_first=True`` holds flow pumping back until every *finite*
        DNS source has been stored (the deterministic offline-replay
        barrier; FIFO buffers make storage ordering exact). Live DNS
        listeners are exempt — a service cannot wait for an endless
        stream to finish.
        """
        cfg = self.config
        loop = asyncio.get_running_loop()
        # Fresh event BEFORE the loop is published: a request_stop racing
        # this startup must never pair the new loop with a previous run's
        # (already-set) event, which would silently lose the stop.
        self._stop_event = asyncio.Event()
        self._loop = loop
        if self._stop_pending:
            self._stop_event.set()
            # The latch is consumed by this run; a later run of the same
            # engine starts fresh.
            self._stop_pending = False
        self._started = True
        self._fill_finite_done = False
        self._source_errors = []
        # Per-run state: a reused engine must not fold the previous
        # run's processors, stored records, or writer stats into this
        # run's report.
        self._fillup_processors = []
        self._lookup_processors = []
        self._flow_collectors = []
        self.storage = DnsStorage(cfg)
        self.snapshots_written = 0
        self.restored_entries = 0
        self.metrics_address = None
        self._last_snapshot_monotonic = None
        self._snapshot_failed = False
        self._service_warnings = []
        self._run_sources = list(dns_sources) + list(flow_sources)
        self._restore_on_start()

        live_ingests = []
        lane_tasks: List[asyncio.Task] = []
        finite_fill_tasks: List[asyncio.Task] = []
        # The write buffer is internal plumbing, deliberately kept out of
        # self._buffers: only ingress buffers feed loss accounting.
        write_buffer = AsyncBuffer(1 << 30, name="write")
        self._buffers = []

        def make_buffer(name: str, capacity: Optional[int]) -> AsyncBuffer:
            buffer = AsyncBuffer(capacity or cfg.stream_buffer_capacity, name=name)
            self._buffers.append(buffer)
            return buffer

        # DNS lanes: one fill task per source.
        dns_finite: List[Tuple[Iterable, AsyncBuffer]] = []
        for i, source in enumerate(dns_sources):
            processor = FillUpProcessor(self.storage)
            self._fillup_processors.append(processor)
            lane = FillLane(
                processor,
                self.storage,
                exact_ttl=cfg.exact_ttl,
                columnar=cfg.dns_fill_columnar,
            )
            if is_live_source(source):
                buffer = make_buffer(f"dns[{i}]", source.capacity)
                source.connect_buffer(buffer)
                await source.start(loop)
                live_ingests.append((source, buffer))
                lane_tasks.append(loop.create_task(self._fill_task(buffer, lane)))
            else:
                buffer = make_buffer(f"dns[{i}]", None)
                dns_finite.append((source, buffer))
                task = loop.create_task(self._fill_task(buffer, lane))
                finite_fill_tasks.append(task)
                lane_tasks.append(task)

        # Flow lanes: one lookup task per source.
        flow_finite: List[Tuple[Iterable, AsyncBuffer]] = []
        for i, source in enumerate(flow_sources):
            processor = LookUpProcessor(self.storage, cfg)
            self._lookup_processors.append(processor)
            if is_live_source(source):
                buffer = make_buffer(f"netflow[{i}]", source.capacity)
                source.connect_buffer(buffer)
                await source.start(loop)
                live_ingests.append((source, buffer))
                collector = getattr(source, "collector", None)
                if collector is not None:
                    # Off-loop decode: the source buffers *raw* datagrams
                    # and this lane batch-decodes them through the
                    # source's collector, charging malformed input to the
                    # source's ingest stats at decode time.
                    lane = LookupLane(
                        processor, collector, ingest_stats=source.ingest_stats
                    )
                else:
                    # Worker-sharded sources ship ready-decoded batches;
                    # decode accounting already happened in the workers.
                    lane = LookupLane(processor)
            else:
                buffer = make_buffer(f"netflow[{i}]", None)
                flow_finite.append((source, buffer))
                collector = FlowCollector()
                self._flow_collectors.append(collector)
                lane = LookupLane(processor, collector)
            lane_tasks.append(
                loop.create_task(self._lookup_task(buffer, lane, write_buffer))
            )

        # Every live listener has bound by here, so the header this
        # writes cannot land in (or truncate) a file for a session that
        # failed at bind time.
        self.writer = WriteWorker(self.sink)
        write_task = loop.create_task(self._write_task(write_buffer))

        # Service surface: periodic snapshots, the stats heartbeat, and
        # the scrape endpoint all start once the session is actually up
        # (listeners bound), and run for offline replays too — a soak
        # through ReplaySource exercises the same lifecycle as live.
        service_tasks: List[asyncio.Task] = []
        metrics_server = None
        if self.engine_config.snapshot_path:
            service_tasks.append(loop.create_task(self._snapshot_task()))
        if self.engine_config.stats_interval > 0:
            service_tasks.append(loop.create_task(self._stats_task()))
        if self.engine_config.metrics_port is not None:
            from repro.core.monitor import MetricsHttpServer, render_async_engine

            sources_view = tuple(self._run_sources)
            metrics_server = MetricsHttpServer(
                lambda: render_async_engine(self, sources_view),
                port=self.engine_config.metrics_port,
            )
            await metrics_server.start()
            self.metrics_address = metrics_server.address

        # Pump finite sources; optionally barrier DNS before flows.
        dns_pumps = [
            loop.create_task(self._pump(source, buffer))
            for source, buffer in dns_finite
        ]
        if dns_first:
            await asyncio.gather(*dns_pumps)
            await asyncio.gather(*finite_fill_tasks)
        flow_pumps = [
            loop.create_task(self._pump(source, buffer))
            for source, buffer in flow_finite
        ]

        await asyncio.gather(*dns_pumps)
        if finite_fill_tasks:
            await asyncio.gather(*finite_fill_tasks)
        self._fill_finite_done = True
        await asyncio.gather(*flow_pumps)

        if live_ingests:
            # Serve until asked to stop, then close the listeners; what
            # is already buffered still drains through the lanes below.
            await self._stop_event.wait()
            for ingest, _buffer in live_ingests:
                await ingest.stop()
            for _ingest, buffer in live_ingests:
                buffer.close()

        await asyncio.gather(*lane_tasks)
        write_buffer.close()
        await write_task
        # Service teardown: the periodic tasks stop, the endpoint closes,
        # and a final snapshot pins the fully-drained state — a restart
        # from it resumes with everything this run stored.
        for task in service_tasks:
            task.cancel()
        if service_tasks:
            await asyncio.gather(*service_tasks, return_exceptions=True)
        if metrics_server is not None:
            await metrics_server.stop()
        if self.engine_config.snapshot_path:
            await self._write_snapshot(loop, self.engine_config.snapshot_path)
        # Both cleared together: a post-run request_stop must hit the
        # drop path, not set this run's stale (already-set) event while
        # a future run is starting up.
        self._loop = None
        self._stop_event = None

        report = self._build_report()
        collect_ingest(report, list(dns_sources) + list(flow_sources))
        return report

    def _build_report(self) -> EngineReport:
        summary = stack_summary(
            self._fillup_processors, self._lookup_processors, self.storage
        )
        report = merge_summaries([summary], variant_name="async")
        report.flow_decode_errors = sum(
            c.stats.malformed + c.stats.unknown_version
            for c in self._flow_collectors
        )
        report.overall_loss_rate = buffer_loss_rate(self._buffers)
        if report.overall_loss_rate > 0:
            report.warnings.append(buffer_loss_warning(report.overall_loss_rate))
        report.max_write_delay = (
            self.writer.stats.max_delay if self.writer is not None else 0.0
        )
        report.snapshots_written = self.snapshots_written
        report.restored_entries = self.restored_entries
        for name, exc in self._source_errors:
            report.warnings.append(source_failure_warning(name, exc))
        report.warnings.extend(self._service_warnings)
        return report
