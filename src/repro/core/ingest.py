"""Multi-process UDP socket sharding via SO_REUSEPORT.

One socket on one event loop tops out at one core's worth of receive +
decode. The paper's collectors scale past that the way production
collectors do: *N sockets bound to the same port* with ``SO_REUSEPORT``,
so the kernel load-balances export datagrams across N worker processes
by flow hash — each exporter's (src, dst) 4-tuple consistently lands on
the same worker, which keeps per-worker NetFlow v9/IPFIX template
state coherent without any cross-process coordination.

:class:`ReuseportUdpIngest` runs one receive + decode stack per worker
process (bulk ``recv_into`` drains, batched
:meth:`~repro.netflow.collector.FlowCollector.ingest_columns_many`
decode) and ships ready-made :class:`FlowBatch` items to the parent as
flat column tuples over a bounded queue — the same per-scalar IPC lane
the sharded engine routes flows on, so worker output feeds the existing
sharded storage without re-decoding.

The source implements the full ingest-source protocol
(:mod:`repro.core.pipeline`): iterate it like any flow source under the
threaded or sharded engine, or hand it to the async engine as a live
source (``connect_buffer``/``start``/``stop``). Per-worker
:class:`IngestStats` merge into one source-level view
(:func:`repro.core.metrics.merge_ingest_stats`), and a worker that dies
mid-ingest surfaces as an :attr:`ingest_errors` warning on the report —
the run degrades loudly instead of hanging.

**Supervision** (``supervise=True``, the default): a worker that dies
without its stats sentinel — segfault, OOM kill, unhandled error — is
respawned on the same port with capped exponential backoff, and the
:attr:`restarts` counter records each respawn. Stats are kept per worker
*generation*, so the merged counters keep summing across a respawn
instead of resetting. When the whole source exceeds its restart budget
(``max_restarts`` within ``restart_window`` seconds) the failing slot is
abandoned and the source degrades to the surviving workers, loudly:
every death, respawn, and abandonment lands in :attr:`ingest_errors`
and from there in ``EngineReport.warnings``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import select
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import DEFAULT_RECV_BUFFER_BYTES
from repro.core.metrics import IngestStats, merge_ingest_stats
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowBatch
from repro.netflow.udp import MAX_DATAGRAM, bind_udp_socket, set_recv_buffer
from repro.util.errors import ConfigError

#: Message tags on the worker output queue.
_READY = "ready"
_COLS = "cols"
_STATS = "stats"
_ERROR = "error"

#: Bounded worker→parent queue depth (column batches in flight).
_QUEUE_DEPTH = 64


def _ingest_worker(
    wid: int,
    host: str,
    port: int,
    reuseport: bool,
    out_queue,
    stop_event,
    batch_rows: int,
    recv_buffer_bytes: int,
    max_recv_per_wakeup: int,
    poll_interval: float,
) -> None:
    """One socket-sharding worker: recv → decode → columns over IPC.

    The loop is the async engine's batched socket layer without the
    event loop: wait for readability (bounded, so the stop event is
    polled), bulk-drain the kernel queue with ``recv_into``, batch-decode
    the drained datagrams, and flush the accumulating :class:`FlowBatch`
    once it reaches ``batch_rows`` (or on idle, bounding latency). The
    final message is always this worker's :class:`IngestStats` — the
    parent's merge/accounting sentinel.
    """
    try:
        sock = bind_udp_socket((host, port), reuseport=reuseport)
    except (OSError, ConfigError) as exc:
        out_queue.put((_ERROR, wid, f"{type(exc).__name__}: {exc}"))
        return
    stats = IngestStats(name=f"udp-worker[{wid}]")
    try:
        sock.setblocking(False)
        stats.recv_buffer_bytes = set_recv_buffer(sock, recv_buffer_bytes)
        out_queue.put((_READY, wid, sock.getsockname()[1], stats.recv_buffer_bytes))
        collector = FlowCollector()
        cstats = collector.stats
        view = memoryview(bytearray(MAX_DATAGRAM))
        batch = FlowBatch()
        pending_datagrams = 0

        def flush() -> None:
            nonlocal batch, pending_datagrams
            if not pending_datagrams:
                return
            if len(batch):
                try:
                    out_queue.put(
                        (_COLS, wid, batch.columns(), pending_datagrams),
                        timeout=1.0,
                    )
                    stats.accepted += pending_datagrams
                except queue_mod.Full:
                    # The parent is wedged or gone: drop-and-count, the
                    # same loss semantics as a full engine buffer.
                    stats.dropped += pending_datagrams
                batch = FlowBatch()
            else:
                # Template-only (or all-malformed) window: consumed into
                # session state / counters, nothing to ship.
                stats.accepted += pending_datagrams
            pending_datagrams = 0

        while not stop_event.is_set():
            readable, _, _ = select.select([sock], [], [], poll_interval)
            if not readable:
                flush()  # idle: bound the latency of a partial batch
                continue
            raws: List[bytes] = []
            for _ in range(max_recv_per_wakeup):
                try:
                    n = sock.recv_into(view)
                except (BlockingIOError, InterruptedError):
                    break
                raws.append(bytes(view[:n]))
                stats.bytes_in += n
            if raws:
                stats.received += len(raws)
                errors_before = cstats.malformed + cstats.unknown_version
                batch.extend(collector.ingest_columns_many(raws))
                stats.malformed += (
                    cstats.malformed + cstats.unknown_version - errors_before
                )
                pending_datagrams += len(raws)
            if len(batch) >= batch_rows:
                flush()
        flush()
    except Exception as exc:  # pragma: no cover - defensive reporting
        out_queue.put((_ERROR, wid, f"{type(exc).__name__}: {exc}"))
    finally:
        sock.close()
        out_queue.put((_STATS, wid, stats))


class ReuseportUdpIngest:
    """N-worker SO_REUSEPORT UDP flow source (one port, N processes).

    Iterable of decoded :class:`FlowBatch` items for the threaded and
    sharded engines, and a live source (``connect_buffer``/``start``/
    ``stop``) for the async engine. ``workers=1`` binds a plain socket —
    no SO_REUSEPORT needed — so the single-worker configuration runs on
    any platform and is the natural parity baseline for N.

    ``capture`` is part of the ingest-source protocol signature but is
    *rejected* here: datagrams are received inside worker processes the
    parent's capture writer cannot observe. Record with a single-worker
    source when a session must be replayable.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        batch_rows: int = 2048,
        recv_buffer_bytes: int = DEFAULT_RECV_BUFFER_BYTES,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
        capture=None,
        max_recv_per_wakeup: int = 256,
        poll_interval: float = 0.05,
        supervise: bool = True,
        max_restarts: int = 5,
        restart_window: float = 30.0,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
    ):
        if workers < 1:
            raise ConfigError("ingest workers must be at least 1")
        if max_restarts < 0:
            raise ConfigError("max_restarts must be non-negative")
        if restart_window <= 0 or restart_backoff <= 0 or restart_backoff_cap <= 0:
            raise ConfigError("restart window and backoffs must be positive")
        if capture is not None:
            raise ConfigError(
                "ReuseportUdpIngest cannot tee a capture: datagrams are "
                "received in worker processes; use a single-worker "
                "UdpFlowIngest to record replayable sessions"
            )
        import socket as socket_mod

        if workers > 1 and not hasattr(socket_mod, "SO_REUSEPORT"):
            raise ConfigError(
                "SO_REUSEPORT is not available on this platform; "
                "multi-worker UDP ingest requires it"
            )
        self.host = host
        self.port = port
        self.workers = workers
        self.batch_rows = batch_rows
        self.recv_buffer_bytes = recv_buffer_bytes
        #: Overrides the async engine's stream_buffer_capacity when set.
        self.capacity = capacity
        self.capture = None
        self.name = name or f"reuseport[{host}:{port} x{workers}]"
        self.max_recv_per_wakeup = max_recv_per_wakeup
        self.poll_interval = poll_interval
        self.address: Optional[Tuple[str, int]] = None
        #: Partial-failure warnings (dead workers); folded into
        #: ``EngineReport.warnings`` by ``pipeline.collect_ingest``.
        self.ingest_errors: List[str] = []
        self.processes: List = []
        self._ctx = mp.get_context()
        self._out_queue = None
        self._stop_event = None
        self._started = False
        self._closed = False
        #: Keyed by (wid, generation): a respawned worker's sentinel must
        #: add to — not overwrite — its predecessor's counters.
        self._stats_parts: Dict[Tuple[int, int], IngestStats] = {}
        self._ready_rcvbuf: Dict[int, int] = {}
        self._accounted: set = set()
        # Supervision state.
        self.supervise = supervise
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        #: Worker respawns performed (folded into
        #: ``EngineReport.worker_restarts`` by ``pipeline.collect_ingest``).
        self.restarts = 0
        self._generation: Dict[int, int] = {}
        self._respawn_at: Dict[int, float] = {}
        self._backoff: Dict[int, float] = {}
        self._restart_times: Deque[float] = deque()
        self._abandoned: set = set()
        self._stopping = False
        self._resolved_port: Optional[int] = None
        self._reuseport = workers > 1
        self._salvaged: Deque[Tuple[FlowBatch, int]] = deque()
        self._parent_dropped = 0
        self._delivered_datagrams = 0
        self._ready_evt = threading.Event()
        # Async-mode state.
        self._buffer = None
        self._drain_task = None

    # --- merged observability -------------------------------------------

    @property
    def ingest_stats(self) -> IngestStats:
        """The merged per-worker counters (see ``merge_ingest_stats``).

        Parent-side drops — batches a full engine buffer refused — move
        from ``accepted`` to ``dropped``, keeping ``accepted`` honest as
        "datagrams whose flows actually reached the pipeline".
        """
        merged = merge_ingest_stats(self.name, self._stats_parts.values())
        if not merged.recv_buffer_bytes and self._ready_rcvbuf:
            merged.recv_buffer_bytes = min(self._ready_rcvbuf.values())
        if self._delivered_datagrams > merged.received:
            # Workers ship their full counters only on exit; mid-run the
            # parent still knows how many datagrams' decoded columns it
            # has consumed, so expose that as a truthful lower bound —
            # without it a caller polling progress would read 0 until
            # shutdown.
            delta = self._delivered_datagrams - merged.received
            merged.received += delta
            merged.accepted += delta
        if self._parent_dropped:
            merged.accepted -= self._parent_dropped
            merged.dropped += self._parent_dropped
        return merged

    # --- worker lifecycle ------------------------------------------------

    def _start_workers(self) -> None:
        if self._started or self._closed:
            return
        self._started = True
        reuseport = self.workers > 1
        port = self.port
        if port == 0 and reuseport:
            # Reserve a concrete port for all workers to share: a probe
            # bind (REUSEPORT too, or the workers could not join it)
            # discovers one, then closes before any worker binds so the
            # kernel never balances traffic onto a dead socket.
            probe = bind_udp_socket((self.host, 0), reuseport=True)
            port = probe.getsockname()[1]
            probe.close()
        if port:
            self._resolved_port = port
        self._out_queue = self._ctx.Queue(maxsize=_QUEUE_DEPTH)
        self._stop_event = self._ctx.Event()
        self.processes = [self._make_worker(wid, port) for wid in range(self.workers)]
        for process in self.processes:
            process.start()

    def _make_worker(self, wid: int, port: int):
        return self._ctx.Process(
            target=_ingest_worker,
            args=(
                wid,
                self.host,
                port,
                self._reuseport,
                self._out_queue,
                self._stop_event,
                self.batch_rows,
                self.recv_buffer_bytes,
                self.max_recv_per_wakeup,
                self.poll_interval,
            ),
            daemon=True,
        )

    def _handle(self, message) -> None:
        tag = message[0]
        if tag == _COLS:
            _tag, _wid, columns, ndatagrams = message
            self._delivered_datagrams += ndatagrams
            self._salvaged.append((FlowBatch.from_columns(columns), ndatagrams))
        elif tag == _READY:
            _tag, wid, bound_port, rcvbuf = message
            self._ready_rcvbuf[wid] = rcvbuf
            self._resolved_port = bound_port
            if self.address is None:
                self.address = (self.host, bound_port)
            if len(self._ready_rcvbuf) == self.workers:
                self._ready_evt.set()
        elif tag == _STATS:
            _tag, wid, stats = message
            self._stats_parts[(wid, self._generation.get(wid, 0))] = stats
            if self._supervisable(wid):
                # The worker exited without being asked to stop: its
                # sentinel is an epitaph, not completion — respawn it.
                self._schedule_respawn(wid, "exited unexpectedly")
            else:
                self._accounted.add(wid)
        elif tag == _ERROR:
            _tag, wid, error = message
            self.ingest_errors.append(f"ingest worker {wid} failed: {error}")
            if self._supervisable(wid):
                self._schedule_respawn(wid, error)
            else:
                self._accounted.add(wid)

    def _drain_nowait(self) -> int:
        out_queue = self._out_queue
        if out_queue is None:
            return 0
        moved = 0
        while True:
            try:
                message = out_queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return moved
            self._handle(message)
            moved += 1

    def _pump_blocking(self, timeout: float) -> bool:
        out_queue = self._out_queue
        if out_queue is None:
            return False
        try:
            message = out_queue.get(timeout=timeout)
        except (queue_mod.Empty, OSError, ValueError):
            return False
        self._handle(message)
        return True

    def _all_accounted(self) -> bool:
        return len(self._accounted) >= self.workers

    # --- supervision ------------------------------------------------------

    def _supervisable(self, wid: int) -> bool:
        """True when a dead worker in slot ``wid`` should be respawned."""
        return (
            self.supervise
            and not self._stopping
            and not self._closed
            and wid not in self._abandoned
        )

    def _schedule_respawn(self, wid: int, reason: str) -> None:
        """Queue slot ``wid`` for respawn after its current backoff.

        Enforces the source-wide restart budget: more than
        ``max_restarts`` respawns inside ``restart_window`` seconds means
        the failure is systemic (bad port, OOM pressure), and burning
        CPU on respawn loops would starve the surviving workers — the
        slot is abandoned instead, and the source degrades loudly.
        """
        if wid in self._respawn_at or wid in self._abandoned or wid in self._accounted:
            return
        now = time.monotonic()
        while self._restart_times and now - self._restart_times[0] > self.restart_window:
            self._restart_times.popleft()
        if len(self._restart_times) >= self.max_restarts:
            self._abandoned.add(wid)
            self._accounted.add(wid)
            self.ingest_errors.append(
                f"ingest worker {wid} abandoned after {self.max_restarts} "
                f"restarts in {self.restart_window:.0f}s; degraded to "
                f"{self.workers - len(self._abandoned)} surviving worker(s)"
            )
            return
        backoff = self._backoff.get(wid, self.restart_backoff)
        self._backoff[wid] = min(backoff * 2.0, self.restart_backoff_cap)
        self._respawn_at[wid] = now + backoff
        self.ingest_errors.append(
            f"ingest worker {wid} died ({reason}); respawning in {backoff:.2f}s"
        )

    def _maybe_respawn(self) -> None:
        """Start replacement workers whose backoff has elapsed.

        Called from every polling path (sync iteration, async drain,
        startup wait), so supervision needs no thread of its own. Once
        the source is stopping, pending respawns resolve to accounted
        slots instead — a replacement spawned during teardown would
        never be joined.
        """
        if not self._respawn_at:
            return
        now = time.monotonic()
        for wid in list(self._respawn_at):
            if self._stopping or self._closed:
                del self._respawn_at[wid]
                self._accounted.add(wid)
                continue
            if now < self._respawn_at[wid]:
                continue
            del self._respawn_at[wid]
            old = self.processes[wid]
            if old.pid is not None and not old.is_alive():
                old.join(timeout=0)  # release the dead process record
            port = self._resolved_port if self._resolved_port else self.port
            self._generation[wid] = self._generation.get(wid, 0) + 1
            replacement = self._make_worker(wid, port)
            self.processes[wid] = replacement
            replacement.start()
            self.restarts += 1
            self._restart_times.append(now)

    def _reap_dead_workers(self) -> None:
        """Handle workers that died without their stats sentinel.

        Called only after an empty queue poll: a worker that exited
        cleanly flushed its sentinel to the pipe *before* its exitcode
        became observable, so anything still missing after a non-blocking
        drain really did die mid-ingest. Supervised, that schedules a
        respawn; otherwise it is accounted as a loud warning, not a hang.
        """
        dead = [
            wid
            for wid, process in enumerate(self.processes)
            if wid not in self._accounted
            and wid not in self._respawn_at
            and process.pid is not None
            and not process.is_alive()
        ]
        if dead:
            self._drain_nowait()
            for wid in dead:
                if wid in self._accounted or wid in self._respawn_at:
                    continue
                exitcode = self.processes[wid].exitcode
                if self._supervisable(wid):
                    self._schedule_respawn(wid, f"exitcode {exitcode}")
                else:
                    self._accounted.add(wid)
                    self.ingest_errors.append(
                        f"ingest worker {wid} died mid-ingest (exitcode "
                        f"{exitcode}); flows routed to its socket after the "
                        f"death were lost"
                    )
        self._maybe_respawn()

    def _join_workers(self) -> None:
        for process in self.processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
        if self._out_queue is not None:
            self._out_queue.cancel_join_thread()
            self._out_queue.close()
            self._out_queue = None

    # --- the sync face (threaded / sharded engines) -----------------------

    def wait_ready(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Block until every worker has bound; returns the shared address.

        Readiness messages are consumed by whichever loop is draining the
        output queue — hand the source to an engine (or ``start`` it on a
        loop) before waiting, exactly like the other live ingests.
        """
        if not self._ready_evt.wait(timeout):
            raise TimeoutError("reuseport ingest workers did not bind in time")
        return self.address

    def request_stop(self) -> None:
        """Ask the workers to flush and exit; iteration then terminates.

        The sync-face stop signal (mirrors ``AsyncEngine.request_stop``);
        the async face's awaitable teardown is :meth:`stop`. Stopping
        also ends supervision: pending respawns are cancelled and dead
        slots account as final.
        """
        self._stopping = True
        if self._stop_event is not None:
            self._stop_event.set()

    def close(self) -> None:
        """Idempotent teardown (the ingest-source protocol's close())."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        self.request_stop()
        deadline_polls = 100  # 100 × 0.1s: never hang teardown
        while not self._all_accounted() and deadline_polls:
            if not self._pump_blocking(timeout=0.1):
                self._reap_dead_workers()
            deadline_polls -= 1
        self._drain_nowait()
        self._join_workers()

    def __enter__(self) -> "ReuseportUdpIngest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __iter__(self):
        """Yield decoded :class:`FlowBatch` items until stopped.

        One-shot: iteration ends when every worker is accounted for
        (stats sentinel, reported error, or observed death) — i.e. after
        :meth:`request_stop`, or when the whole worker set died.
        Iterating a closed source yields nothing.
        """
        self._start_workers()
        salvaged = self._salvaged
        while True:
            while salvaged:
                batch, _ndatagrams = salvaged.popleft()
                yield batch
            if self._all_accounted():
                if self._drain_nowait():
                    continue  # a dead worker's last flushed batches
                return
            # Respawns must not wait for an idle queue: surviving workers
            # keep the queue busy exactly when a dead slot matters most.
            self._maybe_respawn()
            if not self._pump_blocking(timeout=0.2):
                self._reap_dead_workers()

    # --- the live face (async engine) -------------------------------------

    def connect_buffer(self, buffer) -> None:
        self._buffer = buffer

    async def start(self, loop) -> None:
        """Spawn the workers and the queue→buffer drain task."""
        import asyncio

        self._start_workers()
        while not self._ready_evt.is_set():
            self._drain_nowait()
            if self._all_accounted():
                # Every worker failed before binding (port in use, no
                # permission): fail startup like a single socket would.
                raise OSError(
                    "; ".join(self.ingest_errors) or "ingest workers died at startup"
                )
            self._reap_dead_workers()
            await asyncio.sleep(0.005)
        self._drain_task = loop.create_task(self._drain_async())

    async def _drain_async(self) -> None:
        import asyncio

        salvaged = self._salvaged
        while True:
            moved = self._drain_nowait()
            while salvaged:
                self._offer(*salvaged.popleft())
            if self._all_accounted() and not moved:
                return
            self._maybe_respawn()
            if not moved:
                self._reap_dead_workers()
                await asyncio.sleep(0.002)
            else:
                await asyncio.sleep(0)

    def _offer(self, batch: FlowBatch, ndatagrams: int) -> None:
        if self._buffer is None or not self._buffer.try_put(batch):
            self._parent_dropped += ndatagrams

    async def stop(self) -> None:
        """Async stop: workers flush, the drain task finishes, then join."""
        import asyncio

        self._stopping = True
        if self._stop_event is not None:
            self._stop_event.set()
        if self._drain_task is not None:
            try:
                await asyncio.wait_for(self._drain_task, timeout=30.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                self._drain_task.cancel()
                self.ingest_errors.append(
                    "ingest drain did not finish within 30s of stop"
                )
            self._drain_task = None
        self._join_workers()
        self._closed = True
