"""The paper's benchmark variants (Section 4 and Appendix A.8).

Each variant removes exactly one technique from the fully featured
system:

* **Main** — everything on (the deployed configuration);
* **No Split** — hashmaps (and queues) are not divided into splits;
* **No Clear-Up** — hashmaps are kept in memory forever;
* **No Rotation** — hashmaps are cleared, but no Inactive copy is kept;
* **No Long Hashmaps** — large-TTL records land in Active like the rest;
* **Exact TTL** — per-record TTL expiry with periodic sweeps
  (Appendix A.8's rejected design; not part of Figure 3's four but
  needed for the A.8 experiment).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, List, Optional

from repro.core.config import EngineConfig, FlowDNSConfig


class Variant(Enum):
    MAIN = "main"
    NO_SPLIT = "no-split"
    NO_CLEAR_UP = "no-clear-up"
    NO_ROTATION = "no-rotation"
    NO_LONG = "no-long"
    EXACT_TTL = "exact-ttl"


#: The four ablations Figure 3 plots against Main.
FIGURE3_VARIANTS = (
    Variant.MAIN,
    Variant.NO_CLEAR_UP,
    Variant.NO_LONG,
    Variant.NO_ROTATION,
    Variant.NO_SPLIT,
)

#: Figure 7 drops No Split ("complete overlap with the Main benchmark").
FIGURE7_VARIANTS = (
    Variant.NO_CLEAR_UP,
    Variant.MAIN,
    Variant.NO_LONG,
    Variant.NO_ROTATION,
)


#: Engine implementations, for CLI/embedding selection. ``simulation``
#: replays flat record iterables deterministically with modelled
#: resources; ``threaded``, ``sharded`` and ``async`` take sequences of
#: stream sources and run the live pipeline (one process, batched
#: workers), the multiprocessing variant (storage partitioned by
#: lookup-IP hash), or the single-loop asyncio variant whose sources may
#: also be live loopback/network listeners (NetFlow over UDP, DNS over
#: TCP).
ENGINE_VARIANTS = {
    "simulation": "deterministic single-threaded replay, modelled resources",
    "threaded": "live multi-threaded pipeline with batched workers",
    "sharded": "multiprocessing pipeline sharded by lookup-IP hash",
    "async": "asyncio pipeline with live UDP/TCP socket ingest",
}


def engine_for(
    name: str,
    config: Optional[FlowDNSConfig | EngineConfig] = None,
    sink=None,
    num_shards: Optional[int] = None,
):
    """Instantiate an engine variant by registry name.

    ``config`` may be a bare :class:`FlowDNSConfig` (correlator knobs
    only) or a full :class:`EngineConfig` (runtime knobs too); every
    engine normalises via :meth:`EngineConfig.of`. ``num_shards`` is a
    back-compat override for ``EngineConfig.shards``. Note the run()
    signatures differ: ``simulation`` consumes flat record iterables;
    ``threaded``/``sharded`` consume sequences of sources.
    """
    engine_config = EngineConfig.of(config)
    if name == "simulation":
        from repro.core.simulation import SimulationEngine

        return SimulationEngine(engine_config.flowdns, sink=sink)
    if name == "threaded":
        from repro.core.engine import ThreadedEngine

        return ThreadedEngine(engine_config, sink=sink)
    if name == "sharded":
        from repro.core.sharded import ShardedEngine

        return ShardedEngine(engine_config, sink=sink, num_shards=num_shards)
    if name == "async":
        from repro.core.async_engine import AsyncEngine

        return AsyncEngine(engine_config, sink=sink)
    raise ValueError(f"unknown engine {name!r}; known: {sorted(ENGINE_VARIANTS)}")


def config_for(variant: Variant, base: Optional[FlowDNSConfig] = None) -> FlowDNSConfig:
    """Derive a variant's config from a base (default: paper defaults)."""
    base = base if base is not None else FlowDNSConfig()
    if variant == Variant.MAIN:
        return base.replace(
            split_enabled=True,
            clear_up_enabled=True,
            rotation_enabled=True,
            long_enabled=True,
            exact_ttl=False,
        )
    if variant == Variant.NO_SPLIT:
        return base.replace(split_enabled=False, exact_ttl=False)
    if variant == Variant.NO_CLEAR_UP:
        return base.replace(clear_up_enabled=False, exact_ttl=False)
    if variant == Variant.NO_ROTATION:
        return base.replace(rotation_enabled=False, exact_ttl=False)
    if variant == Variant.NO_LONG:
        return base.replace(long_enabled=False, exact_ttl=False)
    if variant == Variant.EXACT_TTL:
        return base.replace(exact_ttl=True)
    raise ValueError(f"unknown variant {variant!r}")


def configs_for(
    variants: Iterable[Variant], base: Optional[FlowDNSConfig] = None
) -> List[FlowDNSConfig]:
    return [config_for(v, base) for v in variants]
