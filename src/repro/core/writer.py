"""Write workers: correlated results to disk (Figure 1's Write stage).

Output is line-oriented TSV: one row per flow with the resolved service
name (or ``-`` for uncorrelated flows) plus the discovered chain. The
writer tracks the delay between a flow's timestamp and the moment its row
is written — the paper reports "results are written to disk by a maximum
delay of 45 seconds" as a headline property.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, List, Optional, TextIO

from repro.core.lookup import CorrelationBatch, CorrelationResult

#: Placeholder the output format uses for NULL results.
NULL_SERVICE = "-"

HEADER = "# ts\tsrc_ip\tdst_ip\tproto\tpackets\tbytes\tservice\tchain\n"


def format_result(result: CorrelationResult) -> str:
    """One output row for a correlation result."""
    flow = result.flow
    service = result.service if result.matched else NULL_SERVICE
    chain = ">".join(result.chain) if result.matched else NULL_SERVICE
    return (
        f"{flow.ts:.3f}\t{flow.src_ip}\t{flow.dst_ip}\t{flow.protocol}\t"
        f"{flow.packets}\t{flow.bytes_}\t{service}\t{chain}\n"
    )


def format_batch(batch: CorrelationBatch) -> List[str]:
    """Output rows for one correlation batch, straight from the columns.

    Byte-identical to mapping :func:`format_result` over the batch's
    materialised results (the address columns carry the same canonical
    text ``str(flow.src_ip)`` would produce), without building a single
    ``CorrelationResult``/``FlowRecord``/``ipaddress`` object — this is
    the engines' columnar write path.
    """
    flows = batch.flows
    ts, src, dst = flows.ts, flows.src_ip_text, flows.dst_ip_text
    proto, packets, bytes_ = flows.protocol, flows.packets, flows.bytes_
    rows: List[str] = []
    append = rows.append
    for i, chain in enumerate(batch.chains):
        if chain:
            service = chain[-1]
            chain_text = ">".join(chain)
        else:
            service = chain_text = NULL_SERVICE
        append(
            f"{ts[i]:.3f}\t{src[i]}\t{dst[i]}\t{proto[i]}\t"
            f"{packets[i]}\t{bytes_[i]}\t{service}\t{chain_text}\n"
        )
    return rows


def parse_result_line(line: str) -> Optional[dict]:
    """Parse one output row back into a dict (None for comments/blank).

    The BGP and abuse analyses consume FlowDNS output files; this is the
    single parser they share.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split("\t")
    if len(parts) != 8:
        raise ValueError(f"malformed FlowDNS output row: {line!r}")
    ts, src_ip, dst_ip, proto, packets, bytes_, service, chain = parts
    return {
        "ts": float(ts),
        "src_ip": src_ip,
        "dst_ip": dst_ip,
        "protocol": int(proto),
        "packets": int(packets),
        "bytes": int(bytes_),
        "service": None if service == NULL_SERVICE else service,
        "chain": tuple() if chain == NULL_SERVICE else tuple(chain.split(">")),
    }


class DiscardSink(io.TextIOBase):
    """A write-only sink that drops everything (for week-long simulations
    where retaining output rows would dominate memory)."""

    def write(self, text: str) -> int:  # noqa: D102 - io.TextIOBase API
        return len(text)

    def writable(self) -> bool:
        return True


@dataclass
class WriteStats:
    rows: int = 0
    matched_rows: int = 0
    max_delay: float = 0.0
    total_delay: float = 0.0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.rows if self.rows else 0.0


class WriteWorker:
    """Serialises results to a text sink, tracking write delay."""

    def __init__(self, sink: Optional[TextIO] = None, write_header: bool = True):
        self.sink = sink if sink is not None else io.StringIO()
        self.stats = WriteStats()
        if write_header:
            self.sink.write(HEADER)

    def write(self, result: CorrelationResult, now: Optional[float] = None) -> None:
        """Write one row; ``now`` is the engine's current time for delay."""
        self.sink.write(format_result(result))
        self.stats.rows += 1
        if result.matched:
            self.stats.matched_rows += 1
        if now is not None:
            delay = max(0.0, now - result.flow.ts)
            self.stats.max_delay = max(self.stats.max_delay, delay)
            self.stats.total_delay += delay

    def write_many(self, results: Iterable[CorrelationResult], now: Optional[float] = None) -> None:
        for result in results:
            self.write(result, now)

    def write_batch(self, batch: CorrelationBatch, delay: Optional[float] = None) -> None:
        """Write one correlation batch's rows without materialising results.

        ``delay`` is the batch's queueing delay (the engines time-stamp a
        batch once when it is enqueued, so every row in it shares the same
        delay); matches the per-result path's ``now = flow.ts + delay``
        bookkeeping.
        """
        rows = format_batch(batch)
        self.sink.write("".join(rows))
        self.stats.rows += len(rows)
        self.stats.matched_rows += batch.matched
        if delay is not None:
            delay = max(0.0, delay)
            self.stats.max_delay = max(self.stats.max_delay, delay)
            self.stats.total_delay += delay * len(rows)
