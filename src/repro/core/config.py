"""FlowDNS configuration (the paper's Table 1, plus engine knobs).

Defaults are the deployed values from the paper:

* ``AClearUpInterval = 3600`` s — 99 % of A/AAAA TTLs are below this
  (Appendix A.6);
* ``CClearUpInterval = 7200`` s — 99 % of CNAME TTLs are below this;
* ``NUM_SPLIT = 10`` — "We empirically find that 10 splits are suitable
  for our scenario";
* CNAME loop limit 6 — ">99 % of CNAME chains are shorter" (Appendix A.4).

The ablation flags correspond one-to-one to the paper's benchmark
variants; :mod:`repro.core.variants` sets them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.netflow.records import FlowDirection
from repro.util.errors import ConfigError

#: Paper values (Appendix A.6).
DEFAULT_A_CLEAR_UP_INTERVAL = 3600.0
DEFAULT_C_CLEAR_UP_INTERVAL = 7200.0
#: Paper value (Section 3.2, step 5).
DEFAULT_NUM_SPLIT = 10
#: Paper value (Section 3.3, step 7 / Appendix A.4).
DEFAULT_CNAME_LOOP_LIMIT = 6


@dataclass
class FlowDNSConfig:
    """Complete configuration for a FlowDNS instance.

    Engine knobs (worker counts, buffer capacities) default to values that
    behave well at this reproduction's scaled-down rates; Table-1
    parameters default to the paper's deployed constants.
    """

    # --- Table 1 parameters -------------------------------------------------
    a_clear_up_interval: float = DEFAULT_A_CLEAR_UP_INTERVAL
    c_clear_up_interval: float = DEFAULT_C_CLEAR_UP_INTERVAL
    num_split: int = DEFAULT_NUM_SPLIT
    cname_loop_limit: int = DEFAULT_CNAME_LOOP_LIMIT

    # --- mechanism toggles (ablation variants) ------------------------------
    split_enabled: bool = True
    clear_up_enabled: bool = True
    rotation_enabled: bool = True
    long_enabled: bool = True
    exact_ttl: bool = False
    exact_ttl_sweep_interval: float = 60.0

    # --- engine knobs --------------------------------------------------------
    direction: FlowDirection = FlowDirection.SOURCE
    fillup_workers_per_stream: int = 2
    lookup_workers_per_stream: int = 2
    write_workers: int = 1
    stream_buffer_capacity: int = 65536
    map_shard_count: int = 32
    memoize_cname_chains: bool = True
    #: Records drained per worker wake-up on the batched fast path. Larger
    #: batches amortise lock round-trips and deduplicate repeated lookup
    #: IPs better, at the cost of coarser rotation/tick granularity.
    engine_batch_size: int = 2048

    def __post_init__(self):
        if self.a_clear_up_interval <= 0 or self.c_clear_up_interval <= 0:
            raise ConfigError("clear-up intervals must be positive")
        if self.num_split <= 0:
            raise ConfigError("num_split must be positive")
        if self.cname_loop_limit < 1:
            raise ConfigError("cname_loop_limit must be at least 1")
        if self.fillup_workers_per_stream < 1 or self.lookup_workers_per_stream < 1:
            raise ConfigError("worker counts must be at least 1")
        if self.write_workers < 1:
            raise ConfigError("write_workers must be at least 1")
        if self.stream_buffer_capacity < 1:
            raise ConfigError("stream_buffer_capacity must be at least 1")
        if self.exact_ttl_sweep_interval <= 0:
            raise ConfigError("exact_ttl_sweep_interval must be positive")
        if self.engine_batch_size < 1:
            raise ConfigError("engine_batch_size must be at least 1")

    @property
    def effective_num_split(self) -> int:
        """1 when splitting is disabled (the *No Split* variant)."""
        return self.num_split if self.split_enabled else 1

    def replace(self, **changes) -> "FlowDNSConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
