"""FlowDNS configuration (the paper's Table 1, plus engine knobs).

Defaults are the deployed values from the paper:

* ``AClearUpInterval = 3600`` s — 99 % of A/AAAA TTLs are below this
  (Appendix A.6);
* ``CClearUpInterval = 7200`` s — 99 % of CNAME TTLs are below this;
* ``NUM_SPLIT = 10`` — "We empirically find that 10 splits are suitable
  for our scenario";
* CNAME loop limit 6 — ">99 % of CNAME chains are shorter" (Appendix A.4).

The ablation flags correspond one-to-one to the paper's benchmark
variants; :mod:`repro.core.variants` sets them.

:class:`FlowDNSConfig` describes *correlation* behaviour; on top of it,
:class:`EngineConfig` describes one *deployment* of an engine — shard
count, fill-gate timeout, live-session bind addresses, socket buffer
sizing, ingest worker count, capture tap, replay pacing. Every engine
constructor and :func:`repro.core.variants.engine_for` accept either
(:meth:`EngineConfig.of` normalises), and the CLI's per-engine flag
validation is :meth:`EngineConfig.from_args` — presence-based rejection
of flags that do not apply to the selected engine or mode lives here,
not in ``cli.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.netflow.records import FlowDirection
from repro.util.errors import ConfigError

#: Paper values (Appendix A.6).
DEFAULT_A_CLEAR_UP_INTERVAL = 3600.0
DEFAULT_C_CLEAR_UP_INTERVAL = 7200.0
#: Paper value (Section 3.2, step 5).
DEFAULT_NUM_SPLIT = 10
#: Paper value (Section 3.3, step 7 / Appendix A.4).
DEFAULT_CNAME_LOOP_LIMIT = 6


@dataclass
class FlowDNSConfig:
    """Complete configuration for a FlowDNS instance.

    Engine knobs (worker counts, buffer capacities) default to values that
    behave well at this reproduction's scaled-down rates; Table-1
    parameters default to the paper's deployed constants.
    """

    # --- Table 1 parameters -------------------------------------------------
    a_clear_up_interval: float = DEFAULT_A_CLEAR_UP_INTERVAL
    c_clear_up_interval: float = DEFAULT_C_CLEAR_UP_INTERVAL
    num_split: int = DEFAULT_NUM_SPLIT
    cname_loop_limit: int = DEFAULT_CNAME_LOOP_LIMIT

    # --- mechanism toggles (ablation variants) ------------------------------
    split_enabled: bool = True
    clear_up_enabled: bool = True
    rotation_enabled: bool = True
    long_enabled: bool = True
    exact_ttl: bool = False
    exact_ttl_sweep_interval: float = 60.0
    #: Memory bound per constituent hashmap (each tier × split map of
    #: each bank; each split map for exact-TTL). 0 = unbounded — the
    #: paper's batch runs rely on clear-up alone, but a week-long
    #: ``serve`` under CNAME churn needs the hard cap. Overflow evicts
    #: oldest-inserted entries and counts into
    #: :attr:`repro.core.metrics.EngineReport.evictions`.
    max_entries_per_map: int = 0

    # --- engine knobs --------------------------------------------------------
    direction: FlowDirection = FlowDirection.SOURCE
    fillup_workers_per_stream: int = 2
    lookup_workers_per_stream: int = 2
    write_workers: int = 1
    stream_buffer_capacity: int = 65536
    map_shard_count: int = 32
    memoize_cname_chains: bool = True
    #: Records drained per worker wake-up on the batched fast path. Larger
    #: batches amortise lock round-trips and deduplicate repeated lookup
    #: IPs better, at the cost of coarser rotation/tick granularity.
    engine_batch_size: int = 2048
    #: Decode DNS wire payloads through the selective columnar path
    #: (:func:`repro.dns.columnar.decode_fill_columns`) instead of the
    #: per-message object decoder. Off = the reference path the
    #: differential suites compare against. Exact-TTL runs always use
    #: the reference path regardless: its per-record store+sweep timing
    #: is the A.8 experiment's subject and must not be batch-amortised.
    dns_fill_columnar: bool = True

    def __post_init__(self):
        if self.a_clear_up_interval <= 0 or self.c_clear_up_interval <= 0:
            raise ConfigError("clear-up intervals must be positive")
        if self.num_split <= 0:
            raise ConfigError("num_split must be positive")
        if self.cname_loop_limit < 1:
            raise ConfigError("cname_loop_limit must be at least 1")
        if self.fillup_workers_per_stream < 1 or self.lookup_workers_per_stream < 1:
            raise ConfigError("worker counts must be at least 1")
        if self.write_workers < 1:
            raise ConfigError("write_workers must be at least 1")
        if self.stream_buffer_capacity < 1:
            raise ConfigError("stream_buffer_capacity must be at least 1")
        if self.exact_ttl_sweep_interval <= 0:
            raise ConfigError("exact_ttl_sweep_interval must be positive")
        if self.engine_batch_size < 1:
            raise ConfigError("engine_batch_size must be at least 1")
        if self.max_entries_per_map < 0:
            raise ConfigError("max_entries_per_map must be non-negative")

    @property
    def effective_num_split(self) -> int:
        """1 when splitting is disabled (the *No Split* variant)."""
        return self.num_split if self.split_enabled else 1

    def replace(self, **changes) -> "FlowDNSConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


#: Default bound on how long a flow gate waits for the DNS fill before
#: correlating against a partial store (re-exported by
#: :mod:`repro.core.pipeline` for its gate helpers).
DEFAULT_FILL_TIMEOUT = 300.0

#: Live socket-session defaults shared by ``flowdns serve`` and live
#: ``flowdns capture`` (and by :class:`EngineConfig`'s field defaults).
DEFAULT_LIVE_HOST = "127.0.0.1"
DEFAULT_FLOW_PORT = 2055
DEFAULT_DNS_PORT = 8053

#: Default requested SO_RCVBUF for live UDP flow sockets: export bursts
#: land in the kernel buffer while the decode lane catches up. The
#: kernel clamps to rmem_max; the *achieved* size is surfaced in
#: :attr:`repro.core.metrics.IngestStats.recv_buffer_bytes`.
DEFAULT_RECV_BUFFER_BYTES = 4 << 20


@dataclass
class EngineConfig:
    """One engine deployment: a :class:`FlowDNSConfig` plus run wiring.

    The single construction surface for all engines: buffer sizes and
    correlation parameters ride in :attr:`flowdns`, everything that was
    previously kwarg sprawl across engine constructors and CLI handlers
    (``shards``, ``fill_timeout``, capture tap, live bind addresses,
    socket buffer sizing, ingest worker count, replay pacing) is a field
    here. Engines accept an ``EngineConfig``, a bare ``FlowDNSConfig``,
    or ``None`` — :meth:`of` normalises.
    """

    flowdns: FlowDNSConfig = field(default_factory=FlowDNSConfig)
    #: Worker processes for the sharded engine (None = CPU count).
    shards: Optional[int] = None
    #: Seconds the threaded engine's flow gate waits for the DNS fill.
    fill_timeout: float = DEFAULT_FILL_TIMEOUT
    #: SO_REUSEPORT socket-sharding workers for live UDP flow ingest.
    ingest_workers: int = 1
    #: Optional :class:`repro.replay.capture.CaptureWriter` tee for live
    #: sources (every received wire unit recorded pre-decode).
    capture: Optional[object] = None
    # --- live session wiring (serve / live capture) ---------------------
    host: str = DEFAULT_LIVE_HOST
    flow_port: int = DEFAULT_FLOW_PORT
    dns_port: int = DEFAULT_DNS_PORT
    #: Seconds to serve before draining; 0 = until stop is requested.
    duration: float = 0.0
    #: Requested SO_RCVBUF for live UDP flow sockets (best-effort).
    recv_buffer_bytes: int = DEFAULT_RECV_BUFFER_BYTES
    # --- replay pacing --------------------------------------------------
    realtime: bool = False
    speed: float = 1.0
    # --- service lifecycle (serve) --------------------------------------
    #: Periodic crash-safe snapshot target (temp file + fsync + atomic
    #: rename); None disables snapshotting. Restore-on-start degrades
    #: gracefully: a corrupt or mismatched snapshot warns and the
    #: service starts empty.
    snapshot_path: Optional[str] = None
    #: Seconds between periodic snapshots (also the final-on-drain one).
    snapshot_interval: float = 60.0
    #: Seconds between live stats lines (0 = no periodic stats line).
    stats_interval: float = 0.0
    #: TCP port for the live Prometheus-exposition health endpoint;
    #: None disables it (0 = ephemeral, for tests).
    metrics_port: Optional[int] = None
    # --- replay fault injection -----------------------------------------
    #: Named profile from :data:`repro.replay.faults.FAULT_PROFILES`;
    #: None = no profile baseline.
    fault_profile: Optional[str] = None
    #: ``NAME=VALUE`` overrides applied symmetrically to both lanes on
    #: top of the profile (or on their own).
    fault_rates: Optional[Tuple[str, ...]] = None
    #: Seed for the deterministic per-lane fault RNGs (0 when faults are
    #: requested without an explicit seed).
    fault_seed: Optional[int] = None

    def __post_init__(self):
        if self.shards is not None and self.shards < 1:
            raise ConfigError("shards must be at least 1")
        if self.fill_timeout < 0:
            raise ConfigError("fill_timeout must be non-negative")
        if self.ingest_workers < 1:
            raise ConfigError("ingest_workers must be at least 1")
        if self.duration < 0:
            raise ConfigError("duration must be non-negative")
        if self.recv_buffer_bytes < 0:
            raise ConfigError("recv_buffer_bytes must be non-negative")
        if self.speed <= 0:
            raise ConfigError("speed must be positive")
        if self.snapshot_interval <= 0:
            raise ConfigError("snapshot_interval must be positive")
        if self.stats_interval < 0:
            raise ConfigError("stats_interval must be non-negative")
        if self.metrics_port is not None and self.metrics_port < 0:
            raise ConfigError("metrics_port must be non-negative")
        if self.snapshot_path is not None and self.flowdns.exact_ttl:
            raise ConfigError(
                "snapshots require the rotating store; the exact-TTL "
                "variant cannot be snapshotted (entries expire by wall "
                "time — a restore would resurrect stale records)"
            )
        if self.fault_seed is not None and not (
            self.fault_profile or self.fault_rates
        ):
            raise ConfigError(
                "fault_seed requires a fault plan (fault_profile or "
                "fault_rates); a seed alone injects nothing"
            )
        # Validate eagerly so a bad profile/spec fails at construction,
        # not mid-replay. Deferred import: faults.py must not import
        # config.py back.
        if self.fault_profile or self.fault_rates:
            from repro.replay.faults import resolve_fault_plan

            resolve_fault_plan(self.fault_profile, self.fault_rates)

    @classmethod
    def of(
        cls, config: Union["EngineConfig", FlowDNSConfig, None]
    ) -> "EngineConfig":
        """Normalise what engine constructors accept into an EngineConfig."""
        if config is None:
            return cls()
        if isinstance(config, FlowDNSConfig):
            return cls(flowdns=config)
        return config

    def replace(self, **changes) -> "EngineConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def for_replay_leg(
        cls,
        engine: str,
        shards: Optional[int] = None,
        fill_timeout: Optional[float] = None,
        fault_profile: Optional[str] = None,
        fault_seed: Optional[int] = None,
    ) -> "EngineConfig":
        """Build the config for one programmatic replay leg.

        The sweep driver's (and differential harnesses') equivalent of
        :meth:`from_args`: the same per-engine applicability rules —
        ``shards`` only means anything to the sharded engine,
        ``fill_timeout`` only to the threaded gate, a fault seed needs a
        fault plan — enforced for callers that assemble legs in code
        rather than from flags, so a sweep axis that silently would not
        apply fails loudly instead of producing a misleading row.
        """
        if engine not in ("threaded", "sharded", "async"):
            raise ConfigError(f"unknown replay engine {engine!r}")
        if shards is not None and engine != "sharded":
            raise ConfigError("shards only apply to the sharded engine")
        if fill_timeout is not None and engine != "threaded":
            raise ConfigError(
                "fill_timeout only applies to the threaded engine (the "
                "other engines order DNS before flows without a gate)"
            )
        if fault_seed is not None and fault_profile is None:
            raise ConfigError(
                "fault_seed requires a fault_profile; a seed alone "
                "injects nothing"
            )
        return cls(
            shards=shards,
            fill_timeout=(
                fill_timeout if fill_timeout is not None else DEFAULT_FILL_TIMEOUT
            ),
            fault_profile=fault_profile,
            fault_seed=fault_seed if fault_profile is not None else None,
        )

    # --- CLI flag interpretation ----------------------------------------

    @classmethod
    def from_args(cls, args, command: str) -> "EngineConfig":
        """Build an EngineConfig from a parsed CLI namespace, validating
        per-engine/per-mode flag applicability.

        ``argparse`` keeps ``None`` defaults for every flag whose
        *presence* matters, so this layer — not the CLI — decides what an
        omitted flag means and rejects explicitly-passed flags the
        selected engine or mode would silently ignore. Raises
        :class:`ConfigError` with the operator-facing message; the CLI
        prints it and exits 2.
        """
        engine = "async" if command in ("serve", "capture") else getattr(
            args, "engine", None
        )
        shards = getattr(args, "shards", None)
        if shards is not None:
            if engine != "sharded":
                raise ConfigError("--shards only applies to --engine sharded")
            if shards < 1:
                raise ConfigError("--shards must be at least 1")
        fill_timeout = getattr(args, "fill_timeout", None)
        if fill_timeout is not None and engine != "threaded":
            raise ConfigError(
                "--fill-timeout only applies to --engine threaded (the other "
                "engines order DNS before flows without a gate)"
            )
        speed = getattr(args, "speed", None)
        realtime = bool(getattr(args, "realtime", False))
        if speed is not None:
            if speed <= 0:
                raise ConfigError("--speed must be positive")
            if not realtime:
                raise ConfigError(
                    "--speed only applies to --realtime pacing; pass both"
                )
        ingest_workers = getattr(args, "ingest_workers", None)
        if ingest_workers is not None:
            if ingest_workers < 1:
                raise ConfigError("--ingest-workers must be at least 1")
            if getattr(args, "capture", None):
                raise ConfigError(
                    "--capture cannot tee --ingest-workers: sharded sockets "
                    "receive in worker processes the capture writer cannot see"
                )
        if command == "capture":
            cls._validate_capture_mode(args)
        snapshot_path = getattr(args, "snapshot", None)
        snapshot_interval = getattr(args, "snapshot_interval", None)
        if snapshot_interval is not None:
            if snapshot_path is None:
                raise ConfigError(
                    "--snapshot-interval only applies with --snapshot PATH"
                )
            if snapshot_interval <= 0:
                raise ConfigError("--snapshot-interval must be positive")
        stats_interval = getattr(args, "stats_interval", None)
        if stats_interval is not None and stats_interval < 0:
            raise ConfigError("--stats-interval must be non-negative")
        metrics_port = getattr(args, "metrics_port", None)
        fault_profile = getattr(args, "fault_profile", None)
        fault_rates = getattr(args, "fault", None)
        fault_seed = getattr(args, "fault_seed", None)
        if fault_seed is not None and not (fault_profile or fault_rates):
            raise ConfigError(
                "--fault-seed requires --fault-profile or --fault; a seed "
                "alone injects nothing"
            )
        max_entries = getattr(args, "max_entries", None)
        if max_entries is not None and max_entries < 0:
            raise ConfigError("--max-entries must be non-negative")
        flowdns = FlowDNSConfig(
            num_split=getattr(args, "num_split", DEFAULT_NUM_SPLIT),
            exact_ttl=bool(getattr(args, "exact_ttl", False)),
            max_entries_per_map=max_entries if max_entries is not None else 0,
        )
        host = getattr(args, "host", None)
        flow_port = getattr(args, "flow_port", None)
        dns_port = getattr(args, "dns_port", None)
        duration = getattr(args, "duration", None)
        return cls(
            flowdns=flowdns,
            shards=shards,
            fill_timeout=(
                fill_timeout if fill_timeout is not None else DEFAULT_FILL_TIMEOUT
            ),
            ingest_workers=ingest_workers if ingest_workers is not None else 1,
            host=host if host is not None else DEFAULT_LIVE_HOST,
            flow_port=flow_port if flow_port is not None else DEFAULT_FLOW_PORT,
            dns_port=dns_port if dns_port is not None else DEFAULT_DNS_PORT,
            duration=(
                duration
                if duration is not None
                else (60.0 if command == "capture" else 0.0)
            ),
            realtime=realtime,
            speed=speed if speed is not None else 1.0,
            snapshot_path=snapshot_path,
            snapshot_interval=(
                snapshot_interval if snapshot_interval is not None else 60.0
            ),
            stats_interval=stats_interval if stats_interval is not None else 0.0,
            metrics_port=metrics_port,
            fault_profile=fault_profile,
            fault_rates=tuple(fault_rates) if fault_rates else None,
            fault_seed=fault_seed,
        )

    @staticmethod
    def _validate_capture_mode(args) -> None:
        """``flowdns capture``'s two modes take disjoint options; an
        explicitly-passed flag the selected mode ignores is a mistake."""
        if getattr(args, "scenario", None) is not None:
            passed = [
                flag
                for flag, value in (
                    ("--host", getattr(args, "host", None)),
                    ("--flow-port", getattr(args, "flow_port", None)),
                    ("--dns-port", getattr(args, "dns_port", None)),
                    ("--duration", getattr(args, "duration", None)),
                )
                if value is not None
            ]
            if passed:
                raise ConfigError(
                    f"{'/'.join(passed)} only appl"
                    f"{'ies' if len(passed) == 1 else 'y'} to live capture; "
                    "drop with --scenario"
                )
        elif getattr(args, "seed", None) is not None:
            raise ConfigError("--seed only applies to --scenario synthesis")
