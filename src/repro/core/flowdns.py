"""The FlowDNS facade: the one-object API for embedding the correlator.

The engines (threaded, simulation) own scheduling and reporting; this
facade owns nothing but the correlation state, for callers that already
have their own event loop and just want the paper's core behaviour:

    fd = FlowDNS()
    fd.add_dns(DnsRecord(ts, query, RRType.A, ttl, answer))
    result = fd.correlate(flow)          # CorrelationResult
    fd.service_of("10.1.2.3", now=ts)    # or just ask for an IP

Thread-safe to the same degree the underlying storage is: concurrent
``add_dns``/``correlate`` calls from different threads are fine.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TextIO

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import CorrelationResult, LookUpProcessor
from repro.core.storage_adapter import DnsStorage
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord


class FlowDNS:
    """Stateful DNS↔Netflow correlator (Figure 1 without the plumbing)."""

    def __init__(self, config: Optional[FlowDNSConfig] = None):
        self.config = config if config is not None else FlowDNSConfig()
        self.storage = DnsStorage(self.config)
        self._fillup = FillUpProcessor(self.storage)
        self._lookup = LookUpProcessor(self.storage, self.config)
        # Dedicated probe for service_of(): shares the storage but keeps
        # IP-only probes out of the flow statistics.
        self._probe = LookUpProcessor(self.storage, self.config)

    # --- DNS side -------------------------------------------------------------

    def add_dns(self, record: DnsRecord) -> bool:
        """Insert one DNS stream record; True when it was stored."""
        return self._fillup.process(record)

    def add_dns_many(self, records: Iterable[DnsRecord]) -> int:
        """Insert many records through the batched fast path.

        One rotation check and one lock acquisition per map shard for the
        whole batch; same counters as per-record :meth:`add_dns` calls.
        """
        return self._fillup.process_batch(records)

    def add_dns_message(self, ts: float, payload) -> int:
        """Filter + insert a wire-format response (bytes or DnsMessage)."""
        records = self._fillup.filter_message(ts, payload)
        return self._fillup.process_many(records)

    # --- flow side ------------------------------------------------------------

    def correlate(self, flow: FlowRecord) -> CorrelationResult:
        """Look one flow up; always returns a result (possibly NULL)."""
        return self._lookup.process(flow)

    def correlate_many(self, flows: Iterable[FlowRecord]) -> List[CorrelationResult]:
        """Correlate many flows through the batched fast path.

        Each distinct lookup IP is resolved once for the whole batch (see
        :meth:`LookUpProcessor.correlate_batch` for the exact semantics).
        """
        return self._lookup.correlate_batch(
            flows if isinstance(flows, list) else list(flows)
        )

    def service_of(self, ip, now: float) -> Optional[str]:
        """Resolve one bare IP to its service name (or None).

        Uses the same deepLookUp + CNAME-chain walk as flow processing —
        via a dedicated probe processor, so repeated probes cost no object
        churn and never touch the flow statistics.
        """
        chain = self._probe.resolve(str(ip), now)
        return chain[-1] if chain else None

    # --- maintenance / introspection -------------------------------------------

    def tick(self, ts: float) -> None:
        """Advance time-driven maintenance when no DNS records arrive.

        Rotations normally run off record timestamps inside ``add_dns``;
        a caller whose DNS stream can go quiet should tick with its own
        clock so clear-ups still happen on schedule.
        """
        if self.config.exact_ttl:
            self.storage.tick(ts)
        else:
            self.storage.ip_bank.maybe_clear_up(ts)
            self.storage.cname_bank.maybe_clear_up(ts)

    @property
    def fillup_stats(self):
        return self._fillup.stats

    @property
    def lookup_stats(self):
        return self._lookup.stats

    @property
    def correlation_rate(self) -> float:
        return self._lookup.stats.correlation_rate

    def entry_counts(self):
        return self.storage.entry_counts()

    def save_state(self, sink: TextIO) -> int:
        """Snapshot the DNS maps (see :mod:`repro.storage.snapshot`)."""
        from repro.storage.snapshot import dump_storage

        return dump_storage(self.storage, sink)

    def load_state(self, source: TextIO) -> int:
        from repro.storage.snapshot import load_storage

        return load_storage(self.storage, source)
