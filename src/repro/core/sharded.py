"""ShardedEngine: FlowDNS across worker processes (per-core scaling).

The paper's Go implementation reaches ~1M records/s by spreading workers
over 128 cores against sharded shared maps. CPython's ThreadedEngine
cannot scale past one core — the GIL serialises every worker — so this
engine escapes it with *processes*: the DNS storage is partitioned by
lookup-IP hash across N shards, each shard process owning a complete
FillUp/LookUp/storage stack for its slice of the address space. The
parent routes record batches to shards over IPC and merges the per-shard
counters into one :class:`EngineReport`.

The lane bodies each shard runs — exact-TTL-aware fill, columnar
correlate, summary/report assembly — come from
:mod:`repro.core.pipeline`, shared with the threaded and async engines;
this module owns only the *scheduling policy*: process fan-out, hash
routing, and the batched IPC framing.

Routing invariants (what makes the partition correct):

* A/AAAA records go to the shard that owns their *answer* IP — the same
  hash a flow's lookup IP routes by, so fill and lookup always meet;
* CNAME records are broadcast to every shard: chains are name-keyed and
  may be walked starting from any IP shard;
* flows route by their direction-selected lookup IP. With
  ``FlowDirection.BOTH`` a single flow would need two shards, so that
  mode broadcasts the address records instead — every shard can then
  match either endpoint locally.

IPC is batched (``engine_batch_size`` records per message): a
``multiprocessing.Queue`` pays a pickle plus a pipe write per message,
which at one record per message would dwarf the correlation work itself.
Flow batches additionally cross as *flat primitive columns*
(``FlowBatch.columns()`` — one tuple of lists of floats/ints/strings per
batch) rather than pickled ``FlowRecord`` graphs, so serialisation cost
is per-scalar, not per-object.
Input queues are bounded so a slow shard applies backpressure to the
router instead of buffering the whole input in memory. There are no
bounded drop-counting ingress buffers in this engine, so
``overall_loss_rate`` is always 0 — loss modelling stays with the
threaded and simulation engines.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.labeler import ip_label
from repro.core.lookup import LookUpProcessor
from repro.core.metrics import EngineReport
from repro.core.pipeline import (
    FillLane,
    LookupLane,
    collect_ingest,
    dns_item_records,
    empty_summary,
    extend_flow_batch,
    merge_summaries,
    source_failure_warning,
    stack_summary,
)
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import HEADER, format_batch, format_result
from repro.dns.columnar import DnsBatch, decode_fill_columns
from repro.dns.rr import RRType
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowBatch, FlowDirection
from repro.util.errors import ConfigError

#: Message kinds on the shard input/output queues.
_DNS = 0
_FLOWS = 1
_ROWS = 2
_REPORT = 3
#: A flow batch as flat primitive columns (``FlowBatch.columns()``): the
#: columnar lane's IPC payload — one tuple of lists per batch, no object
#: graph for pickle to walk.
_FLOW_COLS = 4
#: A DNS batch as flat primitive columns (``DnsBatch.columns()``): the
#: fill lane's columnar IPC payload. The router decodes wire payloads
#: once, partitions the rows by answer hash, and ships per-shard column
#: tuples whose message counters are zero — the router already counted
#: messages/invalid/unknowns, shards only store rows.
_DNS_COLS = 5

#: Bounded batches buffered per shard input queue (backpressure depth).
_QUEUE_DEPTH = 16

#: The raw wire value the columnar rtype column stores for CNAME rows.
_CNAME_TYPE = int(RRType.CNAME)


def _shard_worker(shard_id, config, in_queue, out_queue, want_rows) -> None:
    """One shard process: a private lane stack fed by batch messages.

    Runs until the ``None`` sentinel, then reports its counters. Any
    exception is reported back instead of hanging the parent.
    """
    storage = DnsStorage(config)
    fillup = FillUpProcessor(storage)
    lookup = LookUpProcessor(storage, config)
    fill_lane = FillLane(
        fillup, storage, exact_ttl=config.exact_ttl,
        columnar=config.dns_fill_columnar,
    )
    lookup_lane = LookupLane(lookup)
    error: Optional[str] = None
    try:
        while True:
            message = in_queue.get()
            if message is None:
                break
            kind, batch = message
            if kind == _DNS:
                fill_lane.process_records(batch)
            elif kind == _DNS_COLS:
                fill_lane.process_columns(DnsBatch.from_columns(batch))
            elif kind == _FLOW_COLS:
                correlated = lookup_lane.correlate_batch(FlowBatch.from_columns(batch))
                if want_rows and correlated is not None:
                    out_queue.put((_ROWS, format_batch(correlated)))
            else:
                # Object-lane reference path; the parent routes columns,
                # but record batches stay decodable for parity tooling.
                results = lookup.correlate_batch(batch)
                if want_rows:
                    out_queue.put((_ROWS, [format_result(r) for r in results]))
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        # Keep draining until the sentinel: the input queue is bounded, so
        # abandoning it would block the parent's routers forever.
        while in_queue.get() is not None:
            pass
    out_queue.put((_REPORT, stack_summary(
        [fillup], [lookup], storage, shard_id=shard_id, error=error
    )))


class _BatchRouter:
    """Per-source-thread batch accumulator over the shard input queues.

    Each router is owned by exactly one parent thread, so the pending
    buffers need no locking; only the (thread-safe) mp queues are shared.
    Puts poll with a timeout against ``shard_alive`` so a dead shard
    process (whose bounded queue stays full forever) cannot wedge the
    router — its batches are dropped and the drain loop reports the death.
    """

    def __init__(
        self,
        queues: Sequence,
        batch_size: int,
        shard_alive: Optional[Callable[[int], bool]] = None,
    ):
        self._queues = queues
        self._batch_size = batch_size
        self._shard_alive = shard_alive
        self._pending: List[List] = [[] for _ in queues]
        self._dead = [False] * len(queues)

    def _put(self, shard: int, payload) -> None:
        if self._dead[shard]:
            return
        while True:
            if self._shard_alive is not None and not self._shard_alive(shard):
                # Shard died; latch and drop — the drain loop reports it.
                self._dead[shard] = True
                return
            try:
                self._queues[shard].put(payload, timeout=1.0)
                return
            except queue_mod.Full:
                continue

    def send(self, shard: int, payload) -> None:
        """Put one already-assembled message (e.g. a column tuple)."""
        self._put(shard, payload)

    def route(self, kind: int, shard: int, record) -> None:
        pending = self._pending[shard]
        pending.append(record)
        if len(pending) >= self._batch_size:
            self._put(shard, (kind, pending))
            self._pending[shard] = []

    def broadcast(self, kind: int, record) -> None:
        for shard in range(len(self._queues)):
            self.route(kind, shard, record)

    def flush(self, kind: int) -> None:
        for shard, pending in enumerate(self._pending):
            if pending:
                self._put(shard, (kind, pending))
                self._pending[shard] = []

    def close(self, shard: int) -> None:
        self._put(shard, None)


class ShardedEngine:
    """Run FlowDNS across ``num_shards`` worker processes."""

    def __init__(
        self,
        config: Optional[FlowDNSConfig | EngineConfig] = None,
        sink: Optional[TextIO] = None,
        num_shards: Optional[int] = None,
    ):
        self.engine_config = EngineConfig.of(config)
        self.config = self.engine_config.flowdns
        self.sink = sink
        # Explicit num_shards wins over the config's; neither → one shard
        # per core, the paper's deployment default.
        if num_shards is None:
            num_shards = self.engine_config.shards
        shards = num_shards if num_shards is not None else mp.cpu_count()
        if shards < 1:
            raise ConfigError("num_shards must be at least 1")
        self.num_shards = shards
        self._dns_records_seen = 0
        # Router-side decode accounting: the wire filter and the flow
        # collectors live in the parent's routing threads, not the
        # shards, so their failure counts must be accumulated here to
        # reach the report (dns_invalid / flow_decode_errors).
        self._dns_invalid = 0
        self._flow_decode_errors = 0
        self._dns_count_lock = threading.Lock()

    # --- parent-side routing --------------------------------------------------

    def _route_dns(self, source: Iterable, router: _BatchRouter) -> None:
        """Feed one DNS source: filter, count, and shard its records.

        Wire payloads take the columnar lane: batches of raw payloads
        decode once (in the router, where the wire filter has always
        lived) via :func:`decode_fill_columns`, rows partition into
        per-shard :class:`DnsBatch` accumulators by the same answer
        hash the record path routes on (CNAME rows broadcast — chains
        are name-keyed and may be walked from any shard), and each full
        accumulator crosses IPC as one flat column tuple. Non-wire
        items (records, decoded messages) keep the object path; runs
        flush on kind switches so every shard queue preserves arrival
        order. Exact-TTL runs stay entirely on the record path — the
        shards' per-record store+sweep cadence is the A.8 subject.
        """
        broadcast_addresses = self.config.direction is FlowDirection.BOTH
        num_shards = self.num_shards
        cname_type = _CNAME_TYPE
        columnar = self.config.dns_fill_columnar and not self.config.exact_ttl
        batch_size = self.config.engine_batch_size
        # A storage-less processor gives us the same wire filter the
        # threaded engine applies; it only ever touches its stats here.
        dns_filter = FillUpProcessor(storage=None)
        payloads: List = []
        stamps: List[float] = []
        pending_cols = [DnsBatch() for _ in range(num_shards)]
        seen = 0

        def flush_columns() -> None:
            """Decode the pending wire run and partition its rows."""
            nonlocal seen
            if not payloads:
                return
            batch = decode_fill_columns(payloads, stamps)
            payloads.clear()
            stamps.clear()
            seen += len(batch)
            # The router is where the wire filter lives; its stats stay
            # truthful whichever decode path a run takes.
            stats = dns_filter.stats
            stats.raw_messages += batch.messages
            stats.invalid += batch.invalid
            stats.records_unknown_type += batch.unknown_records
            rtypes = batch.rtype
            answers = batch.rdata_text
            for i in range(len(rtypes)):
                if rtypes[i] == cname_type or broadcast_addresses:
                    targets = range(num_shards)
                else:
                    targets = (ip_label(answers[i]) % num_shards,)
                for shard in targets:
                    accumulator = pending_cols[shard]
                    accumulator.append_from(batch, i)
                    if len(accumulator) >= batch_size:
                        router.send(shard, (_DNS_COLS, accumulator.columns()))
                        pending_cols[shard] = DnsBatch()

        def ship_partials() -> None:
            """Send every non-empty per-shard accumulator."""
            for shard, accumulator in enumerate(pending_cols):
                if len(accumulator):
                    router.send(shard, (_DNS_COLS, accumulator.columns()))
                    pending_cols[shard] = DnsBatch()

        try:
            for item in source:
                if (
                    columnar
                    and type(item) is tuple
                    and len(item) == 2
                    and isinstance(item[1], (bytes, bytearray, memoryview))
                ):
                    # Entering a wire run: object-path batches already
                    # routed must hit the queues first (order matters for
                    # overwrites and clear-up boundaries).
                    router.flush(_DNS)
                    stamps.append(item[0])
                    payloads.append(item[1])
                    if len(payloads) >= batch_size:
                        flush_columns()
                    continue
                flush_columns()
                ship_partials()
                for record in dns_item_records(item, dns_filter):
                    seen += 1
                    if record.is_cname or (record.is_address and broadcast_addresses):
                        router.broadcast(_DNS, record)
                    elif record.is_address:
                        router.route(_DNS, ip_label(record.answer) % num_shards, record)
                    # Other record types are counted (parity with the threaded
                    # engine's records_in) but never stored — no IPC for them.
        finally:
            # Also on a raising source: records already routed must reach
            # their shards, and the router-side count stays truthful.
            flush_columns()
            ship_partials()
            router.flush(_DNS)
            with self._dns_count_lock:
                self._dns_records_seen += seen
                self._dns_invalid += dns_filter.stats.invalid

    def _route_flows(self, source: Iterable, router: _BatchRouter) -> None:
        """Feed one flow source: decode to columns and shard by lookup IP.

        The columnar lane: datagrams decode via ``ingest_columns``, rows
        partition into per-shard :class:`FlowBatch` accumulators keyed on
        the direction-selected interned IP *text* (``ip_label`` hashes the
        same packed bytes either way, so the partition matches the DNS
        side's), and each full accumulator crosses IPC as one flat column
        tuple — pickle never walks a record object graph.
        """
        direction = self.config.direction
        use_src = direction in (FlowDirection.SOURCE, FlowDirection.BOTH)
        num_shards = self.num_shards
        batch_size = self.config.engine_batch_size
        collector = FlowCollector()
        pending = [FlowBatch() for _ in range(num_shards)]

        try:
            for item in source:
                # The same item normalisation every lookup lane uses, one
                # stream item at a time so routing interleaves with decode
                # (whole batches route in place, no intermediate copy).
                if isinstance(item, FlowBatch):
                    batch = item
                else:
                    batch = FlowBatch()
                    extend_flow_batch(batch, item, collector)
                keys = batch.src_ip_text if use_src else batch.dst_ip_text
                for i in range(len(batch)):
                    shard = ip_label(keys[i]) % num_shards
                    accumulator = pending[shard]
                    accumulator.append_from(batch, i)
                    if len(accumulator) >= batch_size:
                        router.send(shard, (_FLOW_COLS, accumulator.columns()))
                        pending[shard] = FlowBatch()
        finally:
            # Also on a raising source: rows already routed into the
            # accumulators were received before the failure and must
            # reach their shards, like the other engines' buffers.
            for shard, accumulator in enumerate(pending):
                if len(accumulator):
                    router.send(shard, (_FLOW_COLS, accumulator.columns()))
            with self._dns_count_lock:
                self._flow_decode_errors += (
                    collector.stats.malformed + collector.stats.unknown_version
                )

    def _drain_output(self, out_queue, reports: List[Dict], workers) -> None:
        """Write result rows as they arrive; stop after every shard reports.

        A shard process that dies without reporting (OOM kill, hard crash)
        gets a synthetic error report so the run fails loudly instead of
        hanging on a report that will never come.
        """
        def handle(kind, payload) -> None:
            if kind == _REPORT:
                reports.append(payload)
            elif self.sink is not None:
                for row in payload:
                    self.sink.write(row)

        while len(reports) < self.num_shards:
            try:
                kind, payload = out_queue.get(timeout=1.0)
            except queue_mod.Empty:
                # Close the report-in-flight window before declaring a
                # death: a shard may have flushed its report to the pipe
                # in the instant the blocking get timed out.
                try:
                    while True:
                        kind, payload = out_queue.get_nowait()
                        handle(kind, payload)
                except queue_mod.Empty:
                    pass
                reported = {r["shard"] for r in reports}
                for shard, worker in enumerate(workers):
                    if shard in reported:
                        continue
                    if worker.ident is not None and not worker.is_alive():
                        reports.append(empty_summary(
                            shard,
                            f"shard process died without reporting "
                            f"(exitcode {worker.exitcode})",
                        ))
                continue
            handle(kind, payload)

    # --- orchestration --------------------------------------------------------

    def run(
        self,
        dns_sources: Sequence[Iterable],
        flow_sources: Sequence[Iterable],
        dns_first: bool = False,
    ) -> EngineReport:
        """Run the sharded pipeline until every source is drained.

        By default DNS and flow sources are routed concurrently, like the
        threaded engine's receivers, so mid-stream matching is timing
        dependent. With ``dns_first=True`` every DNS batch is enqueued
        before any flow routing starts; each shard's input queue is FIFO,
        so all DNS records are stored before the first flow correlates —
        the deterministic offline-replay mode the CLI uses.
        """
        ctx = mp.get_context()
        in_queues = [ctx.Queue(maxsize=_QUEUE_DEPTH) for _ in range(self.num_shards)]
        out_queue = ctx.Queue()
        want_rows = self.sink is not None
        if want_rows:
            self.sink.write(HEADER)
        workers = [
            ctx.Process(
                target=_shard_worker,
                args=(i, self.config, in_queues[i], out_queue, want_rows),
                daemon=True,
            )
            for i in range(self.num_shards)
        ]
        for worker in workers:
            worker.start()

        self._dns_records_seen = 0
        self._dns_invalid = 0
        self._flow_decode_errors = 0
        batch_size = self.config.engine_batch_size

        def shard_alive(shard: int) -> bool:
            return workers[shard].is_alive()

        source_errors: List[Tuple[str, BaseException]] = []

        def spawn(target, source, name):
            router = _BatchRouter(in_queues, batch_size, shard_alive=shard_alive)

            def body():
                try:
                    target(source, router)
                except Exception as exc:
                    # A failing source ends its routing thread; whatever
                    # was routed before the failure still correlates, and
                    # the failure surfaces in EngineReport.warnings (same
                    # contract as the threaded and async engines).
                    source_errors.append((name, exc))

            return threading.Thread(target=body, daemon=True)

        dns_threads = [
            spawn(self._route_dns, src, f"dns[{i}]")
            for i, src in enumerate(dns_sources)
        ]
        flow_threads = [
            spawn(self._route_flows, src, f"netflow[{i}]")
            for i, src in enumerate(flow_sources)
        ]

        reports: List[Dict] = []
        drain = threading.Thread(
            target=self._drain_output,
            args=(out_queue, reports, workers),
            daemon=True,
        )
        drain.start()

        if dns_first:
            # Phase barrier: every DNS batch (including the final partial
            # flushes) is on the shard queues before flow routing begins.
            for thread in dns_threads:
                thread.start()
            for thread in dns_threads:
                thread.join()
            for thread in flow_threads:
                thread.start()
        else:
            for thread in dns_threads + flow_threads:
                thread.start()
        for thread in dns_threads + flow_threads:
            thread.join()
        sentinel_router = _BatchRouter(in_queues, 1, shard_alive=shard_alive)
        for shard in range(self.num_shards):
            sentinel_router.close(shard)
        drain.join()
        for worker in workers:
            worker.join(timeout=30.0)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()
        for in_queue in in_queues:
            # A dead shard leaves undelivered batches in its queue; without
            # this, the queue's feeder thread blocks interpreter exit
            # trying to flush a pipe nobody will ever read.
            in_queue.cancel_join_thread()
            in_queue.close()

        failures = [r["error"] for r in reports if r.get("error")]
        if failures:
            raise RuntimeError(f"shard worker failed: {failures[0]}")
        report = merge_summaries(
            reports,
            variant_name="sharded",
            dns_records=self._dns_records_seen,
            dns_invalid=self._dns_invalid,
            # Address records are broadcast in BOTH mode, so every shard
            # observes the same IP-key overwrites; summing would multiply
            # the count by num_shards.
            broadcast_overwrites=self.config.direction is FlowDirection.BOTH,
        )
        report.flow_decode_errors = self._flow_decode_errors
        report.overall_loss_rate = 0.0
        for name, exc in source_errors:
            report.warnings.append(source_failure_warning(name, exc))
        collect_ingest(report, list(dns_sources) + list(flow_sources))
        return report
