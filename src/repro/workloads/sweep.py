"""Parameter-sweep harness over generated workloads.

``run_many`` for the synthetic generator: take a cartesian grid —
client count × Zipf exponent × CNAME-chain depth on the workload side,
engine × fault profile on the replay side — generate each point's
capture once (streaming, via :mod:`repro.workloads.generator`), replay
it through every requested engine/fault leg with
:func:`repro.replay.runner.replay_capture`, assert the accounting
invariants from :mod:`repro.core.invariants` on every report, and
collect one row of throughput / loss / match-rate numbers per
(config, leg). Rows land in the bench JSON under
``workload_sweep_rows`` so CI trends them alongside the other
benchmarks.

A sweep is the repo's honest scale claim: every number in the row set
comes from wire bytes that went through the same decode → fill →
correlate path production traffic would.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from io import StringIO
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import EngineConfig
from repro.core.invariants import assert_invariants
from repro.replay.runner import REPLAY_ENGINES, replay_capture
from repro.util.benchio import record_bench
from repro.util.errors import ConfigError
from repro.workloads.generator import GeneratorParams, WorkloadGenerator

#: Bench-JSON key the sweep's row list is recorded under.
SWEEP_BENCH_KEY = "workload_sweep_rows"


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: workload axes × replay legs over a shared base config.

    ``fault_profiles`` may contain ``None`` for the fault-free baseline
    leg (the default). Replay-leg knobs (``shards``, ``fill_timeout``)
    follow :meth:`EngineConfig.for_replay_leg` applicability rules —
    they are applied only to the engines they mean something to, and the
    spec rejects combinations that would silently not apply.
    """

    # --- workload axes ---------------------------------------------------
    clients: Tuple[int, ...] = (2000,)
    zipf_alphas: Tuple[float, ...] = (0.9,)
    chain_depths: Tuple[int, ...] = (4,)
    # --- replay legs -----------------------------------------------------
    engines: Tuple[str, ...] = REPLAY_ENGINES
    fault_profiles: Tuple[Optional[str], ...] = (None,)
    # --- shared workload base --------------------------------------------
    base: GeneratorParams = field(default_factory=GeneratorParams)
    # --- replay-leg knobs ------------------------------------------------
    shards: Optional[int] = None
    fill_timeout: Optional[float] = None
    fault_seed: Optional[int] = None

    def __post_init__(self):
        for name, axis in (
            ("clients", self.clients),
            ("zipf_alphas", self.zipf_alphas),
            ("chain_depths", self.chain_depths),
            ("engines", self.engines),
            ("fault_profiles", self.fault_profiles),
        ):
            if not axis:
                raise ConfigError(f"sweep axis {name} is empty")
        for engine in self.engines:
            if engine not in REPLAY_ENGINES:
                raise ConfigError(
                    f"unknown replay engine {engine!r}; choose from "
                    f"{REPLAY_ENGINES}"
                )
        if self.shards is not None and "sharded" not in self.engines:
            raise ConfigError("shards only apply when the sweep includes "
                              "the sharded engine")
        if self.fill_timeout is not None and "threaded" not in self.engines:
            raise ConfigError("fill_timeout only applies when the sweep "
                              "includes the threaded engine")
        if self.fault_seed is not None and tuple(self.fault_profiles) == (None,):
            raise ConfigError(
                "fault_seed requires at least one fault profile leg; a "
                "seed alone injects nothing"
            )
        # Validate every replay leg and workload point eagerly: a sweep
        # that would die on its last cell hours in is a wasted run.
        for engine in self.engines:
            for profile in self.fault_profiles:
                self.leg_config(engine, profile)
        for params in sweep_points(self):
            _ = params  # GeneratorParams validates in __post_init__

    def leg_config(self, engine: str, fault_profile: Optional[str]) -> EngineConfig:
        """The :class:`EngineConfig` for one (engine, fault profile) leg."""
        return EngineConfig.for_replay_leg(
            engine,
            shards=self.shards if engine == "sharded" else None,
            fill_timeout=self.fill_timeout if engine == "threaded" else None,
            fault_profile=fault_profile,
            fault_seed=self.fault_seed if fault_profile is not None else None,
        )

    @classmethod
    def from_args(cls, args) -> "SweepSpec":
        """Build a spec from a parsed CLI namespace (presence-validated)."""
        base = GeneratorParams.from_args(_BaseArgs(args))
        overrides: Dict[str, object] = {"base": base}
        for flag, fname, cast in (
            ("clients_axis", "clients", int),
            ("zipf_axis", "zipf_alphas", float),
            ("depth_axis", "chain_depths", int),
        ):
            values = getattr(args, flag, None)
            if values is not None:
                overrides[fname] = tuple(cast(v) for v in values)
        engines = getattr(args, "engines", None)
        if engines is not None:
            overrides["engines"] = tuple(engines)
        profiles = getattr(args, "fault_profiles", None)
        if profiles is not None:
            overrides["fault_profiles"] = tuple(
                None if p in ("none", "") else p for p in profiles
            )
        for flag in ("shards", "fill_timeout", "fault_seed"):
            value = getattr(args, flag, None)
            if value is not None:
                overrides[flag] = value
        return cls(**overrides)


class _BaseArgs:
    """Adapter exposing a sweep namespace's *base* workload flags to
    :meth:`GeneratorParams.from_args` while hiding the axis flags (the
    axes, not the base, own clients/zipf/chain-depth in a sweep)."""

    _AXIS_OWNED = ("clients", "zipf_alpha", "chain_depth")

    def __init__(self, args):
        self._args = args

    def __getattr__(self, name):
        if name in self._AXIS_OWNED:
            return None
        return getattr(self._args, name, None)


def sweep_points(spec: SweepSpec) -> List[GeneratorParams]:
    """The cartesian workload grid, one :class:`GeneratorParams` each.

    Order is deterministic: clients outermost, then Zipf exponent, then
    chain depth — so row order (and every derived seed) is stable for a
    given spec.
    """
    points = []
    for clients in spec.clients:
        for alpha in spec.zipf_alphas:
            for depth in spec.chain_depths:
                points.append(
                    replace(
                        spec.base,
                        clients=clients,
                        zipf_alpha=alpha,
                        chain_depth=depth,
                    )
                )
    return points


def _point_label(params: GeneratorParams) -> str:
    return (
        f"c{params.clients}-a{params.zipf_alpha:g}-d{params.chain_depth}"
    )


def run_sweep(
    spec: SweepSpec,
    out_dir: str,
    bench_path: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    keep_captures: bool = False,
) -> List[Dict[str, object]]:
    """Run the whole sweep; returns (and bench-records) the row list.

    Each grid point's capture is generated once into ``out_dir`` and
    replayed through every (engine, fault profile) leg. Every report
    must pass :func:`assert_invariants` — for fault-free legs also the
    row-count check against the sink — before its row is recorded, so a
    sweep cannot quietly produce numbers from a run that lost
    accounting. Captures are deleted as soon as their legs finish unless
    ``keep_captures`` is set.
    """
    os.makedirs(out_dir, exist_ok=True)
    say = log if log is not None else (lambda message: None)
    rows: List[Dict[str, object]] = []
    points = sweep_points(spec)
    legs = [(e, p) for e in spec.engines for p in spec.fault_profiles]
    say(f"sweep: {len(points)} workload points x {len(legs)} legs")

    for params in points:
        label = _point_label(params)
        capture_path = os.path.join(out_dir, f"sweep-{label}.fdc")
        gen_report = WorkloadGenerator(params).write(capture_path)
        say(
            f"[{label}] generated {gen_report.flows} flows "
            f"({gen_report.flows_per_sec:,.0f}/s, "
            f"peak {gen_report.peak_pending} pending)"
        )
        try:
            for engine, profile in legs:
                config = spec.leg_config(engine, profile)
                sink = StringIO()
                # Wall-clock the replay here: EngineReport.duration is
                # the *simulated* span (only the simulation engine sets
                # it); a live replay's throughput is flows over real
                # elapsed time.
                leg_start = time.perf_counter()
                report = replay_capture(capture_path, engine, config, sink)
                leg_elapsed = time.perf_counter() - leg_start
                out_rows = sum(
                    1
                    for line in sink.getvalue().splitlines()
                    if line and not line.startswith("#")
                )
                if profile is None:
                    # Fault-free: every emitted row must be accounted for.
                    assert_invariants(report, rows=out_rows)
                else:
                    assert_invariants(report)
                delivered = report.flow_records
                matched = report.matched_flows
                rows.append(
                    {
                        "clients": params.clients,
                        "zipf_alpha": params.zipf_alpha,
                        "chain_depth": params.chain_depth,
                        "engine": engine,
                        "fault_profile": profile if profile else "none",
                        "generated_flows": gen_report.flows,
                        "gen_flows_per_sec": round(gen_report.flows_per_sec),
                        "delivered_flows": delivered,
                        "output_rows": out_rows,
                        "replay_flows_per_sec": (
                            round(delivered / leg_elapsed)
                            if leg_elapsed > 0
                            else 0
                        ),
                        "match_rate": (
                            round(matched / delivered, 6) if delivered else 0.0
                        ),
                        "loss_rate": round(
                            max(0.0, 1.0 - delivered / gen_report.flows), 6
                        )
                        if gen_report.flows
                        else 0.0,
                    }
                )
                say(
                    f"[{label}] {engine}/{profile or 'none'}: "
                    f"{delivered} delivered, match "
                    f"{rows[-1]['match_rate']:.3f}, loss "
                    f"{rows[-1]['loss_rate']:.3f}"
                )
        finally:
            if not keep_captures and os.path.exists(capture_path):
                os.unlink(capture_path)

    record_bench(SWEEP_BENCH_KEY, rows, path=bench_path)
    return rows
