"""Diurnal traffic shape.

Figures 2 and 4 show the classic eyeball-ISP pattern: "daily peaks in the
evening period, a low time during night hours, and an increase during the
day". The shape here is a smooth two-harmonic curve with its maximum at
~21:00 local time and minimum at ~04:30, normalised so its *mean* over a
day is 1.0 — a preset's nominal rate is therefore the daily average, as
the paper's "75K DNS records per second on average" is.
"""

from __future__ import annotations

import math

SECONDS_PER_DAY = 86400.0


class DiurnalPattern:
    """Multiplicative rate modulation as a function of time-of-day."""

    def __init__(self, amplitude: float = 0.45, peak_hour: float = 21.0, skew: float = 0.18):
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        self.amplitude = amplitude
        self.peak_hour = peak_hour
        self.skew = skew

    def factor(self, ts: float) -> float:
        """Rate multiplier at UNIX time ``ts`` (mean over a day ≈ 1.0)."""
        hour_angle = 2.0 * math.pi * ((ts % SECONDS_PER_DAY) / SECONDS_PER_DAY)
        peak_angle = 2.0 * math.pi * (self.peak_hour / 24.0)
        base = math.cos(hour_angle - peak_angle)
        # Second harmonic flattens the daytime plateau without moving the
        # mean (its integral over a day is zero as well).
        second = math.cos(2.0 * (hour_angle - peak_angle))
        return max(0.05, 1.0 + self.amplitude * base + self.skew * second)

    def rate_at(self, base_rate: float, ts: float) -> float:
        return base_rate * self.factor(ts)


class FlatPattern(DiurnalPattern):
    """No modulation — for tests that need constant-rate streams."""

    def __init__(self) -> None:
        super().__init__(amplitude=0.0, skew=0.0)

    def factor(self, ts: float) -> float:
        return 1.0
