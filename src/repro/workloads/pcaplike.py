"""Two-website capture synthesiser for the Section 4 accuracy experiment.

The paper's small-scale accuracy analysis: "We browse two different
websites and capture the traffic … We consider two scenarios: (1) Two
websites with different domain names and different IP addresses. (2) Two
websites with different domain names, using the same IP address." The
result: 100 % accuracy in scenario 1, 50 % in scenario 2 (the second
site's A record overwrites the first in the IP-keyed hashmap).

:func:`two_site_capture` produces the equivalent of that capture — DNS
records and flow records for two labelled sites — plus the ground truth
needed to compute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord
from repro.util.rng import derive_rng


@dataclass
class TwoSiteCapture:
    """A synthetic browse-two-websites capture with ground truth."""

    dns_records: List[DnsRecord]
    flow_records: List[FlowRecord]
    #: flow index → the domain the traffic actually belongs to.
    truth: Dict[int, str]
    site_a: str
    site_b: str

    def accuracy_of(self, predicted: List[str]) -> float:
        """Fraction of flow *bytes* attributed to the correct site."""
        if len(predicted) != len(self.flow_records):
            raise ValueError("one prediction per flow required")
        correct = 0
        total = 0
        for idx, flow in enumerate(self.flow_records):
            total += flow.bytes_
            if predicted[idx] == self.truth[idx]:
                correct += flow.bytes_
        return correct / total if total else 0.0


def two_site_capture(
    same_ip: bool,
    seed: int = 3,
    flows_per_site: int = 20,
    site_a: str = "alpha-news.example",
    site_b: str = "beta-shop.example",
) -> TwoSiteCapture:
    """Build the scenario-1 (``same_ip=False``) or scenario-2 capture.

    Browsing order matches the paper's setup: site A is visited first,
    site B second, then traffic to both continues — so in the same-IP
    scenario B's record has already overwritten A's by the time the
    flows are correlated.
    """
    rng = derive_rng(seed, f"two-site-{same_ip}")
    ip_a = "203.0.113.10"
    ip_b = ip_a if same_ip else "203.0.113.20"

    dns = [
        DnsRecord(ts=1.0, query=site_a, rtype=RRType.A, ttl=300, answer=ip_a),
        DnsRecord(ts=2.0, query=site_b, rtype=RRType.A, ttl=300, answer=ip_b),
    ]

    flows: List[FlowRecord] = []
    truth: Dict[int, str] = {}
    t = 3.0
    client = "100.64.9.1"
    order: List[Tuple[str, str]] = []
    for _ in range(flows_per_site):
        order.append((site_a, ip_a))
        order.append((site_b, ip_b))
    rng.shuffle(order)
    for site, ip in order:
        t += rng.uniform(0.05, 0.4)
        truth[len(flows)] = site
        flows.append(
            FlowRecord(
                ts=t,
                src_ip=ip,
                dst_ip=client,
                src_port=443,
                dst_port=49152 + rng.randrange(1000),
                protocol=6,
                packets=rng.randrange(2, 40),
                bytes_=rng.randrange(2_000, 150_000),
            )
        )
    return TwoSiteCapture(
        dns_records=dns,
        flow_records=flows,
        truth=truth,
        site_a=site_a,
        site_b=site_b,
    )
