"""Synthetic workloads: the paper's proprietary ISP data, rebuilt.

The reproduction cannot use the paper's live ISP streams, so this
subpackage generates statistically matched substitutes (see DESIGN.md's
substitution table):

* :func:`large_isp` / :func:`small_isp` — the two deployments of
  Section 2, as lazy timestamp-ordered DNS + Netflow streams;
* :func:`two_site_capture` — the Section 4 accuracy experiment's
  browse-two-websites capture;
* :class:`TtlModel`, :class:`DiurnalPattern`, :class:`CdnHosting`,
  :func:`build_universe` — the building blocks, exposed for custom
  workloads;
* :class:`WorkloadGenerator` / :func:`generate_capture` — the
  internet-scale streaming ``.fdc`` generator (Zipf popularity,
  heavy-tailed flow sizes, Poisson arrivals) and
  :class:`SweepSpec` / :func:`run_sweep` — the parameter-sweep harness
  that replays a generated grid through the live engines.
"""

from repro.workloads.cdn import CdnHosting, CdnProvider, Resolution, default_providers
from repro.workloads.diurnal import DiurnalPattern, FlatPattern
from repro.workloads.domains import (
    CHAIN_LENGTH_WEIGHTS,
    DomainUniverse,
    ServiceSpec,
    build_universe,
    chain_weights_for_depth,
)
from repro.workloads.generator import (
    SIZE_CDFS,
    TTL_PROFILES,
    GeneratorParams,
    GeneratorReport,
    SizeCdf,
    WorkloadGenerator,
    generate_capture,
)
from repro.workloads.isp import (
    ISP_RESOLVER_IPS,
    PUBLIC_RESOLVER_FRACTION,
    PUBLIC_RESOLVER_IPS,
    IspWorkload,
    LagModel,
    large_isp,
    small_isp,
)
from repro.workloads.malicious import (
    PAPER_DBL_COUNTS_PER_MILLION,
    PAPER_MALFORMED_FRACTION,
    AbusePopulation,
    build_abuse_population,
    malformed_name,
)
from repro.workloads.pcaplike import TwoSiteCapture, two_site_capture
from repro.workloads.sweep import SweepSpec, run_sweep, sweep_points
from repro.workloads.ttl_model import TtlModel

__all__ = [
    "IspWorkload",
    "LagModel",
    "large_isp",
    "small_isp",
    "two_site_capture",
    "TwoSiteCapture",
    "CdnHosting",
    "CdnProvider",
    "Resolution",
    "default_providers",
    "DiurnalPattern",
    "FlatPattern",
    "DomainUniverse",
    "ServiceSpec",
    "build_universe",
    "chain_weights_for_depth",
    "CHAIN_LENGTH_WEIGHTS",
    "GeneratorParams",
    "GeneratorReport",
    "SizeCdf",
    "SIZE_CDFS",
    "TTL_PROFILES",
    "WorkloadGenerator",
    "generate_capture",
    "SweepSpec",
    "run_sweep",
    "sweep_points",
    "TtlModel",
    "AbusePopulation",
    "build_abuse_population",
    "malformed_name",
    "PAPER_DBL_COUNTS_PER_MILLION",
    "PAPER_MALFORMED_FRACTION",
    "PUBLIC_RESOLVER_FRACTION",
    "PUBLIC_RESOLVER_IPS",
    "ISP_RESOLVER_IPS",
]
