"""ISP workload presets: the paper's two deployments as synthetic streams.

:class:`IspWorkload` turns a :class:`DomainUniverse` + CDN hosting into
two timestamp-ordered record streams with the statistical structure the
paper's evaluation depends on:

* resolutions arrive Poisson with the diurnal rate shape of Figure 2;
* flows reference *past* resolutions with a lag distribution in which
  most traffic follows the resolution immediately (within the TTL), a
  cached share arrives anywhere in the TTL window, and a small stale
  tail arrives after TTL expiry (multi-level resolver caching) — this
  tail is precisely what separates Main / NoClearUp / NoRotation /
  NoLong correlation rates (Figure 7);
* 1 in 20 resolutions is invisible (client used a public resolver) —
  Section 4's 95 % coverage;
* a non-DNS background carries the remaining byte share, including
  port-53/853 flows toward ISP and public resolvers for the coverage
  analysis.

Both streams are lazy generators, deterministic in the seed, and can be
re-created independently (``dns_records()`` and ``flow_records()``
regenerate the same resolution sequence internally), so week-long
replays never materialise the whole workload in memory.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.labeler import name_label
from repro.core.metrics import CostModelParams
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError
from repro.util.rng import derive_rng
from repro.workloads.cdn import CdnHosting, Resolution, default_providers
from repro.workloads.diurnal import DiurnalPattern
from repro.workloads.domains import DomainUniverse, build_universe
from repro.workloads.ttl_model import TtlModel

#: 1 of every 20 DNS packets goes to a public resolver (Section 4).
PUBLIC_RESOLVER_FRACTION = 0.05

#: ISP-side resolver addresses (the default resolvers clients use).
ISP_RESOLVER_IPS = ("10.255.0.53", "10.255.1.53")

#: Public resolvers clients bypass the ISP with. Kept in sync with
#: repro.analysis.public_resolvers (tests enforce the overlap).
PUBLIC_RESOLVER_IPS = ("1.1.1.1", "8.8.8.8", "8.8.4.4", "9.9.9.9", "208.67.222.222")

#: Client (subscriber) address pool — CGNAT space.
CLIENT_PREFIX = "100.64"

#: Non-DNS background sources (peer-to-peer, direct-IP, legacy) — space
#: disjoint from every CDN pool so it can never correlate.
BACKGROUND_SOURCE_PREFIX = "172.16"


@dataclass
class LagModel:
    """How long after its resolution a flow's bytes arrive.

    ``immediate`` flows start right away (session setup); ``cached``
    flows arrive uniformly within the record's TTL (the client resolved
    once and keeps using the answer); ``stale`` flows arrive after TTL
    expiry — resolver multi-level caching means traffic legitimately
    outlives the record, the effect FlowDNS's rotation buffer exists to
    absorb.
    """

    immediate_fraction: float = 0.76
    cached_fraction: float = 0.19
    stale_mean_extra: float = 5600.0
    stale_cap: float = 9.0 * 3600.0
    #: Origin-hosted services skew heavily toward cached/stale arrivals:
    #: one resolution, then hours of transfer (and nobody else's
    #: resolution refreshes their dedicated IP).
    origin_immediate_fraction: float = 0.45
    origin_cached_fraction: float = 0.25

    def sample(self, rng: random.Random, ttl: float, origin: bool = False) -> float:
        immediate = self.origin_immediate_fraction if origin else self.immediate_fraction
        cached = self.origin_cached_fraction if origin else self.cached_fraction
        x = rng.random()
        if x < immediate:
            return rng.uniform(0.5, max(1.0, min(ttl, 600.0)))
        if x < immediate + cached:
            return rng.uniform(0.5, max(1.0, ttl))
        extra = rng.expovariate(1.0 / self.stale_mean_extra)
        return min(max(ttl, 300.0) + extra, self.stale_cap)


class IspWorkload:
    """One deployment's synthetic DNS + Netflow streams."""

    def __init__(
        self,
        universe: DomainUniverse,
        hosting: CdnHosting,
        seed: int,
        duration: float,
        resolution_rate: float,
        flow_rate_per_resolution: float = 2.6,
        background_byte_fraction: float = 0.12,
        public_resolver_fraction: float = PUBLIC_RESOLVER_FRACTION,
        lag_model: Optional[LagModel] = None,
        diurnal: Optional[DiurnalPattern] = None,
        warmup: float = 7200.0,
        t0: float = 0.0,
        mean_bytes_per_resolution: float = 2_000_000.0,
        cost_params: Optional[CostModelParams] = None,
        dns_port_flow_multiplier: float = 1.0,
        worker_count: int = 8,
    ):
        if duration <= 0:
            raise ConfigError("duration must be positive")
        if resolution_rate <= 0:
            raise ConfigError("resolution_rate must be positive")
        if not 0.0 <= background_byte_fraction < 1.0:
            raise ConfigError("background_byte_fraction must be in [0, 1)")
        self.universe = universe
        self.hosting = hosting
        self.seed = seed
        self.duration = float(duration)
        self.resolution_rate = float(resolution_rate)
        self.flow_rate_per_resolution = flow_rate_per_resolution
        self.background_byte_fraction = background_byte_fraction
        self.public_resolver_fraction = public_resolver_fraction
        self.lag_model = lag_model if lag_model is not None else LagModel()
        self.diurnal = diurnal if diurnal is not None else DiurnalPattern()
        self.warmup = float(warmup)
        self.t0 = float(t0)
        self.cost_params = cost_params if cost_params is not None else CostModelParams()
        self.dns_port_flow_multiplier = dns_port_flow_multiplier
        self.worker_count = worker_count
        # Per-service mean bytes per resolution, normalised so the
        # popularity-weighted mean equals ``mean_bytes_per_resolution``.
        total_pop = sum(s.popularity for s in universe.services)
        weighted = sum(s.byte_weight for s in universe.services) / total_pop
        self._bytes_scale = mean_bytes_per_resolution / weighted

    # --- resolution process ---------------------------------------------------

    def _resolutions(self) -> Iterator[Resolution]:
        """The shared resolution event sequence (deterministic in seed)."""
        rng = derive_rng(self.seed, "resolutions")
        t = self.t0 - self.warmup
        end = self.t0 + self.duration
        while True:
            rate = self.diurnal.rate_at(self.resolution_rate, t)
            t += rng.expovariate(rate)
            if t >= end:
                return
            service = self.universe.sample_service(rng)
            visible = rng.random() >= self.public_resolver_fraction
            yield self.hosting.resolve(service, t, rng, visible=visible)

    # --- DNS stream -----------------------------------------------------------

    def dns_records(self) -> Iterator[DnsRecord]:
        """The DNS cache-miss stream (visible resolutions only)."""
        for resolution in self._resolutions():
            if resolution.visible:
                yield from resolution.records()

    def dns_record_streams(self, n_streams: int) -> List[Iterator[DnsRecord]]:
        """Shard the DNS stream the way the ISP's load balancer does."""
        return _shard_stream(self.dns_records, n_streams, key=lambda r: hash(r.answer))

    # --- flow stream ----------------------------------------------------------

    def _flows_for(self, resolution: Resolution, rng: random.Random, seq_start: int) -> List[Tuple[float, int, FlowRecord]]:
        """Spawn the downstream traffic one resolution explains."""
        service = resolution.service
        mean_bytes = self._bytes_scale * (service.byte_weight / service.popularity)
        total_bytes = max(200, int(rng.lognormvariate(0.0, 0.8) * mean_bytes))
        n_flows = max(1, round(rng.expovariate(1.0 / self.flow_rate_per_resolution)))
        out: List[Tuple[float, int, FlowRecord]] = []
        client = self._client_ip(rng)
        remaining = total_bytes
        end = self.t0 + self.duration
        for i in range(n_flows):
            lag = self.lag_model.sample(
                rng, resolution.effective_ttl, origin=service.origin_hosted
            )
            ts = resolution.ts + lag
            if ts < self.t0 or ts >= end:
                continue
            share = remaining // (n_flows - i)
            remaining -= share
            flow = FlowRecord(
                ts=ts,
                src_ip=resolution.ip,
                dst_ip=client,
                src_port=443,
                dst_port=49152 + rng.randrange(16000),
                protocol=6,
                packets=max(1, share // 1400),
                bytes_=share,
            )
            out.append((ts, seq_start + i, flow))
        # Section 5: a small share of clients answer malformed-domain
        # traffic back on non-web ports (OpenVPN 1194, Kerberos 88) —
        # only some malformed domains are interactive services at all
        # (paper: 2.7 % of receiving clients reply, to 23.6 % of the
        # malformed domains).
        interactive = name_label(service.name) % 4 == 0
        if (
            service.category == "mal-formatted"
            and interactive
            and out
            and rng.random() < 0.2
        ):
            first_ts, _, first_flow = out[0]
            port = 1194 if rng.random() < 0.6 else 88
            reply = FlowRecord(
                ts=first_ts + 0.5,
                src_ip=first_flow.dst_ip,
                dst_ip=first_flow.src_ip,
                src_port=first_flow.dst_port,
                dst_port=port,
                protocol=17 if port == 1194 else 6,
                packets=2,
                bytes_=240,
            )
            if reply.ts < end:
                out.append((reply.ts, seq_start + n_flows, reply))
        return out

    def _client_ip(self, rng: random.Random) -> str:
        return f"{CLIENT_PREFIX}.{rng.randrange(256)}.{rng.randrange(1, 255)}"

    def _background_flows(self) -> Iterator[FlowRecord]:
        """Non-DNS-related traffic plus resolver-port flows.

        Byte rate is tied to the DNS-related byte rate so the background
        byte share stays at ``background_byte_fraction`` of the total.
        """
        rng = derive_rng(self.seed, "background")
        dns_byte_rate = self.resolution_rate * self._mean_bytes_per_resolution()
        bg_fraction = self.background_byte_fraction
        bg_byte_rate = dns_byte_rate * bg_fraction / (1.0 - bg_fraction)
        mean_bg_bytes = 600_000.0
        bg_flow_rate = bg_byte_rate / mean_bg_bytes
        dns_port_rate = self.resolution_rate * self.dns_port_flow_multiplier
        t = self.t0
        end = self.t0 + self.duration
        total_rate = bg_flow_rate + dns_port_rate
        while True:
            t += rng.expovariate(self.diurnal.rate_at(total_rate, t))
            if t >= end:
                return
            if rng.random() < bg_flow_rate / total_rate:
                yield FlowRecord(
                    ts=t,
                    src_ip=(
                        f"{BACKGROUND_SOURCE_PREFIX}.{rng.randrange(256)}."
                        f"{rng.randrange(1, 255)}"
                    ),
                    dst_ip=self._client_ip(rng),
                    src_port=rng.choice((443, 80, 8080, 6881)),
                    dst_port=49152 + rng.randrange(16000),
                    protocol=6,
                    packets=max(1, int(rng.lognormvariate(0.0, 1.0) * mean_bg_bytes) // 1400),
                    bytes_=max(80, int(rng.lognormvariate(0.0, 1.0) * mean_bg_bytes)),
                )
            else:
                # A client DNS/DoT query flow: tiny, but the coverage
                # analysis counts them (1/20 to public resolvers).
                public = rng.random() < PUBLIC_RESOLVER_FRACTION
                resolver = (
                    PUBLIC_RESOLVER_IPS[rng.randrange(len(PUBLIC_RESOLVER_IPS))]
                    if public
                    else ISP_RESOLVER_IPS[rng.randrange(len(ISP_RESOLVER_IPS))]
                )
                dot = rng.random() < 0.1
                yield FlowRecord(
                    ts=t,
                    src_ip=self._client_ip(rng),
                    dst_ip=resolver,
                    src_port=49152 + rng.randrange(16000),
                    dst_port=853 if dot else 53,
                    protocol=6 if dot else 17,
                    packets=1,
                    bytes_=rng.randrange(60, 140),
                )

    def _mean_bytes_per_resolution(self) -> float:
        total_pop = sum(s.popularity for s in self.universe.services)
        weighted = sum(s.byte_weight for s in self.universe.services) / total_pop
        return self._bytes_scale * weighted

    def flow_records(self) -> Iterator[FlowRecord]:
        """The Netflow stream, globally ordered by timestamp."""
        rng = derive_rng(self.seed, "flows")
        heap: List[Tuple[float, int, FlowRecord]] = []
        seq = 0
        background = self._background_flows()
        next_bg = next(background, None)

        def emit_up_to(ts: float) -> Iterator[FlowRecord]:
            nonlocal next_bg
            while True:
                heap_ready = heap and heap[0][0] <= ts
                bg_ready = next_bg is not None and next_bg.ts <= ts
                if heap_ready and (not bg_ready or heap[0][0] <= next_bg.ts):
                    yield heapq.heappop(heap)[2]
                elif bg_ready:
                    yield next_bg
                    next_bg = next(background, None)
                else:
                    return

        for resolution in self._resolutions():
            yield from emit_up_to(resolution.ts)
            flows = self._flows_for(resolution, rng, seq)
            seq += len(flows) + 1
            for item in flows:
                heapq.heappush(heap, item)
        yield from emit_up_to(float("inf"))

    def flow_record_streams(self, n_streams: int) -> List[Iterator[FlowRecord]]:
        """Shard the flow stream like the ISP's 26-way load balancing."""
        return _shard_stream(self.flow_records, n_streams, key=lambda f: hash(f.src_ip))


def _shard_stream(factory, n_streams: int, key) -> List[Iterator]:
    """Split one generator into n round-robin-by-key sub-streams.

    Each shard re-creates the underlying generator and filters it, which
    keeps shards independent (safe to consume from different threads) at
    the cost of n-fold generation work — acceptable for the stream counts
    the tests use.
    """
    if n_streams <= 0:
        raise ConfigError("n_streams must be positive")

    def shard(idx: int) -> Iterator:
        for item in factory():
            if key(item) % n_streams == idx:
                yield item

    return [shard(i) for i in range(n_streams)]


# --- presets -------------------------------------------------------------------


def _preset_cost_params(
    resolution_rate: float,
    flow_rate_per_resolution: float,
    background_byte_fraction: float,
    mean_bytes_per_resolution: float,
    dns_port_flow_multiplier: float,
    paper_flow_rate: float,
    paper_dns_rate: float,
    entry_scale: float,
) -> CostModelParams:
    """Derive the sim→deployment scale factors for one preset.

    The sim flow rate is the sum of content flows (per resolution),
    background flows (tied to the byte share), and resolver-port flows.
    """
    content_rate = resolution_rate * flow_rate_per_resolution
    dns_byte_rate = resolution_rate * mean_bytes_per_resolution
    bg_byte_rate = (
        dns_byte_rate * background_byte_fraction / (1.0 - background_byte_fraction)
    )
    bg_rate = bg_byte_rate / 600_000.0
    dns_port_rate = resolution_rate * dns_port_flow_multiplier
    sim_flow_rate = content_rate + bg_rate + dns_port_rate
    sim_dns_rate = resolution_rate * 2.5  # ≈ records per resolution
    return CostModelParams(
        rate_scale=paper_flow_rate / sim_flow_rate,
        dns_rate_scale=paper_dns_rate / sim_dns_rate,
        entry_scale=entry_scale,
    )


def large_isp(
    seed: int = 7,
    duration: float = 86400.0,
    resolution_rate: float = 1.2,
    n_benign: int = 2000,
    **overrides,
) -> IspWorkload:
    """The large European ISP (Section 2): 75K DNS rec/s, 1M flow rec/s,
    26 Netflow + 2 DNS streams, ~25 cores / 15–30 GB in the paper.

    Simulated at ``resolution_rate`` resolutions/s (~2.5 DNS records and
    ~4 flows each); the cost model's scale factors extrapolate resource
    figures back to deployment scale.
    """
    universe = build_universe(seed, n_benign=n_benign)
    hosting = CdnHosting(universe, default_providers(), seed=seed, ttl_model=TtlModel())
    defaults = dict(
        resolution_rate=resolution_rate,
        flow_rate_per_resolution=2.6,
        background_byte_fraction=0.15,
        mean_bytes_per_resolution=2_000_000.0,
        dns_port_flow_multiplier=1.0,
        worker_count=60,
    )
    defaults.update(overrides)
    defaults["cost_params"] = overrides.get(
        "cost_params",
        _preset_cost_params(
            resolution_rate=defaults["resolution_rate"],
            flow_rate_per_resolution=defaults["flow_rate_per_resolution"],
            background_byte_fraction=defaults["background_byte_fraction"],
            mean_bytes_per_resolution=defaults["mean_bytes_per_resolution"],
            dns_port_flow_multiplier=defaults["dns_port_flow_multiplier"],
            paper_flow_rate=1_000_000.0,
            paper_dns_rate=75_000.0,
            entry_scale=2600.0,
        ),
    )
    return IspWorkload(universe, hosting, seed=seed, duration=duration, **defaults)


def small_isp(
    seed: int = 11,
    duration: float = 86400.0,
    resolution_rate: float = 0.6,
    n_benign: int = 800,
    **overrides,
) -> IspWorkload:
    """The smaller European ISP: 115K DNS rec/s over one stream, 138K
    flow rec/s over two — ~300 % CPU and ~6 GB in the paper.

    Relative to the large ISP it has more DNS per flow and far fewer
    workers, which is why its memory is an order of magnitude lower.
    """
    universe = build_universe(seed, n_benign=n_benign)
    hosting = CdnHosting(universe, default_providers(), seed=seed, ttl_model=TtlModel())
    defaults = dict(
        resolution_rate=resolution_rate,
        flow_rate_per_resolution=1.2,
        background_byte_fraction=0.15,
        mean_bytes_per_resolution=2_000_000.0,
        dns_port_flow_multiplier=1.0,
        worker_count=8,
    )
    defaults.update(overrides)
    defaults["cost_params"] = overrides.get(
        "cost_params",
        _preset_cost_params(
            resolution_rate=defaults["resolution_rate"],
            flow_rate_per_resolution=defaults["flow_rate_per_resolution"],
            background_byte_fraction=defaults["background_byte_fraction"],
            mean_bytes_per_resolution=defaults["mean_bytes_per_resolution"],
            dns_port_flow_multiplier=defaults["dns_port_flow_multiplier"],
            paper_flow_rate=138_000.0,
            paper_dns_rate=115_000.0,
            entry_scale=1600.0,
        ),
    )
    return IspWorkload(universe, hosting, seed=seed, duration=duration, **defaults)
