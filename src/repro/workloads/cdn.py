"""CDN hosting model: CNAME chains, shared IP pools, origin ASes.

This is the mechanism that makes the paper's problem hard: "If multiple
services are using the same CDN provider, they cannot be easily
distinguished based on IP prefixes alone." Each provider owns IP pools
(with origin AS numbers, feeding the BGP correlation of Figure 4), and
services hosted on it resolve through provider-owned CNAME chains to
edge hostnames whose A/AAAA records point into the shared pools.

Pool sharing is calibrated to Appendix A.7: ≈88 % of IPs map to a single
edge name within a 300 s window, and ≈35 % of names map to more than one
IP.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.util.errors import ConfigError
from repro.util.rng import derive_rng
from repro.workloads.domains import DomainUniverse, ServiceSpec
from repro.workloads.ttl_model import TtlModel

#: Fraction of resolutions answered with AAAA instead of A.
DEFAULT_AAAA_FRACTION = 0.25

#: P(k candidate IPs per edge name): 65 % of names pin to one IP,
#: 35 % rotate over several (Appendix A.7's "35% of the domain names map
#: to more than one IP address").
IPS_PER_NAME_WEIGHTS = ((1, 0.35), (2, 0.30), (3, 0.20), (4, 0.15))

#: Long-TTL values for services marked ``long_lived`` (>= 3600 s, so the
#: records land in the Long hashmaps). Weighted toward the shorter end,
#: like real long TTLs are.
LONG_TTL_CHOICES = (7200, 7200, 7200, 14400, 14400, 86400)


@dataclass(frozen=True)
class CdnProvider:
    """One CDN: a name, IPv4/IPv6 pools, and the ASes they originate from."""

    name: str
    v4_prefixes: Tuple[Tuple[str, int], ...]  # (cidr, origin_asn)
    v6_prefixes: Tuple[Tuple[str, int], ...]
    pool_size_v4: int = 512
    pool_size_v6: int = 192

    def build_pools(self, rng: random.Random) -> Tuple[List[str], List[str]]:
        """Materialise concrete addresses from the prefixes.

        Addresses are spread over the prefixes proportionally to prefix
        size so a provider announcing from two ASes (the paper's S2 case)
        shows both in the per-AS traffic series.
        """
        v4 = self._addresses(rng, self.v4_prefixes, self.pool_size_v4, version=4)
        v6 = self._addresses(rng, self.v6_prefixes, self.pool_size_v6, version=6)
        return v4, v6

    @staticmethod
    def _addresses(
        rng: random.Random,
        prefixes: Sequence[Tuple[str, int]],
        count: int,
        version: int,
    ) -> List[str]:
        if not prefixes:
            return []
        out: List[str] = []
        seen = set()
        networks = [ipaddress.ip_network(cidr) for cidr, _ in prefixes]
        for net in networks:
            if net.version != version:
                raise ConfigError(f"prefix {net} is not IPv{version}")
        # Never ask for more distinct hosts than the prefixes contain
        # (the sampling below draws offsets in [1, num_addresses - 1)).
        capacity = sum(min(net.num_addresses - 2, 2**20 - 1) for net in networks)
        count = min(count, capacity)
        while len(out) < count:
            net = networks[rng.randrange(len(networks))]
            offset = rng.randrange(1, min(net.num_addresses - 1, 2**20))
            addr = str(net.network_address + offset)
            if addr not in seen:
                seen.add(addr)
                out.append(addr)
        return out

    def asn_for(self, ip: str) -> Optional[int]:
        addr = ipaddress.ip_address(ip)
        prefixes = self.v4_prefixes if addr.version == 4 else self.v6_prefixes
        for cidr, asn in prefixes:
            if addr in ipaddress.ip_network(cidr):
                return asn
        return None


#: Provider name for dedicated (non-CDN) origin hosting.
ORIGIN_PROVIDER = "origin-host"


def default_providers(extra: Sequence[str] = ("acme-cdn", "borealis", "cumulus")) -> List[CdnProvider]:
    """The reproduction's CDN landscape.

    ``stream-cdn-1`` originates from a single AS (Figure 4a: S1 "mostly
    from only one AS"); ``stream-cdn-2`` from two ASes (Figure 4b: S2
    "mainly by two ASes"). Generic providers host everyone else, and
    ``origin-host`` provides dedicated per-service addresses for
    origin-hosted services (long-lived, rare-origin, and abuse domains).
    """
    providers = [
        CdnProvider(
            name=ORIGIN_PROVIDER,
            v4_prefixes=(("10.99.0.0/16", 64800),),
            v6_prefixes=(("2001:db8:999::/48", 64800),),
            pool_size_v4=4096,
            pool_size_v6=1024,
        ),
        CdnProvider(
            name="stream-cdn-1",
            v4_prefixes=(("198.51.100.0/24", 64501), ("203.0.113.0/25", 64501)),
            v6_prefixes=(("2001:db8:1::/48", 64501),),
        ),
        CdnProvider(
            name="stream-cdn-2",
            v4_prefixes=(("192.0.2.0/25", 64511), ("192.0.2.128/25", 64512)),
            v6_prefixes=(("2001:db8:2::/49", 64511), ("2001:db8:2:8000::/49", 64512)),
        ),
    ]
    base_v4 = 20
    base_asn = 64600
    for i, name in enumerate(extra):
        providers.append(
            CdnProvider(
                name=name,
                v4_prefixes=((f"10.{base_v4 + i * 4}.0.0/16", base_asn + i),),
                v6_prefixes=((f"2001:db8:{100 + i:x}::/48", base_asn + i),),
            )
        )
    return providers


#: How many A/AAAA answers one response carries (Section 2's
#: ``[name; rtype; ttl; answer] <0,n>``): CDN responses frequently return
#: several addresses at once — together with re-resolution churn this
#: produces Appendix A.7's "35 % of the domain names map to more than
#: one IP address".
ANSWERS_PER_RESPONSE_WEIGHTS = ((1, 0.60), (2, 0.22), (3, 0.10), (4, 0.08))


@dataclass(frozen=True)
class Resolution:
    """One DNS resolution event: everything a cache miss reveals.

    ``chain`` is ordered service-first: ``(service_name, alias…, edge)``;
    the A/AAAA records' owner is ``chain[-1]`` and their rdata are the
    addresses in ``ips`` (one stream record each). ``visible`` is False
    when the client used a public resolver — the flows still happen, the
    DNS records never reach FlowDNS (Section 4's coverage analysis).
    """

    ts: float
    service: ServiceSpec
    chain: Tuple[str, ...]
    ips: Tuple[str, ...]
    rtype: RRType
    a_ttl: int
    cname_ttl: int
    visible: bool = True

    @property
    def ip(self) -> str:
        """The primary answer — the address clients connect to first."""
        return self.ips[0]

    def records(self) -> List[DnsRecord]:
        """The stream records this resolution contributes (if visible)."""
        out: List[DnsRecord] = []
        for owner, target in zip(self.chain, self.chain[1:]):
            out.append(DnsRecord(self.ts, owner, RRType.CNAME, self.cname_ttl, target))
        for ip in self.ips:
            out.append(DnsRecord(self.ts, self.chain[-1], self.rtype, self.a_ttl, ip))
        return out

    @property
    def effective_ttl(self) -> int:
        return self.a_ttl


class CdnHosting:
    """Maps services onto providers and synthesises their resolutions."""

    def __init__(
        self,
        universe: DomainUniverse,
        providers: Sequence[CdnProvider] = None,
        seed: int = 0,
        ttl_model: Optional[TtlModel] = None,
        aaaa_fraction: float = DEFAULT_AAAA_FRACTION,
        ephemeral_fraction: float = 0.18,
    ):
        self.universe = universe
        self.providers = list(providers) if providers is not None else default_providers()
        self.ttl_model = ttl_model if ttl_model is not None else TtlModel()
        self.aaaa_fraction = aaaa_fraction
        # CDNs mint per-session edge hostnames (token-prefixed names are
        # how real CDNs pin sessions); these are the unbounded key
        # material that makes the No Clear-Up variant's memory grow all
        # day (Figure 3b) — a fixed name universe would quietly saturate.
        self.ephemeral_fraction = ephemeral_fraction
        self._by_name: Dict[str, CdnProvider] = {p.name: p for p in self.providers}
        rng = derive_rng(seed, "cdn-pools")
        self._pools_v4: Dict[str, List[str]] = {}
        self._pools_v6: Dict[str, List[str]] = {}
        for provider in self.providers:
            v4, v6 = provider.build_pools(rng)
            self._pools_v4[provider.name] = v4
            self._pools_v6[provider.name] = v6
        self._assignments: Dict[str, CdnProvider] = {}
        self._candidate_ips: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
        self._chains: Dict[str, Tuple[str, ...]] = {}
        self._assign(derive_rng(seed, "cdn-assign"))

    def _assign(self, rng: random.Random) -> None:
        generic = [
            p
            for p in self.providers
            if not p.name.startswith("stream-cdn-") and p.name != ORIGIN_PROVIDER
        ]
        origin = self._by_name.get(ORIGIN_PROVIDER)
        for service in self.universe.services:
            if service.cdn is not None and service.cdn in self._by_name:
                provider = self._by_name[service.cdn]
            elif service.origin_hosted and origin is not None:
                provider = origin
            else:
                provider = generic[rng.randrange(len(generic))] if generic else self.providers[0]
            self._assignments[service.name] = provider
            self._chains[service.name] = self._build_chain(service, provider)
            if service.origin_hosted and provider is origin:
                # Dedicated addresses: exactly one IP per family, drawn
                # from a pool large enough that sharing is negligible.
                v4_pool = self._pools_v4[provider.name]
                v6_pool = self._pools_v6[provider.name]
                self._candidate_ips[service.name] = (
                    (v4_pool[rng.randrange(len(v4_pool))],) if v4_pool else (),
                    (v6_pool[rng.randrange(len(v6_pool))],) if v6_pool else (),
                )
            else:
                self._candidate_ips[service.name] = (
                    self._pick_ips(rng, self._pools_v4[provider.name]),
                    self._pick_ips(rng, self._pools_v6[provider.name]),
                )

    @staticmethod
    def _pick_ips(rng: random.Random, pool: List[str]) -> Tuple[str, ...]:
        if not pool:
            return ()
        x = rng.random()
        acc = 0.0
        k = 1
        for count, weight in IPS_PER_NAME_WEIGHTS:
            acc += weight
            if x <= acc:
                k = count
                break
        k = min(k, len(pool))
        return tuple(rng.sample(pool, k))

    def _build_chain(self, service: ServiceSpec, provider: CdnProvider) -> Tuple[str, ...]:
        """Service name → alias(es) → edge hostname, fixed per service."""
        length = service.chain_length
        if length == 1:
            return (service.name,)
        label = service.name.split(".")[0][:24]
        chain = [service.name]
        for hop in range(length - 2):
            chain.append(f"{label}.r{hop}.{provider.name}.net")
        chain.append(f"e-{label}.edge.{provider.name}.net")
        return tuple(chain)

    def provider_of(self, service_name: str) -> CdnProvider:
        return self._assignments[service_name]

    def chain_of(self, service_name: str) -> Tuple[str, ...]:
        return self._chains[service_name]

    def resolve(self, service: ServiceSpec, ts: float, rng: random.Random, visible: bool = True) -> Resolution:
        """Synthesise one cache-miss resolution for ``service`` at ``ts``."""
        v4_ips, v6_ips = self._candidate_ips[service.name]
        use_v6 = bool(v6_ips) and rng.random() < self.aaaa_fraction
        candidates = v6_ips if use_v6 else (v4_ips or v6_ips)
        if not candidates:
            raise ConfigError(f"no pool IPs for service {service.name}")
        x = rng.random()
        acc = 0.0
        n_answers = 1
        for count, weight in ANSWERS_PER_RESPONSE_WEIGHTS:
            acc += weight
            if x <= acc:
                n_answers = count
                break
        n_answers = min(n_answers, len(candidates))
        start = rng.randrange(len(candidates))
        ips = tuple(
            candidates[(start + i) % len(candidates)] for i in range(n_answers)
        )
        rtype = RRType.AAAA if use_v6 else RRType.A
        if service.long_lived:
            a_ttl = LONG_TTL_CHOICES[rng.randrange(len(LONG_TTL_CHOICES))]
        else:
            a_ttl = self.ttl_model.sample(rng, rtype)
        cname_ttl = self.ttl_model.sample(rng, RRType.CNAME)
        chain = self._chains[service.name]
        if len(chain) > 1 and rng.random() < self.ephemeral_fraction:
            token = rng.getrandbits(48)
            chain = chain[:-1] + (f"t{token:012x}.{chain[-1]}",)
        return Resolution(
            ts=ts,
            service=service,
            chain=chain,
            ips=ips,
            rtype=rtype,
            a_ttl=a_ttl,
            cname_ttl=cname_ttl,
            visible=visible,
        )

    def rib_entries(self) -> List[Tuple[str, int]]:
        """(prefix, origin ASN) pairs for building the BGP RIB."""
        out: List[Tuple[str, int]] = []
        for provider in self.providers:
            out.extend(provider.v4_prefixes)
            out.extend(provider.v6_prefixes)
        return out
