"""Malicious and malformed domain-name synthesis (Section 5's population).

The paper's Section 5 measures traffic from:

* Spamhaus-DBL-style categories — per ~1M sampled names: 512 spam /
  bad-reputation, 41 botnet C&C, 34 abused redirectors, 11 malware,
  3 phishing;
* RFC 1035 violators — 666k of 39M daily names (≈1.7 %), with the
  underscore the offending character in 87 % of them.

This module synthesises names for each category with the right
*characteristics* (DGA-looking botnet names, typosquatting phish names,
underscore-dominated malformed names) so the analysis pipeline has
realistic material, and keeps the paper's proportions at whatever
universe size a preset chooses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Paper's Section 5 Spamhaus counts per sampled ~1M domain names.
PAPER_DBL_COUNTS_PER_MILLION = {
    "spam": 512,
    "botnet": 41,
    "abused-redirector": 34,
    "malware": 11,
    "phish": 3,
}

#: 666k violating names of 39M observed daily.
PAPER_MALFORMED_FRACTION = 666_000 / 39_000_000

#: "The most common disallowed character found in 87% of the
#: malformatted domains is the underscore".
PAPER_UNDERSCORE_SHARE = 0.87

_CONSONANTS = "bcdfghjklmnpqrstvwxz"
_VOWELS = "aeiou"
_TLDS = ("com", "net", "org", "info", "biz", "xyz", "top", "icu")
_SPAM_WORDS = (
    "deal", "offer", "free", "win", "bonus", "cash", "pills", "loan",
    "promo", "sale", "click", "prize", "lucky", "gift",
)
_BRANDS = ("paypa1", "amaz0n", "g00gle", "micros0ft", "app1e", "netf1ix")


def _syllables(rng: random.Random, count: int) -> str:
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS) for _ in range(count)
    )


def spam_name(rng: random.Random) -> str:
    """Bulk-registered keyword mashes on cheap TLDs."""
    words = rng.sample(_SPAM_WORDS, 2)
    return f"{words[0]}{words[1]}{rng.randrange(100)}.{rng.choice(_TLDS)}"


def botnet_name(rng: random.Random) -> str:
    """DGA-style: high-entropy random label on a short TLD."""
    length = rng.randrange(10, 20)
    label = "".join(rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(length))
    return f"{label}.{rng.choice(('com', 'net', 'ru', 'cc'))}"


def malware_name(rng: random.Random) -> str:
    """Download/update-themed hosting names."""
    return f"{_syllables(rng, 3)}-{rng.choice(('update', 'cdn', 'dl', 'files'))}.{rng.choice(_TLDS)}"


def phish_name(rng: random.Random) -> str:
    """Typosquats of big brands behind a login-ish label."""
    return f"{rng.choice(('secure', 'login', 'account'))}.{rng.choice(_BRANDS)}.{rng.choice(('com', 'net'))}"


def redirector_name(rng: random.Random) -> str:
    """Abused URL-shortener / open-redirect domains."""
    return f"{_syllables(rng, 2)}{rng.choice(('ly', 'io', 'go', 'be'))}.{rng.choice(('link', 'click', 'co'))}"


_CATEGORY_BUILDERS = {
    "spam": spam_name,
    "botnet": botnet_name,
    "abused-redirector": redirector_name,
    "malware": malware_name,
    "phish": phish_name,
}


def malformed_name(rng: random.Random, underscore_share: float = PAPER_UNDERSCORE_SHARE) -> str:
    """A name violating at least one RFC 1035 rule.

    87 % of violations use an underscore (service-discovery style
    ``_label`` names dominate in the wild); the remainder split between
    over-long labels, other bad characters, and digit-leading labels.
    """
    roll = rng.random()
    if roll < underscore_share:
        kind = "underscore"
    elif roll < underscore_share + 0.06:
        kind = "long-label"
    elif roll < underscore_share + 0.10:
        kind = "bad-char"
    else:
        kind = "digit-start"
    base = _syllables(rng, 3)
    tld = rng.choice(_TLDS)
    if kind == "underscore":
        proto = rng.choice(("_sip", "_ldap", "_autodiscover", "_dmarc", "_spf", "_jabber"))
        return f"{proto}.{base}.{tld}"
    if kind == "long-label":
        return f"{_syllables(rng, 36)}.{base}.{tld}"  # 72-char label > 63
    if kind == "bad-char":
        ch = rng.choice("!*=/")
        return f"{base}{ch}{_syllables(rng, 1)}.{tld}"
    return f"{rng.randrange(10)}{base}.{tld}"


@dataclass(frozen=True)
class AbusePopulation:
    """Synthesised malicious/malformed names, grouped by category."""

    by_category: Dict[str, Tuple[str, ...]]

    def all_names(self) -> List[str]:
        out: List[str] = []
        for names in self.by_category.values():
            out.extend(names)
        return out

    def category_of(self, name: str) -> str:
        for category, names in self.by_category.items():
            if name in names:
                return category
        return "benign"


def build_abuse_population(
    rng: random.Random,
    benign_universe_size: int,
    dbl_counts_per_million: Dict[str, int] = None,
    malformed_fraction: float = PAPER_MALFORMED_FRACTION,
    minimum_per_category: int = 3,
) -> AbusePopulation:
    """Scale the paper's category counts to a synthetic universe size.

    ``benign_universe_size`` plays the role of the paper's ~1M sampled
    names; each category gets ``count/1M × size`` names (at least
    ``minimum_per_category`` so tiny test universes still exercise every
    category).
    """
    counts = dict(dbl_counts_per_million or PAPER_DBL_COUNTS_PER_MILLION)
    by_category: Dict[str, Tuple[str, ...]] = {}
    for category, per_million in counts.items():
        n = max(minimum_per_category, round(per_million * benign_universe_size / 1_000_000))
        builder = _CATEGORY_BUILDERS[category]
        names = set()
        while len(names) < n:
            names.add(builder(rng))
        by_category[category] = tuple(sorted(names))
    n_malformed = max(minimum_per_category, round(malformed_fraction * benign_universe_size))
    malformed = set()
    while len(malformed) < n_malformed:
        malformed.add(malformed_name(rng))
    by_category["mal-formatted"] = tuple(sorted(malformed))
    return AbusePopulation(by_category=by_category)
