"""Internet-scale synthetic workload generator: streaming ``.fdc`` emission.

The replay corpus's hand-built scenarios total a few hundred flows; this
module generates captures at the ROADMAP's "millions of users" scale by
composing the existing building blocks (:func:`~repro.workloads.domains.
build_universe`, :class:`~repro.workloads.cdn.CdnHosting`,
:class:`~repro.workloads.ttl_model.TtlModel`,
:class:`~repro.workloads.diurnal.DiurnalPattern`) with the distribution
machinery the related generators use:

* **Zipf domain popularity** with a configurable exponent (algotel2016's
  content-popularity model — the universe's popularity column *is* the
  Zipf CDF, so rank sampling is one bisect);
* **heavy-tailed flow sizes** from named CDF tables in the style of
  rotorsim's ``flow_generator.py`` (websearch / datamining shapes);
* **Poisson client arrivals** — one aggregate ``expovariate`` event
  stream whose rate is ``clients × per_client_rate``, so a million-client
  population costs O(1) state: client addresses are computed from an
  index, never materialised;
* **configurable CNAME-chain depth** (Figure 6's weights truncated at
  ``chain_depth``) and **TTL profiles**, and **multi-CDN shared pools**
  (``cdn_count`` generic providers on top of the streaming CDNs).

Emission is *streaming and bounded*: DNS responses are cached per
service while their TTL lasts (a resolver answering from cache — which
is also why re-encoding is rare enough to be cheap), flows ride a
bounded time-bucket reorder buffer, and wire bytes go straight to a
:class:`~repro.replay.capture.CaptureWriter`. Nothing proportional to
the trace length is ever held in memory.

Determinism contract: every random stream derives from
``(params.seed, label)`` via :func:`repro.util.rng.derive_rng` — the
same helper the scenario corpus regeneration uses — so any
``(seed, params)`` pair produces byte-identical capture files on any
Python version (no ``hash()``-order dependence anywhere on the path).
"""

from __future__ import annotations

import bisect
import ipaddress
import math
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.dns.rr import RRType, a_record, aaaa_record, cname_record
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import PackedV9Exporter
from repro.replay.capture import LANE_DNS, LANE_FLOW, CaptureFrame, CaptureWriter
from repro.util.errors import ConfigError, ParseError
from repro.util.rng import derive_rng
from repro.workloads.cdn import CdnHosting, Resolution, default_providers
from repro.workloads.diurnal import DiurnalPattern, FlatPattern
from repro.workloads.domains import build_universe, chain_weights_for_depth
from repro.workloads.ttl_model import TtlModel

#: Client source addresses are computed, not stored: client ``i`` is
#: ``100.64.0.0/10 + i`` (CGNAT space — what an eyeball ISP's flow
#: exports actually carry) and its dual-stack twin ``2001:db8:feed::/64
#: + i``. The /10 bounds the population at 2^22 ≈ 4.2M clients.
CLIENT_V4_BASE = 0x64400000  # 100.64.0.0
CLIENT_V6_BASE = 0x20010DB8FEED0000 << 64  # 2001:db8:feed::/64
MAX_CLIENTS = 1 << 22

#: Named flow-size CDFs: ``(size_bytes, probability)`` points, in the
#: style of rotorsim's ``SizeDistribution`` tables. ``websearch`` is the
#: classic mice-heavy RPC shape; ``datamining`` is the heavier-tailed
#: shape where half the flows are tiny and a sliver reaches a gigabyte;
#: ``uniform`` is the degenerate shape for differential tests.
SIZE_CDFS: Dict[str, Tuple[Tuple[int, float], ...]] = {
    "websearch": (
        (6 * 1024, 0.15),
        (10 * 1024, 0.20),
        (14 * 1024, 0.30),
        (19 * 1024, 0.20),
        (30 * 1024, 0.09),
        (100 * 1024, 0.04),
        (1 << 20, 0.015),
        (10 << 20, 0.005),
    ),
    "datamining": (
        (100, 0.50),
        (300, 0.10),
        (1024, 0.10),
        (10 * 1024, 0.12),
        (100 * 1024, 0.10),
        (1 << 20, 0.04),
        (10 << 20, 0.025),
        (100 << 20, 0.012),
        (1 << 30, 0.003),
    ),
    "uniform": (
        (1024, 0.25),
        (2048, 0.25),
        (4096, 0.25),
        (8192, 0.25),
    ),
}

#: Named TTL profiles: ``paper`` is the Figure 8-calibrated default;
#: ``short`` concentrates below 300 s (stresses re-resolution churn and
#: clear-up); ``long`` pushes everything toward the Long-hashmap regime.
TTL_PROFILES: Dict[str, Optional[Tuple[Tuple[Tuple[int, float], ...], Tuple[Tuple[int, float], ...]]]] = {
    "paper": None,  # TtlModel() defaults
    "short": (
        ((30, 0.35), (60, 0.35), (120, 0.20), (299, 0.10)),
        ((60, 0.50), (299, 0.50)),
    ),
    "long": (
        ((600, 0.30), (1800, 0.30), (3600, 0.30), (7200, 0.10)),
        ((1800, 0.40), (3600, 0.40), (14400, 0.20)),
    ),
}

#: P(k flows per resolution): a client that just resolved a name opens a
#: small burst of connections (page assets, API calls, media segments).
#: Mean ≈ 2.9 flows per resolution.
FLOW_BURST_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (1, 0.35),
    (2, 0.25),
    (3, 0.15),
    (4, 0.10),
    (6, 0.07),
    (8, 0.05),
    (12, 0.03),
)


def ttl_model_for(profile: str) -> TtlModel:
    """Build the :class:`TtlModel` for a named profile."""
    if profile not in TTL_PROFILES:
        raise ConfigError(
            f"unknown TTL profile {profile!r}; choose one of {sorted(TTL_PROFILES)}"
        )
    weights = TTL_PROFILES[profile]
    if weights is None:
        return TtlModel()
    return TtlModel(address_weights=weights[0], cname_weights=weights[1])


class SizeCdf:
    """A discrete flow-size distribution sampled by one bisect per draw."""

    def __init__(self, points: Tuple[Tuple[int, float], ...]):
        if not points:
            raise ConfigError("size CDF needs at least one point")
        total = sum(p for _, p in points)
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"size CDF probabilities sum to {total}, expected 1.0")
        last = 0
        for size, prob in points:
            if size <= last:
                raise ConfigError("size CDF sizes must be positive and increasing")
            if size >= 1 << 32:
                raise ConfigError("size CDF sizes must fit the 32-bit IN_BYTES field")
            if prob < 0:
                raise ConfigError("size CDF probabilities must be non-negative")
            last = size
        self.points = tuple(points)
        self.sizes = [size for size, _ in points]
        cumulative: List[float] = []
        acc = 0.0
        for _, prob in points:
            acc += prob
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self.cumulative = cumulative

    @classmethod
    def named(cls, name: str) -> "SizeCdf":
        if name not in SIZE_CDFS:
            raise ConfigError(
                f"unknown flow-size CDF {name!r}; choose one of {sorted(SIZE_CDFS)}"
            )
        return cls(SIZE_CDFS[name])

    def sample(self, rng) -> int:
        return self.sizes[bisect.bisect_left(self.cumulative, rng.random())]

    def cdf_at(self, size: int) -> float:
        """Exact P(flow size <= ``size``) — the tests' reference curve."""
        frac = 0.0
        for s, cum in zip(self.sizes, self.cumulative):
            if s <= size:
                frac = cum
        return frac

    def mean(self) -> float:
        prev = 0.0
        out = 0.0
        for (size, _), cum in zip(self.points, self.cumulative):
            out += size * (cum - prev)
            prev = cum
        return out


@dataclass(frozen=True)
class GeneratorParams:
    """Everything one generated capture depends on.

    ``(seed, params)`` fully determine the output bytes. The aggregate
    resolution-event rate is ``clients * per_client_rate`` unless
    ``base_rate`` pins it directly (the perf benchmark does, so its rate
    does not ride on the client-count axis).
    """

    seed: int = 0
    clients: int = 5000
    duration: float = 60.0
    start_ts: float = 0.0
    base_rate: Optional[float] = None
    per_client_rate: float = 0.02  # resolutions/s per client
    n_domains: int = 400
    zipf_alpha: float = 0.9
    chain_depth: int = 4
    flow_size_cdf: str = "websearch"
    ttl_profile: str = "paper"
    cdn_count: int = 3
    aaaa_fraction: float = 0.1
    ephemeral_fraction: float = 0.1
    public_resolver_fraction: float = 0.0
    long_lived_fraction: float = 0.04
    rare_origin_fraction: float = 0.05
    abuse_byte_share: float = 0.005
    diurnal_amplitude: float = 0.0  # 0 = flat rate (Poisson-exact)
    flow_burst_weights: Tuple[Tuple[int, float], ...] = FLOW_BURST_WEIGHTS
    lag_mean: float = 1.5  # mean resolve→flow start lag (s)
    lag_max: float = 20.0
    batch_size: int = 30
    template_refresh: int = 64
    bucket_width: float = 0.5  # reorder-buffer granularity (s)
    max_pending: int = 65536  # hard bound on buffered flows

    def __post_init__(self):
        if self.clients < 1 or self.clients > MAX_CLIENTS:
            raise ConfigError(f"clients must be in [1, {MAX_CLIENTS}]")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if self.base_rate is not None and self.base_rate <= 0:
            raise ConfigError("base_rate must be positive")
        if self.per_client_rate <= 0:
            raise ConfigError("per_client_rate must be positive")
        if self.zipf_alpha < 0:
            raise ConfigError("zipf_alpha must be non-negative")
        if self.chain_depth < 1:
            raise ConfigError("chain_depth must be at least 1")
        if self.n_domains < 3:
            raise ConfigError("n_domains must be at least 3")
        if self.cdn_count < 1:
            raise ConfigError("cdn_count must be at least 1")
        for name, value in (
            ("aaaa_fraction", self.aaaa_fraction),
            ("ephemeral_fraction", self.ephemeral_fraction),
            ("public_resolver_fraction", self.public_resolver_fraction),
            ("long_lived_fraction", self.long_lived_fraction),
            ("rare_origin_fraction", self.rare_origin_fraction),
            ("abuse_byte_share", self.abuse_byte_share),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.public_resolver_fraction >= 1.0:
            raise ConfigError("public_resolver_fraction must be below 1")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError("diurnal_amplitude must be in [0, 1)")
        if self.lag_mean <= 0 or self.lag_max < 0:
            raise ConfigError("lag_mean must be positive and lag_max non-negative")
        if self.batch_size < 1 or self.template_refresh < 1:
            raise ConfigError("batch_size and template_refresh must be at least 1")
        if self.bucket_width <= 0:
            raise ConfigError("bucket_width must be positive")
        if self.max_pending < 2 * self.batch_size:
            raise ConfigError("max_pending must be at least twice batch_size")
        # Fail on unknown names at construction, not mid-stream.
        SizeCdf.named(self.flow_size_cdf)
        ttl_model_for(self.ttl_profile)
        total = sum(w for _, w in self.flow_burst_weights)
        if abs(total - 1.0) > 1e-6:
            raise ConfigError("flow_burst_weights must sum to 1.0")

    @property
    def resolution_rate(self) -> float:
        """Aggregate resolution events per second."""
        if self.base_rate is not None:
            return self.base_rate
        return self.clients * self.per_client_rate

    def expected_flows(self) -> float:
        mean_burst = sum(k * w for k, w in self.flow_burst_weights)
        return self.duration * self.resolution_rate * mean_burst

    def replace(self, **changes) -> "GeneratorParams":
        return replace(self, **changes)

    @classmethod
    def from_args(cls, args) -> "GeneratorParams":
        """Build params from a parsed CLI namespace, presence-validated.

        The :meth:`EngineConfig.from_args` pattern: every flag defaults
        to ``None`` in argparse so this layer owns effective defaults and
        rejects contradictory combinations with an operator-facing
        :class:`ConfigError` (the CLI maps it to exit code 2).
        """
        rate = getattr(args, "rate", None)
        per_client = getattr(args, "per_client_rate", None)
        if rate is not None and per_client is not None:
            raise ConfigError(
                "--rate pins the aggregate resolution rate; it cannot be "
                "combined with --per-client-rate"
            )
        overrides = {}
        for flag, fname in (
            ("seed", "seed"),
            ("clients", "clients"),
            ("duration", "duration"),
            ("n_domains", "n_domains"),
            ("zipf_alpha", "zipf_alpha"),
            ("chain_depth", "chain_depth"),
            ("flow_size_cdf", "flow_size_cdf"),
            ("ttl_profile", "ttl_profile"),
            ("cdn_count", "cdn_count"),
            ("aaaa_fraction", "aaaa_fraction"),
            ("public_resolver_fraction", "public_resolver_fraction"),
            ("diurnal_amplitude", "diurnal_amplitude"),
        ):
            value = getattr(args, flag, None)
            if value is not None:
                overrides[fname] = value
        if rate is not None:
            overrides["base_rate"] = rate
        if per_client is not None:
            overrides["per_client_rate"] = per_client
        return cls(**overrides)


@dataclass
class GeneratorReport:
    """What one generation pass produced (plus wall-clock emission rate)."""

    params: GeneratorParams
    flows: int = 0
    flow_bytes: int = 0
    resolutions: int = 0
    cache_misses: int = 0
    dns_frames: int = 0
    flow_frames: int = 0
    malformed_dns_frames: int = 0
    invisible_resolutions: int = 0
    peak_pending: int = 0
    overflow_flushes: int = 0
    frames_written: int = 0
    wire_bytes: int = 0
    elapsed: float = 0.0

    @property
    def flows_per_sec(self) -> float:
        return self.flows / self.elapsed if self.elapsed > 0 else 0.0


class WorkloadGenerator:
    """One seeded streaming workload; see the module docstring.

    ``events()`` yields the raw resolution-event stream (what the
    statistical tests sample); ``frames()`` yields wire frames;
    ``write()`` streams them into a capture file. Each call re-derives
    its RNG streams, so repeated passes over one generator instance are
    identical.
    """

    def __init__(self, params: GeneratorParams):
        self.params = params
        extra = tuple(f"pool-cdn-{i}" for i in range(params.cdn_count))
        self.universe = build_universe(
            params.seed,
            n_benign=params.n_domains,
            zipf_alpha=params.zipf_alpha,
            long_lived_fraction=params.long_lived_fraction,
            rare_origin_fraction=params.rare_origin_fraction,
            abuse_byte_share=params.abuse_byte_share,
            chain_length_weights=chain_weights_for_depth(params.chain_depth),
            include_abuse=params.abuse_byte_share > 0,
        )
        self.ttl_model = ttl_model_for(params.ttl_profile)
        self.hosting = CdnHosting(
            self.universe,
            providers=default_providers(extra=extra),
            seed=params.seed,
            ttl_model=self.ttl_model,
            aaaa_fraction=params.aaaa_fraction,
            ephemeral_fraction=params.ephemeral_fraction,
        )
        self.size_cdf = SizeCdf.named(params.flow_size_cdf)
        self.pattern: DiurnalPattern = (
            DiurnalPattern(amplitude=params.diurnal_amplitude)
            if params.diurnal_amplitude > 0
            else FlatPattern()
        )
        self.last_report: Optional[GeneratorReport] = None

    # --- event stream -----------------------------------------------------

    def events(self) -> Iterator[Tuple[float, object]]:
        """Yield ``(ts, service)`` resolution events, Poisson-paced.

        Arrivals are one aggregate exponential-gap process (thinned by
        the diurnal factor when configured); domains are drawn from the
        universe's popularity CDF — one bisect per event, the inlined
        body of ``DomainUniverse.sample_service``.
        """
        p = self.params
        rng_arrival = derive_rng(p.seed, "gen:arrivals")
        rng_domain = derive_rng(p.seed, "gen:domains")
        services = self.universe.services
        pop_cdf = self.universe.popularity_cdf
        last = len(services) - 1
        bisect_left = bisect.bisect_left
        domain_random = rng_domain.random
        rate_at = self.pattern.rate_at
        expovariate = rng_arrival.expovariate
        base = p.resolution_rate
        t = p.start_ts
        end = p.start_ts + p.duration
        while True:
            t += expovariate(rate_at(base, t))
            if t >= end:
                return
            idx = bisect_left(pop_cdf, domain_random())
            yield t, services[idx if idx < last else last]

    # --- DNS side ---------------------------------------------------------

    def _resolution_wire(self, res: Resolution, msg_id: int) -> bytes:
        answers = []
        for owner, target in zip(res.chain, res.chain[1:]):
            answers.append(cname_record(owner, target, res.cname_ttl))
        make = a_record if res.rtype == RRType.A else aaaa_record
        for ip in res.ips:
            answers.append(make(res.chain[-1], ip, res.a_ttl))
        msg = DnsMessage()
        msg.header.msg_id = msg_id
        msg.questions.append(Question(res.chain[0], res.rtype))
        msg.answers.extend(answers)
        return encode_message(msg)

    # --- frame stream -----------------------------------------------------

    def frames(self) -> Iterator[CaptureFrame]:
        """Stream wire frames; ``self.last_report`` is complete afterwards."""
        report = GeneratorReport(params=self.params)
        self.last_report = report
        for ts, lane, payload in self._stream(report):
            yield CaptureFrame(ts, lane, payload)

    def _stream(self, report: GeneratorReport) -> Iterator[Tuple[float, str, bytes]]:
        p = self.params
        rng_dns = derive_rng(p.seed, "gen:dns")
        rng_flow = derive_rng(p.seed, "gen:flows")
        rng_client = derive_rng(p.seed, "gen:clients")
        rng_vis = derive_rng(p.seed, "gen:visibility")

        # Hot-loop locals.
        log = math.log
        flow_random = rng_flow.random
        client_random = rng_client.random
        vis_random = rng_vis.random
        burst_sizes = [k for k, _ in p.flow_burst_weights]
        burst_cum: List[float] = []
        acc = 0.0
        for _, w in p.flow_burst_weights:
            acc += w
            burst_cum.append(acc)
        burst_cum[-1] = 1.0
        size_cum = self.size_cdf.cumulative
        size_values = self.size_cdf.sizes
        bisect_left = bisect.bisect_left
        lag_mean = p.lag_mean
        lag_max = p.lag_max
        clients = p.clients
        public_fraction = p.public_resolver_fraction
        inv_width = 1.0 / p.bucket_width

        exporter = PackedV9Exporter(
            batch_size=p.batch_size, template_refresh=p.template_refresh
        )
        export_batch = exporter.export_batch
        carry: List[tuple] = []  # partial batch spanning bucket flushes
        batch_size = p.batch_size
        last_flow_frame_ts = p.start_ts

        # service name -> (expiry_ts, wire_bytes, packed server addresses)
        cache: Dict[str, Tuple[float, bytes, Tuple[bytes, ...]]] = {}
        # bucket index -> flow tuples; flushed once the event clock passes
        # the bucket's right edge (every later event only adds later flows,
        # so a passed bucket is final and the flow lane stays sorted).
        buckets: Dict[int, List[tuple]] = {}
        pending = 0
        flush_head = int(p.start_ts * inv_width)

        def emit_flows(rows: List[tuple]) -> Iterator[Tuple[float, str, bytes]]:
            # One finalized bucket: order it, prepend the partial batch
            # left over from the previous flush, and emit full batches by
            # slicing (C-speed) instead of per-row appends. Whole-tuple
            # sort keeps ties deterministic without a per-row key call.
            nonlocal last_flow_frame_ts, carry
            rows.sort()
            if carry:
                rows = carry + rows
            pos = 0
            end = len(rows) - batch_size
            while pos <= end:
                chunk = rows[pos:pos + batch_size]
                pos += batch_size
                frame_ts = chunk[0][0]
                if frame_ts < last_flow_frame_ts:
                    frame_ts = last_flow_frame_ts
                last_flow_frame_ts = frame_ts
                for datagram in export_batch(chunk):
                    report.flow_frames += 1
                    yield (frame_ts, LANE_FLOW, datagram)
            carry = rows[pos:]

        buckets_get = buckets.get
        cache_get = cache.get
        max_pending = p.max_pending
        flows_total = 0
        bytes_total = 0
        resolutions = 0
        peak_pending = 0

        try:
            for t, service in self.events():
                # Flush every bucket the event clock has passed.
                head = int(t * inv_width)
                if head > flush_head:
                    for idx in range(flush_head, head):
                        rows = buckets.pop(idx, None)
                        if rows:
                            pending -= len(rows)
                            yield from emit_flows(rows)
                    flush_head = head

                resolutions += 1
                name = service.name
                entry = cache_get(name)
                if entry is None or t >= entry[0]:
                    res = self.hosting.resolve(service, t, rng_dns)
                    try:
                        wire = self._resolution_wire(res, rng_dns.getrandbits(16))
                    except ParseError:
                        # The abuse population's mal-formatted category
                        # violates RFC 1035 on purpose (labels over 63
                        # bytes, underscores); those names cannot ride a
                        # real DNS message. A collector would see exactly
                        # that — an undecodable answer — so emit the raw
                        # name as the frame payload: replay counts it
                        # under dns_invalid and the flows stay unmatched.
                        wire = b"\xff\xff" + name.encode("utf-8", "surrogateescape")
                        report.malformed_dns_frames += 1
                    packed = tuple(ipaddress.ip_address(ip).packed for ip in res.ips)
                    entry = (t + res.a_ttl, wire, packed)
                    cache[name] = entry
                    report.cache_misses += 1
                if public_fraction and vis_random() < public_fraction:
                    report.invisible_resolutions += 1
                else:
                    report.dns_frames += 1
                    yield (t, LANE_DNS, entry[1])

                # Burst of downstream flows from the resolved addresses:
                # server → client, paper orientation (the engines look the
                # flow's *source* address up in the IP-NAME maps, the way
                # FlowDNS sees CDN bytes arrive at an eyeball ISP).
                servers = entry[2]
                n_servers = len(servers)
                n_flows = burst_sizes[bisect_left(burst_cum, flow_random())]
                client = int(client_random() * clients)
                if client >= clients:  # guard the 2^-53 rounding edge
                    client = clients - 1
                if len(servers[0]) == 16:
                    client_addr = (CLIENT_V6_BASE + client).to_bytes(16, "big")
                else:
                    client_addr = (CLIENT_V4_BASE + client).to_bytes(4, "big")
                t1 = t + 0.001
                for _ in range(n_flows):
                    # Inline Exp(1/lag_mean): one C-level draw, no
                    # method-call overhead at hundreds of kHz.
                    lag = -log(1.0 - flow_random()) * lag_mean
                    fts = t1 + lag if lag < lag_max else t1 + lag_max
                    size = size_values[bisect_left(size_cum, flow_random())]
                    row = (
                        fts,
                        servers[int(flow_random() * n_servers) % n_servers]
                        if n_servers > 1
                        else servers[0],
                        client_addr,
                        443 if flow_random() < 0.9 else 80,
                        32768 + int(flow_random() * 28232.0),
                        6,
                        1 + size // 1448,
                        size,
                    )
                    key = int(fts * inv_width)
                    rows = buckets_get(key)
                    if rows is None:
                        buckets[key] = [row]
                    else:
                        rows.append(row)
                    bytes_total += size
                flows_total += n_flows
                pending += n_flows
                if pending > peak_pending:
                    peak_pending = pending
                if pending > max_pending:
                    # Hard memory bound: force-flush the oldest buckets even
                    # though they are not final yet. Later flows that would
                    # have landed in them get emitted behind the advanced
                    # flush head, so the buffer stays bounded and emission
                    # deterministic.
                    report.overflow_flushes += 1
                    while pending > max_pending // 2 and buckets:
                        idx = min(buckets)
                        rows = buckets.pop(idx)
                        pending -= len(rows)
                        yield from emit_flows(rows)
                        if idx >= flush_head:
                            flush_head = idx + 1

            # End of stream: every bucket is final. Flush in index order,
            # then drain the partial batch.
            for idx in sorted(buckets):
                yield from emit_flows(buckets[idx])
            buckets.clear()
            if carry:
                frame_ts = max(carry[0][0], last_flow_frame_ts)
                for datagram in export_batch(carry):
                    report.flow_frames += 1
                    yield (frame_ts, LANE_FLOW, datagram)
                carry = []
        finally:
            report.flows = flows_total
            report.flow_bytes = bytes_total
            report.resolutions = resolutions
            report.peak_pending = peak_pending

    # --- capture emission ---------------------------------------------------

    def write(self, target: Union[str, object]) -> GeneratorReport:
        """Stream the whole workload into ``target`` (path or binary file)."""
        started = time.perf_counter()
        writer = CaptureWriter(target)
        report = GeneratorReport(params=self.params)
        self.last_report = report
        try:
            writer.record_stream(self._stream(report))
            writer.ensure_open()  # an empty config still leaves a valid capture
        finally:
            writer.close()
        report.elapsed = time.perf_counter() - started
        report.frames_written = writer.frames_written
        report.wire_bytes = writer.bytes_written
        return report


def generate_capture(
    params: GeneratorParams, target: Union[str, object]
) -> GeneratorReport:
    """Generate one capture file from ``params``; returns the report."""
    return WorkloadGenerator(params).write(target)


# Re-exported for CLI listings.
__all__ = [
    "FLOW_BURST_WEIGHTS",
    "GeneratorParams",
    "GeneratorReport",
    "SIZE_CDFS",
    "SizeCdf",
    "TTL_PROFILES",
    "WorkloadGenerator",
    "generate_capture",
    "ttl_model_for",
]
