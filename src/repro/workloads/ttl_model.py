"""TTL model matched to the paper's Figure 8 ECDF anchors.

The anchors the paper states (Appendix A.6):

* 99 % of A/AAAA records have TTL < 3600 s;
* 99 % of CNAME records have TTL < 7200 s;
* "more than 70 % of the DNS records have TTL < 300 seconds"
  (Section 4's accuracy analysis).

Real resolver TTLs concentrate on a handful of round values (30, 60, 300,
3600, 86400 …), so the model is a discrete mixture over those values with
weights chosen to hit the anchors exactly. The Figure 8 bench verifies
the generated stream against all three anchors.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.dns.rr import RRType
from repro.util.errors import ConfigError

#: (ttl_seconds, probability) — A/AAAA records.
ADDRESS_TTL_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (30, 0.08),
    (60, 0.22),
    (120, 0.15),
    (299, 0.25),  # "below 300" bucket: many CDNs use 300-ε effective TTLs
    (600, 0.15),
    (900, 0.07),
    (1800, 0.07),
    (7200, 0.006),
    (14400, 0.002),
    (86400, 0.002),
)

#: (ttl_seconds, probability) — CNAME records: systematically longer.
CNAME_TTL_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (60, 0.05),
    (299, 0.20),
    (600, 0.15),
    (1800, 0.20),
    (3600, 0.25),
    (5400, 0.14),
    (14400, 0.006),
    (86400, 0.004),
)


class TtlModel:
    """Samples record TTLs from the Figure 8-calibrated mixtures."""

    def __init__(
        self,
        address_weights: Sequence[Tuple[int, float]] = ADDRESS_TTL_WEIGHTS,
        cname_weights: Sequence[Tuple[int, float]] = CNAME_TTL_WEIGHTS,
    ):
        self._tables: Dict[bool, Tuple[List[int], List[float]]] = {}
        for is_cname, weights in ((False, address_weights), (True, cname_weights)):
            values = [v for v, _ in weights]
            probs = [p for _, p in weights]
            total = sum(probs)
            if abs(total - 1.0) > 1e-6:
                raise ConfigError(f"TTL weights sum to {total}, expected 1.0")
            cumulative = []
            acc = 0.0
            for p in probs:
                acc += p
                cumulative.append(acc)
            cumulative[-1] = 1.0
            self._tables[is_cname] = (values, cumulative)

    def sample(self, rng: random.Random, rtype: RRType) -> int:
        """Draw a TTL for one record of the given type."""
        is_cname = rtype == RRType.CNAME
        values, cumulative = self._tables[is_cname]
        x = rng.random()
        for value, threshold in zip(values, cumulative):
            if x <= threshold:
                return value
        return values[-1]

    def fraction_below(self, rtype: RRType, ttl: float) -> float:
        """Model-side ECDF (exact, no sampling) for tests and reports."""
        is_cname = rtype == RRType.CNAME
        values, cumulative = self._tables[is_cname]
        frac = 0.0
        for value, cum in zip(values, cumulative):
            if value <= ttl:
                frac = cum
        return frac
