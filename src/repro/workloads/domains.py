"""Service and domain-name universe.

The paper's intro frames the problem around services (Netflix, Amazon
Prime, Google, …) hosted on shared CDNs. The universe here is a set of
:class:`ServiceSpec` entries: every service has a user-facing domain
name, a popularity weight (Zipf — a handful of streaming services carry
most bytes at an eyeball ISP), a hosting assignment (which CDN, how long
a CNAME chain), and traffic-shape parameters. Malicious and malformed
populations from :mod:`repro.workloads.malicious` are merged in with
paper-calibrated byte shares (Section 5: ≈0.5 % of daily volume).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigError
from repro.util.rng import derive_rng
from repro.workloads.malicious import AbusePopulation, build_abuse_population

_WORD_A = (
    "stream", "video", "play", "cloud", "shop", "news", "social", "game",
    "music", "photo", "mail", "search", "map", "chat", "store", "media",
)
_WORD_B = (
    "hub", "box", "ly", "zone", "now", "plus", "prime", "go", "it",
    "space", "net", "life", "time", "base", "day", "lab",
)
_TLDS = ("com", "net", "org", "tv", "io", "de", "eu")

#: Byte share of malformed + spam traffic: "0.5% of the daily traffic
#: volume uses either malformatted or spam/phish domain names".
PAPER_ABUSE_BYTE_SHARE = 0.005

#: Figure 6: chain-length distribution (lookup chain including the
#: IP→NAME hit). >99 % of records resolve within 6 lookups; tail to 17.
CHAIN_LENGTH_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (1, 0.38),
    (2, 0.28),
    (3, 0.17),
    (4, 0.10),
    (5, 0.045),
    (6, 0.018),
    (7, 0.004),
    (8, 0.002),
    (10, 0.0006),
    (13, 0.0003),
    (17, 0.0001),
)


@dataclass(frozen=True)
class ServiceSpec:
    """One service in the universe.

    ``chain_length`` counts the total lookup chain FlowDNS discovers for
    this service's traffic: 1 means the A record's owner is the service
    name itself (no CNAME); k > 1 means k-1 CNAME hops.
    ``popularity`` weights how often clients resolve the service;
    ``byte_weight`` weights how much traffic volume it contributes (the
    two differ: video streams few resolutions, many bytes).
    """

    name: str
    category: str = "benign"
    popularity: float = 1.0
    byte_weight: float = 1.0
    cdn: Optional[str] = None
    chain_length: int = 2
    long_lived: bool = False  # resolves with TTL >= AClearUpInterval
    #: Hosted on its own (non-CDN) address: no co-tenants ever refresh
    #: its IP-NAME entry, so stale flows genuinely depend on how long
    #: FlowDNS retains old records — the traffic class behind the
    #: Long-hashmap and rotation ablation deltas.
    origin_hosted: bool = False

    def __post_init__(self):
        if self.popularity < 0 or self.byte_weight < 0:
            raise ConfigError("service weights must be non-negative")
        if self.chain_length < 1:
            raise ConfigError("chain_length must be >= 1")


@dataclass
class DomainUniverse:
    """All services a workload can draw from, with sampling tables."""

    services: List[ServiceSpec]
    abuse: AbusePopulation
    seed: int

    _pop_cdf: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self):
        if not self.services:
            raise ConfigError("universe has no services")
        total = sum(s.popularity for s in self.services)
        if total <= 0:
            raise ConfigError("total popularity must be positive")
        acc = 0.0
        self._pop_cdf = []
        for s in self.services:
            acc += s.popularity / total
            self._pop_cdf.append(acc)
        self._pop_cdf[-1] = 1.0

    def sample_service(self, rng: random.Random) -> ServiceSpec:
        """Draw a service by resolution popularity."""
        idx = bisect.bisect_left(self._pop_cdf, rng.random())
        return self.services[min(idx, len(self.services) - 1)]

    @property
    def popularity_cdf(self) -> List[float]:
        """The cumulative popularity table behind :meth:`sample_service`.

        Exposed so high-rate samplers (the workload generator's event
        loop) can bisect it directly instead of paying a method call per
        draw; drawing ``services[bisect_left(popularity_cdf, u)]`` is
        exactly :meth:`sample_service`.
        """
        return self._pop_cdf

    def service_named(self, name: str) -> ServiceSpec:
        for s in self.services:
            if s.name == name:
                return s
        raise KeyError(name)

    @property
    def size(self) -> int:
        return len(self.services)

    def by_category(self) -> Dict[str, List[ServiceSpec]]:
        out: Dict[str, List[ServiceSpec]] = {}
        for s in self.services:
            out.setdefault(s.category, []).append(s)
        return out


def _sample_chain_length(
    rng: random.Random,
    weights: Tuple[Tuple[int, float], ...] = CHAIN_LENGTH_WEIGHTS,
) -> int:
    x = rng.random()
    acc = 0.0
    for length, weight in weights:
        acc += weight
        if x <= acc:
            return length
    return weights[-1][0]


def chain_weights_for_depth(max_depth: int) -> Tuple[Tuple[int, float], ...]:
    """Figure 6's chain-length distribution truncated at ``max_depth``.

    Keeps the paper's relative weights for every length <= ``max_depth``
    and renormalises, so a generator can bound CNAME-chain depth without
    inventing a new distribution shape.
    """
    if max_depth < 1:
        raise ConfigError("max chain depth must be at least 1")
    kept = [(length, w) for length, w in CHAIN_LENGTH_WEIGHTS if length <= max_depth]
    total = sum(w for _, w in kept)
    return tuple((length, w / total) for length, w in kept)


def _benign_name(rng: random.Random, taken: set) -> str:
    while True:
        name = (
            f"{rng.choice(_WORD_A)}{rng.choice(_WORD_B)}"
            f"{rng.randrange(1000)}.{rng.choice(_TLDS)}"
        )
        if name not in taken:
            taken.add(name)
            return name


def build_universe(
    seed: int,
    n_benign: int = 2000,
    cdn_names: Sequence[str] = ("acme-cdn", "borealis", "cumulus"),
    zipf_alpha: float = 0.9,
    long_lived_fraction: float = 0.04,
    rare_origin_fraction: float = 0.05,
    abuse_byte_share: float = PAPER_ABUSE_BYTE_SHARE,
    streaming_services: int = 2,
    chain_length_weights: Optional[Tuple[Tuple[int, float], ...]] = None,
    include_abuse: bool = True,
) -> DomainUniverse:
    """Construct the full universe for one workload.

    * ``streaming_services`` top services are pinned to the head of the
      Zipf ranking and given dedicated CDN pools — these are the paper's
      S1/S2 of Figure 4;
    * ``long_lived_fraction`` of services resolve with TTLs at or above
      the A clear-up interval, exercising the Long hashmaps;
    * abuse categories get ``abuse_byte_share`` of total byte weight,
      split heavy-tailed inside each category (Figure 5's shape);
    * ``chain_length_weights`` overrides the Figure 6 chain-length
      distribution (see :func:`chain_weights_for_depth` for bounding the
      depth); ``include_abuse=False`` builds a benign-only universe whose
      popularity column is an *exact* Zipf(``zipf_alpha``) — what the
      generator's statistical tests sample against.
    """
    if n_benign < streaming_services + 1:
        raise ConfigError("universe too small for the requested streaming services")
    chain_weights = (
        chain_length_weights if chain_length_weights is not None else CHAIN_LENGTH_WEIGHTS
    )
    rng = derive_rng(seed, "universe")
    taken: set = set()
    services: List[ServiceSpec] = []

    for rank in range(n_benign):
        popularity = 1.0 / (rank + 1) ** zipf_alpha
        if rank < streaming_services:
            # S1, S2, ...: video services — moderate resolution rate but
            # dominant byte volume, pinned to dedicated CDNs.
            name = f"s{rank + 1}-streaming.tv"
            services.append(
                ServiceSpec(
                    name=name,
                    popularity=popularity,
                    byte_weight=popularity * 14.0,
                    cdn=f"stream-cdn-{rank + 1}",
                    chain_length=_sample_chain_length(rng, chain_weights),
                    long_lived=False,
                )
            )
            continue
        name = _benign_name(rng, taken)
        roll = rng.random()
        long_lived = roll < long_lived_fraction
        rare_origin = long_lived_fraction <= roll < long_lived_fraction + rare_origin_fraction
        popularity_s = popularity
        byte_weight = popularity * rng.uniform(0.5, 2.0)
        chain_length = _sample_chain_length(rng, chain_weights)
        if long_lived or rare_origin:
            # "Resolve once, transfer for hours" services (updates,
            # backups, long-session video on origin servers): few cache
            # misses, many bytes, their own IPs. This asymmetry is what
            # the Long hashmaps and buffer rotation protect — popular
            # CDN-shared services re-populate the maps constantly, so
            # without this class the ablation deltas would vanish.
            popularity_s = popularity * 0.15
            byte_weight = popularity * rng.uniform(2.0, 4.0)
            chain_length = 1 if rng.random() < 0.7 else 2
        services.append(
            ServiceSpec(
                name=name,
                popularity=popularity_s,
                byte_weight=byte_weight,
                cdn=None,  # assigned by the CDN layer
                chain_length=chain_length,
                long_lived=long_lived,
                origin_hosted=long_lived or rare_origin,
            )
        )

    abuse = build_abuse_population(derive_rng(seed, "abuse"), n_benign)
    if not include_abuse:
        return DomainUniverse(services=services, abuse=abuse, seed=seed)
    benign_byte_total = sum(s.byte_weight for s in services)
    total_abuse_names = len(abuse.all_names())
    # Abuse byte share: share/(1-share) of the benign total, with each
    # category's budget proportional to its name count and split
    # Pareto-style *within* the category — Figure 5's "only a limited
    # number of domain names account for a large fraction of the
    # traffic" must hold per category, not just globally.
    abuse_total = benign_byte_total * abuse_byte_share / (1.0 - abuse_byte_share)
    arng = derive_rng(seed, "abuse-weights")
    for category, names in abuse.by_category.items():
        names = list(names)
        arng.shuffle(names)
        category_budget = abuse_total * len(names) / total_abuse_names
        weights = [1.0 / (i + 1) ** 1.3 for i in range(len(names))]
        weight_sum = sum(weights)
        for name, w in zip(names, weights):
            services.append(
                ServiceSpec(
                    name=name,
                    category=category,
                    popularity=0.02 * w / weight_sum * len(names),
                    byte_weight=category_budget * w / weight_sum,
                    chain_length=1,  # abuse domains rarely sit behind CDN chains
                    long_lived=False,
                    origin_hosted=True,  # bulletproof hosting, not shared CDNs
                )
            )

    return DomainUniverse(services=services, abuse=abuse, seed=seed)
