"""Join FlowDNS output with BGP: the Figure 4 analysis.

Figure 4 plots, for streaming services S1 and S2, the cumulative traffic
volume contributed by each *source AS* over time. The input here is the
stream of correlation results (or parsed output rows) plus a RIB; the
output is per-(service, ASN) byte series bucketed by hour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.rib import Rib
from repro.core.lookup import CorrelationResult


@dataclass
class ServiceAsSeries:
    """Per-source-AS byte series for one service."""

    service: str
    bucket_seconds: float
    #: (asn, bucket_index) → bytes
    buckets: Dict[Tuple[int, int], int] = field(default_factory=lambda: defaultdict(int))
    unrouted_bytes: int = 0

    def add(self, asn: Optional[int], bucket: int, nbytes: int) -> None:
        if asn is None:
            self.unrouted_bytes += nbytes
        else:
            self.buckets[(asn, bucket)] += nbytes

    def total_by_asn(self) -> Dict[int, int]:
        out: Dict[int, int] = defaultdict(int)
        for (asn, _bucket), nbytes in self.buckets.items():
            out[asn] += nbytes
        return dict(out)

    def series_for(self, asn: int) -> List[Tuple[int, int]]:
        """Sorted (bucket_index, bytes) pairs for one AS."""
        pairs = [
            (bucket, nbytes)
            for (a, bucket), nbytes in self.buckets.items()
            if a == asn
        ]
        return sorted(pairs)

    def dominant_asns(self, coverage: float = 0.95) -> List[int]:
        """The smallest AS set carrying ``coverage`` of the service's bytes.

        Figure 4's headline observation is the *size* of this set: one AS
        for S1, two for S2.
        """
        totals = sorted(self.total_by_asn().items(), key=lambda kv: kv[1], reverse=True)
        grand = sum(v for _, v in totals)
        out: List[int] = []
        acc = 0
        for asn, nbytes in totals:
            out.append(asn)
            acc += nbytes
            if grand > 0 and acc / grand >= coverage:
                break
        return out


@dataclass
class HandoverMatrix:
    """Per (origin AS, hand-over AS) byte totals.

    The paper's planning use case looks at "source AS, destination AS,
    hand-over AS" to find fallback paths: if a peering link to one
    hand-over AS breaks, this matrix shows which origins' traffic must
    shift and how much of it there is.
    """

    bytes_by_pair: Dict[Tuple[int, Optional[int]], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    unrouted_bytes: int = 0

    def add(self, route, nbytes: int) -> None:
        if route is None:
            self.unrouted_bytes += nbytes
            return
        self.bytes_by_pair[(route.origin_asn, route.handover_asn)] += nbytes

    def by_handover(self) -> Dict[Optional[int], int]:
        out: Dict[Optional[int], int] = defaultdict(int)
        for (_origin, handover), nbytes in self.bytes_by_pair.items():
            out[handover] += nbytes
        return dict(out)

    def origins_behind(self, handover_asn: int) -> List[int]:
        """Which origin ASes are reached through one hand-over AS."""
        return sorted(
            origin
            for (origin, handover), _ in self.bytes_by_pair.items()
            if handover == handover_asn
        )

    def shift_if_broken(self, handover_asn: int) -> int:
        """Bytes that must re-route if this hand-over AS's link breaks."""
        return sum(
            nbytes
            for (_origin, handover), nbytes in self.bytes_by_pair.items()
            if handover == handover_asn
        )


def handover_matrix(results: Iterable[CorrelationResult], rib: Rib) -> HandoverMatrix:
    """Aggregate all correlated traffic into a hand-over matrix."""
    matrix = HandoverMatrix()
    for result in results:
        if not result.matched:
            continue
        matrix.add(rib.lookup(result.flow.src_ip), result.flow.bytes_)
    return matrix


def correlate_with_bgp(
    results: Iterable[CorrelationResult],
    rib: Rib,
    services: Iterable[str],
    bucket_seconds: float = 3600.0,
    t0: float = 0.0,
    service_matcher=None,
) -> Dict[str, ServiceAsSeries]:
    """Aggregate correlated traffic per (service, source AS, hour).

    ``service_matcher(result_service, wanted)`` decides whether an output
    row belongs to a wanted service; the default is exact match on the
    resolved name.
    """
    wanted = list(services)
    if service_matcher is None:
        service_matcher = lambda resolved, target: resolved == target
    out = {s: ServiceAsSeries(service=s, bucket_seconds=bucket_seconds) for s in wanted}
    for result in results:
        if not result.matched:
            continue
        resolved = result.service
        for target in wanted:
            if service_matcher(resolved, target):
                asn = rib.origin_asn(result.flow.src_ip)
                bucket = int((result.flow.ts - t0) // bucket_seconds)
                out[target].add(asn, bucket, result.flow.bytes_)
                break
    return out
