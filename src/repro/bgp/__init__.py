"""BGP substrate: radix-trie RIB and the per-AS traffic correlation.

Supports the paper's "Network Provisioning and Planning" use case
(Figure 4): joining FlowDNS's correlated output with BGP origin data to
see which ASes serve which services.
"""

from repro.bgp.asn import DEFAULT_AS_REGISTRY, AsInfo, AsRegistry
from repro.bgp.correlate import (
    HandoverMatrix,
    ServiceAsSeries,
    correlate_with_bgp,
    handover_matrix,
)
from repro.bgp.prefix_trie import PrefixTrie
from repro.bgp.rib import Rib, Route

__all__ = [
    "PrefixTrie",
    "Rib",
    "Route",
    "AsInfo",
    "AsRegistry",
    "DEFAULT_AS_REGISTRY",
    "ServiceAsSeries",
    "correlate_with_bgp",
    "HandoverMatrix",
    "handover_matrix",
]
