"""A BGP RIB: prefixes with origin (and optional AS-path) information.

The paper correlates FlowDNS output "with their BGP information to find
more details about the origin and destination of the traffic" — source
AS, destination AS, hand-over AS. The RIB here holds per-prefix origin
ASN plus an optional AS path, backed by the radix trie for line-rate
longest-prefix matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.bgp.prefix_trie import PrefixTrie
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Route:
    """One RIB entry."""

    prefix: str
    origin_asn: int
    as_path: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.as_path and self.as_path[-1] != self.origin_asn:
            raise ConfigError("AS path must end at the origin ASN")

    @property
    def handover_asn(self) -> Optional[int]:
        """The first AS the traffic is handed to/from (path head)."""
        return self.as_path[0] if self.as_path else None


class Rib:
    """Longest-prefix-match routing table of :class:`Route` entries."""

    def __init__(self, routes: Iterable[Route] = ()):
        self._trie: PrefixTrie = PrefixTrie()
        self._routes: List[Route] = []
        for route in routes:
            self.add(route)

    def add(self, route: Route) -> None:
        self._trie.insert(route.prefix, route)
        self._routes.append(route)

    def add_prefix(self, prefix: str, origin_asn: int, as_path: Tuple[int, ...] = ()) -> None:
        self.add(Route(prefix=prefix, origin_asn=origin_asn, as_path=as_path))

    def lookup(self, address) -> Optional[Route]:
        """Best-match route for an address (None = not announced)."""
        return self._trie.lookup(address)

    def origin_asn(self, address) -> Optional[int]:
        route = self.lookup(address)
        return route.origin_asn if route is not None else None

    def __len__(self) -> int:
        return len(self._trie)

    def routes(self) -> List[Route]:
        return list(self._routes)

    @classmethod
    def from_entries(cls, entries: Iterable[Tuple[str, int]], transit_asn: int = 64700) -> "Rib":
        """Build a RIB from (prefix, origin) pairs, e.g. the CDN pools.

        Every route gets a one-hop synthetic path through the transit AS,
        which gives the hand-over-AS analyses something to chew on.
        """
        return cls(
            Route(prefix=prefix, origin_asn=asn, as_path=(transit_asn, asn))
            for prefix, asn in entries
        )
