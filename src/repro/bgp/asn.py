"""AS metadata registry.

A minimal stand-in for the AS-name databases operators join against.
The synthetic topology gives each CDN and the ISP itself an AS entry so
Figure 4's per-AS series carry readable labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class AsInfo:
    """One autonomous system's metadata."""

    asn: int
    name: str
    kind: str = "transit"  # "cdn" | "isp" | "transit" | "cloud"

    def __post_init__(self):
        if not 0 < self.asn < 2**32:
            raise ValueError(f"invalid ASN {self.asn}")


#: The reproduction's synthetic AS landscape (documentation ASNs).
DEFAULT_AS_REGISTRY = (
    AsInfo(64500, "EyeballNet (the ISP)", "isp"),
    AsInfo(64501, "StreamCDN-One", "cdn"),
    AsInfo(64511, "StreamCDN-Two-East", "cdn"),
    AsInfo(64512, "StreamCDN-Two-West", "cdn"),
    AsInfo(64600, "AcmeCDN", "cdn"),
    AsInfo(64601, "Borealis CDN", "cdn"),
    AsInfo(64602, "Cumulus CDN", "cdn"),
    AsInfo(64700, "TransitCo", "transit"),
)


class AsRegistry:
    """ASN → metadata lookups with graceful unknowns."""

    def __init__(self, entries: Iterable[AsInfo] = DEFAULT_AS_REGISTRY):
        self._by_asn: Dict[int, AsInfo] = {e.asn: e for e in entries}

    def get(self, asn: int) -> Optional[AsInfo]:
        return self._by_asn.get(asn)

    def name_of(self, asn: int) -> str:
        info = self._by_asn.get(asn)
        return info.name if info is not None else f"AS{asn}"

    def add(self, info: AsInfo) -> None:
        self._by_asn[info.asn] = info

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)
