"""Binary radix trie for longest-prefix matching.

The BGP correlation of Section 5 ("the output from FlowDNS is then
correlated with BGP data, e.g. source AS …") needs IP→origin-AS lookups
at flow-record rate. A bitwise radix trie gives O(address length) exact
longest-prefix-match for IPv4 and IPv6 alike, with no third-party
dependency.

Bit walks run over ``int.from_bytes(packed)`` with shifts — one big-int
conversion per key instead of a per-bit generator frame — and
:meth:`PrefixTrie.lookup_many` adds a bounded memo so repeated flow
addresses (CDN pools hit the same /24s over and over) resolve at
dictionary speed.
"""

from __future__ import annotations

import ipaddress
from typing import Generic, Iterable, List, Optional, Tuple, TypeVar, Union


V = TypeVar("V")
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

#: lookup_many memo sentinel: a stored None result must hit the memo too.
_MISSING = object()


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "value", "has_value")

    def __init__(self) -> None:
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Longest-prefix-match table over CIDR prefixes.

    IPv4 and IPv6 live in separate sub-tries, so ``0.0.0.0/0`` and
    ``::/0`` defaults can coexist.
    """

    #: Cap on the lookup_many memo; cleared wholesale when exceeded.
    _MEMO_MAX = 1 << 16

    def __init__(self) -> None:
        self._roots = {4: _Node(), 6: _Node()}
        self._size = 0
        # address-argument -> lookup() result, invalidated on any mutation
        # (insert/remove can change what a memoised address matches).
        self._memo: dict = {}

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix, value: V) -> None:
        """Insert or replace one prefix's value."""
        net = ipaddress.ip_network(prefix) if not isinstance(
            prefix, (ipaddress.IPv4Network, ipaddress.IPv6Network)
        ) else prefix
        self._memo.clear()
        node = self._roots[net.version]
        length = net.prefixlen
        word = int.from_bytes(net.network_address.packed, "big")
        total = 32 if net.version == 4 else 128
        for pos in range(length):
            bit = (word >> (total - 1 - pos)) & 1
            child = node.one if bit else node.zero
            if child is None:
                child = _Node()
                if bit:
                    node.one = child
                else:
                    node.zero = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address) -> Optional[V]:
        """Longest-prefix match; None when no covering prefix exists."""
        result = self.lookup_with_prefix(address)
        return result[1] if result is not None else None

    def lookup_with_prefix(self, address) -> Optional[Tuple[int, V]]:
        """Return (matched prefix length, value) for the best match."""
        addr = (
            ipaddress.ip_address(address)
            if not isinstance(address, (ipaddress.IPv4Address, ipaddress.IPv6Address))
            else address
        )
        node = self._roots[addr.version]
        best: Optional[Tuple[int, V]] = (0, node.value) if node.has_value else None
        max_len = 32 if addr.version == 4 else 128
        word = int.from_bytes(addr.packed, "big")
        shift = max_len  # bit i lives at shift max_len - 1 - i
        depth = 0
        while depth < max_len:
            shift -= 1
            node = node.one if (word >> shift) & 1 else node.zero
            if node is None:
                break
            depth += 1
            if node.has_value:
                best = (depth, node.value)
        return best

    def lookup_many(self, addresses: Iterable) -> List[Optional[V]]:
        """Longest-prefix match for a batch of addresses, memoised.

        Flow-rate correlation hits the same hot addresses constantly;
        each distinct address argument (text or ``ipaddress`` object —
        both hash cheaply) walks the trie once and later occurrences are
        one dict probe. The memo is bounded (cleared wholesale past
        ``_MEMO_MAX`` entries) and invalidated by ``insert``/``remove``.
        """
        memo = self._memo
        out: List[Optional[V]] = []
        append = out.append
        missing = _MISSING
        for address in addresses:
            value = memo.get(address, missing)
            if value is missing:
                value = self.lookup(address)
                if len(memo) >= self._MEMO_MAX:
                    memo.clear()
                memo[address] = value
            append(value)
        return out

    def remove(self, prefix) -> bool:
        """Remove a prefix; returns True when it was present.

        Nodes are not physically pruned (removal is rare in RIB usage);
        the value flag is cleared, which is sufficient for correctness.
        """
        net = ipaddress.ip_network(prefix) if not isinstance(
            prefix, (ipaddress.IPv4Network, ipaddress.IPv6Network)
        ) else prefix
        node = self._roots[net.version]
        length = net.prefixlen
        word = int.from_bytes(net.network_address.packed, "big")
        total = 32 if net.version == 4 else 128
        for pos in range(length):
            node = node.one if (word >> (total - 1 - pos)) & 1 else node.zero
            if node is None:
                return False
        if node.has_value:
            self._memo.clear()
            node.has_value = False
            node.value = None
            self._size -= 1
            return True
        return False

    def items(self) -> List[Tuple[str, V]]:
        """All (prefix, value) pairs, for debugging and tests."""
        out: List[Tuple[str, V]] = []
        for version, root in self._roots.items():
            total_bits = 32 if version == 4 else 128
            addr_bytes = total_bits // 8
            stack: List[Tuple[_Node, int, int]] = [(root, 0, 0)]
            while stack:
                node, value_bits, depth = stack.pop()
                if node.has_value:
                    packed = value_bits << (total_bits - depth)
                    raw = packed.to_bytes(addr_bytes, "big")
                    base = ipaddress.ip_address(raw)
                    out.append((f"{base}/{depth}", node.value))
                if node.zero is not None:
                    stack.append((node.zero, value_bits << 1, depth + 1))
                if node.one is not None:
                    stack.append((node.one, (value_bits << 1) | 1, depth + 1))
        return out
