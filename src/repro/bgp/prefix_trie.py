"""Binary radix trie for longest-prefix matching.

The BGP correlation of Section 5 ("the output from FlowDNS is then
correlated with BGP data, e.g. source AS …") needs IP→origin-AS lookups
at flow-record rate. A bitwise radix trie gives O(address length) exact
longest-prefix-match for IPv4 and IPv6 alike, with no third-party
dependency.
"""

from __future__ import annotations

import ipaddress
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar, Union


V = TypeVar("V")
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "value", "has_value")

    def __init__(self) -> None:
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Longest-prefix-match table over CIDR prefixes.

    IPv4 and IPv6 live in separate sub-tries, so ``0.0.0.0/0`` and
    ``::/0`` defaults can coexist.
    """

    def __init__(self) -> None:
        self._roots = {4: _Node(), 6: _Node()}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _bits(packed: bytes, length: int) -> Iterator[int]:
        for i in range(length):
            yield (packed[i // 8] >> (7 - (i % 8))) & 1

    def insert(self, prefix, value: V) -> None:
        """Insert or replace one prefix's value."""
        net = ipaddress.ip_network(prefix) if not isinstance(
            prefix, (ipaddress.IPv4Network, ipaddress.IPv6Network)
        ) else prefix
        node = self._roots[net.version]
        for bit in self._bits(net.network_address.packed, net.prefixlen):
            child = node.one if bit else node.zero
            if child is None:
                child = _Node()
                if bit:
                    node.one = child
                else:
                    node.zero = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address) -> Optional[V]:
        """Longest-prefix match; None when no covering prefix exists."""
        result = self.lookup_with_prefix(address)
        return result[1] if result is not None else None

    def lookup_with_prefix(self, address) -> Optional[Tuple[int, V]]:
        """Return (matched prefix length, value) for the best match."""
        addr = (
            ipaddress.ip_address(address)
            if not isinstance(address, (ipaddress.IPv4Address, ipaddress.IPv6Address))
            else address
        )
        node = self._roots[addr.version]
        best: Optional[Tuple[int, V]] = (0, node.value) if node.has_value else None
        depth = 0
        max_len = 32 if addr.version == 4 else 128
        for bit in self._bits(addr.packed, max_len):
            node = node.one if bit else node.zero
            if node is None:
                break
            depth += 1
            if node.has_value:
                best = (depth, node.value)
        return best

    def remove(self, prefix) -> bool:
        """Remove a prefix; returns True when it was present.

        Nodes are not physically pruned (removal is rare in RIB usage);
        the value flag is cleared, which is sufficient for correctness.
        """
        net = ipaddress.ip_network(prefix) if not isinstance(
            prefix, (ipaddress.IPv4Network, ipaddress.IPv6Network)
        ) else prefix
        node = self._roots[net.version]
        for bit in self._bits(net.network_address.packed, net.prefixlen):
            node = node.one if bit else node.zero
            if node is None:
                return False
        if node.has_value:
            node.has_value = False
            node.value = None
            self._size -= 1
            return True
        return False

    def items(self) -> List[Tuple[str, V]]:
        """All (prefix, value) pairs, for debugging and tests."""
        out: List[Tuple[str, V]] = []
        for version, root in self._roots.items():
            total_bits = 32 if version == 4 else 128
            addr_bytes = total_bits // 8
            stack: List[Tuple[_Node, int, int]] = [(root, 0, 0)]
            while stack:
                node, value_bits, depth = stack.pop()
                if node.has_value:
                    packed = value_bits << (total_bits - depth)
                    raw = packed.to_bytes(addr_bytes, "big")
                    base = ipaddress.ip_address(raw)
                    out.append((f"{base}/{depth}", node.value))
                if node.zero is not None:
                    stack.append((node.zero, value_bits << 1, depth + 1))
                if node.one is not None:
                    stack.append((node.one, (value_bits << 1) | 1, depth + 1))
        return out
