"""Bounded stream buffer with drop accounting.

This models the per-stream internal buffer from Section 2. A producer
(the ISP's stream infrastructure) pushes records; the consumer (FlowDNS)
pops them. When the buffer is full, pushes are *dropped and counted* —
they do not block and do not displace queued records, matching the
"streams start to drop data" semantics whose loss rate the paper reports
(≈0.01 % for FlowDNS, >90 % for the exact-TTL variant of Appendix A.8).

Thread-safe: the threaded engine shares one buffer between a producer
thread and several consumer threads.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from repro.util.errors import ConfigError, StreamClosed


@dataclass
class BufferStats:
    """Counters describing one buffer's lifetime behaviour."""

    offered: int = 0
    accepted: int = 0
    dropped: int = 0
    popped: int = 0
    high_watermark: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of offered records that were dropped."""
        return self.dropped / self.offered if self.offered else 0.0


class BoundedBuffer:
    """A FIFO with a hard capacity; overflow drops the *incoming* record."""

    def __init__(self, capacity: int, name: str = "buffer"):
        if capacity <= 0:
            raise ConfigError("buffer capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.stats = BufferStats()
        self._items: Deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def push(self, item) -> bool:
        """Offer one record. Returns False (and counts a drop) when full."""
        with self._lock:
            if self._closed:
                raise StreamClosed(f"push on closed buffer {self.name!r}")
            self.stats.offered += 1
            if len(self._items) >= self.capacity:
                self.stats.dropped += 1
                return False
            self._items.append(item)
            self.stats.accepted += 1
            if len(self._items) > self.stats.high_watermark:
                self.stats.high_watermark = len(self._items)
            self._not_empty.notify()
            return True

    def push_many(self, items: Iterable) -> int:
        """Offer several records under one lock; returns how many were
        accepted. Overflow still drops the incoming record, per record."""
        batch = list(items)
        if not batch:
            return 0
        with self._lock:
            if self._closed:
                raise StreamClosed(f"push on closed buffer {self.name!r}")
            queue = self._items
            stats = self.stats
            accepted = 0
            for item in batch:
                stats.offered += 1
                if len(queue) >= self.capacity:
                    stats.dropped += 1
                    continue
                queue.append(item)
                accepted += 1
            stats.accepted += accepted
            if len(queue) > stats.high_watermark:
                stats.high_watermark = len(queue)
            if accepted:
                self._not_empty.notify(accepted)
            return accepted

    def pop(self, timeout: Optional[float] = None):
        """Remove and return the oldest record.

        Blocks up to ``timeout`` seconds; returns ``None`` on timeout or
        when the buffer is closed and drained.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            item = self._items.popleft()
            self.stats.popped += 1
            return item

    def pop_batch(self, max_items: int) -> List:
        """Non-blocking: drain up to ``max_items`` records."""
        with self._lock:
            n = min(max_items, len(self._items))
            batch = [self._items.popleft() for _ in range(n)]
            self.stats.popped += n
            return batch

    def pop_many(self, max_items: int, timeout: Optional[float] = None) -> List:
        """Blocking batch pop: wait for at least one record, drain up to
        ``max_items`` under a single lock acquisition.

        Returns an empty list on timeout or when the buffer is closed and
        drained — the batched engine's hot path, amortising the lock
        round-trip that :meth:`pop` pays per record.
        """
        if max_items <= 0:
            return []
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout=timeout):
                    return []
            n = min(max_items, len(self._items))
            batch = [self._items.popleft() for _ in range(n)]
            self.stats.popped += n
            return batch

    def close(self) -> None:
        """Mark the producer side done; consumers drain then get ``None``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def fill_fraction(self) -> float:
        return len(self) / self.capacity

    def __repr__(self) -> str:
        return (
            f"BoundedBuffer({self.name!r}, {len(self)}/{self.capacity}, "
            f"dropped={self.stats.dropped})"
        )
