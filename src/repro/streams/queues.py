"""Worker queues: the FillUp / LookUp / Write queues from Figure 1.

Section 3.1: "Each worker has an input and output queue which enables the
communication between workers. It is important to avoid that too many
workers write to the same queue, as this contention causes a decrease in
performance." :class:`ShardedQueues` implements the paper's mitigation:
the queue is split into shards, producers pick a shard by record label, so
each shard has few writers.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, List, Optional

from repro.util.errors import ConfigError, StreamClosed


class WorkerQueue:
    """An unbounded thread-safe FIFO with close semantics.

    Unlike :class:`repro.streams.buffer.BoundedBuffer`, worker queues in
    FlowDNS do not drop: loss is accounted only at the stream ingress
    buffers. Backpressure between workers is applied by the engine's
    scheduling instead. Contention is tracked as the number of lock
    acquisitions that found the lock busy, feeding the CPU cost model.
    """

    def __init__(self, name: str = "queue"):
        self.name = name
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.pushed = 0
        self.popped = 0
        self.contended = 0

    def push(self, item) -> None:
        acquired = self._lock.acquire(blocking=False)
        if not acquired:
            self.contended += 1
            self._lock.acquire()
        try:
            if self._closed:
                raise StreamClosed(f"push on closed queue {self.name!r}")
            self._items.append(item)
            self.pushed += 1
            self._not_empty.notify()
        finally:
            self._lock.release()

    def push_many(self, items) -> int:
        """Enqueue several items with a single (possibly contended) lock
        acquisition; returns how many were pushed."""
        batch = list(items)
        if not batch:
            return 0
        acquired = self._lock.acquire(blocking=False)
        if not acquired:
            self.contended += 1
            self._lock.acquire()
        try:
            if self._closed:
                raise StreamClosed(f"push on closed queue {self.name!r}")
            self._items.extend(batch)
            self.pushed += len(batch)
            self._not_empty.notify(len(batch))
            return len(batch)
        finally:
            self._lock.release()

    def pop(self, timeout: Optional[float] = None):
        """Blocking pop; ``None`` signals closed-and-drained or timeout."""
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            self.popped += 1
            return self._items.popleft()

    def pop_many(self, max_items: int, timeout: Optional[float] = None) -> List:
        """Blocking batch pop: wait for at least one item, then drain up to
        ``max_items`` under the same lock acquisition.

        Returns ``[]`` on timeout or when the queue is closed and drained.
        """
        if max_items <= 0:
            return []
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout=timeout):
                    return []
            n = min(max_items, len(self._items))
            batch = [self._items.popleft() for _ in range(n)]
            self.popped += n
            return batch

    def pop_nowait(self):
        with self._lock:
            if not self._items:
                return None
            self.popped += 1
            return self._items.popleft()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class ShardedQueues:
    """N queue shards with a label-based routing function.

    ``router`` maps a record to an ``int`` label; the shard index is
    ``label % num_shards``. With ``num_shards=1`` this degrades to a single
    contended queue — which is exactly the *No Split* ablation's queue
    configuration.
    """

    def __init__(
        self,
        num_shards: int,
        name: str = "queue",
        router: Optional[Callable] = None,
    ):
        if num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        self.shards: List[WorkerQueue] = [
            WorkerQueue(name=f"{name}[{i}]") for i in range(num_shards)
        ]
        self._router = router if router is not None else (lambda item: hash(item))

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, item) -> WorkerQueue:
        return self.shards[self._router(item) % len(self.shards)]

    def push(self, item) -> None:
        self.shard_for(item).push(item)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    @property
    def pushed(self) -> int:
        return sum(s.pushed for s in self.shards)

    @property
    def popped(self) -> int:
        return sum(s.popped for s in self.shards)

    @property
    def contended(self) -> int:
        return sum(s.contended for s in self.shards)
