"""Stream sources and multi-stream plumbing.

The large-ISP deployment reads 2 DNS streams and 26 Netflow streams in
parallel (Section 2). :class:`RecordStream` pairs a record iterator with a
:class:`BoundedBuffer`; :class:`StreamSet` groups the streams of one kind
and aggregates their loss statistics the way the paper reports "loss on
the streams".
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.streams.buffer import BoundedBuffer
from repro.util.errors import ConfigError


class RecordStream:
    """One named input stream: a source iterator feeding a bounded buffer.

    In live operation a receiver thread pumps the source into the buffer;
    in simulation the engine calls :meth:`pump` with an explicit budget to
    model how many records arrive per scheduling quantum.
    """

    def __init__(self, name: str, source: Iterable, capacity: int = 65536):
        self.name = name
        self._source: Iterator = iter(source)
        self.buffer = BoundedBuffer(capacity, name=name)
        self._exhausted = False
        #: The exception a failing source raised mid-stream, if any.
        self.error: Optional[BaseException] = None

    def pump(self, max_records: int) -> int:
        """Move up to ``max_records`` from the source into the buffer.

        Returns the number of records *taken from the source* (accepted or
        dropped — drops are the buffer's concern). Closes the buffer when
        the source is exhausted — including when it *fails*: a raising
        source must still end its stream, or downstream drain workers
        would wait forever on a buffer that can never close. The error is
        recorded on :attr:`error` and re-raised.
        """
        if self._exhausted:
            return 0
        # Deliberately per-record: a live source that yields slowly must
        # not have already-received records sit in a local batch, and
        # overflow drops should interleave with consumption rather than
        # arrive as one burst. Consumers batch on their side (pop_many).
        moved = 0
        for _ in range(max_records):
            try:
                item = next(self._source)
            except StopIteration:
                self._exhausted = True
                self.buffer.close()
                break
            except Exception as exc:
                self.error = exc
                self._exhausted = True
                self.buffer.close()
                raise
            self.buffer.push(item)
            moved += 1
        return moved

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def drained(self) -> bool:
        return self._exhausted and len(self.buffer) == 0


class StreamSet:
    """A group of same-kind streams (e.g. the 26 Netflow streams)."""

    def __init__(self, streams: Sequence[RecordStream]):
        if not streams:
            raise ConfigError("StreamSet needs at least one stream")
        self.streams: List[RecordStream] = list(streams)

    def __iter__(self):
        return iter(self.streams)

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def offered(self) -> int:
        return sum(s.buffer.stats.offered for s in self.streams)

    @property
    def dropped(self) -> int:
        return sum(s.buffer.stats.dropped for s in self.streams)

    @property
    def loss_rate(self) -> float:
        offered = self.offered
        return self.dropped / offered if offered else 0.0

    @property
    def drained(self) -> bool:
        return all(s.drained for s in self.streams)

    def pump_round_robin(self, budget: int) -> int:
        """Pump all streams fairly with a total record budget."""
        live = [s for s in self.streams if not s.exhausted]
        if not live or budget <= 0:
            return 0
        per_stream = max(1, budget // len(live))
        moved = 0
        for stream in live:
            moved += stream.pump(per_stream)
        return moved


def interleave_streams(
    sources: Sequence[Iterable], key: Optional[Callable] = None
) -> Iterator:
    """Merge timestamp-ordered sources into one ordered stream.

    Workload generators emit per-stream record sequences already sorted by
    timestamp; the simulation engine merges them so clear-up decisions see
    globally ordered time, like the sharded production deployment does
    per-worker. ``key`` defaults to the record's ``ts`` attribute.
    """
    if key is None:
        key = lambda rec: rec.ts
    return iter(
        heapq.merge(*sources, key=key)
    )


def flow_batches(source: Iterable, batch_size: int = 2048) -> Iterator:
    """Re-chunk a flow source into :class:`FlowBatch` items.

    Accepts the same item mix the engines' flow lanes do —
    :class:`FlowRecord` objects or whole :class:`FlowBatch` es — and
    yields batches of up to ``batch_size`` rows. Useful for feeding a
    stream columnar items up front, so the receiver pumps one buffer
    slot per ~``batch_size`` flows instead of one per record (raw
    datagrams stay per-item: decode belongs to the engine's collector).
    """
    from repro.netflow.records import FlowBatch, FlowRecord

    if batch_size < 1:
        raise ConfigError("flow_batches needs batch_size >= 1")
    pending = FlowBatch()
    for item in source:
        if isinstance(item, FlowRecord):
            pending.append_record(item)
        elif isinstance(item, FlowBatch):
            pending.extend(item)
        else:
            raise ConfigError(f"flow_batches cannot rebatch {type(item).__name__}")
        if len(pending) >= batch_size:
            # Emit full chunks by offset, then copy the remainder once —
            # not once per yield, which would go quadratic on large items.
            total = len(pending)
            start = 0
            while total - start >= batch_size:
                yield pending.select(range(start, start + batch_size))
                start += batch_size
            pending = pending.select(range(start, total))
    if len(pending):
        yield pending


def take(source: Iterable, n: int) -> List:
    """Materialise the first ``n`` items of an (often infinite) stream."""
    if n < 0:
        raise ConfigError("take needs n >= 0")
    out = []
    it = iter(source)
    for _ in range(n):
        try:
            out.append(next(it))
        except StopIteration:
            break
    return out
