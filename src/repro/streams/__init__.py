"""Stream substrate: bounded buffers, stream sources, worker queues.

Section 2 of the paper: "Each of the above-mentioned streams has an
internal buffer to be used in case the reading speed is less than their
actual rate. If that buffer overflows, the streams start to drop data."
Loss, throughout the paper, means exactly these buffer drops — so the
buffer with drop accounting is a first-class citizen here, and every
engine (threaded or simulated) reports loss through it.
"""

from repro.streams.buffer import BoundedBuffer, BufferStats
from repro.streams.queues import ShardedQueues, WorkerQueue
from repro.streams.stream import RecordStream, StreamSet, flow_batches, interleave_streams

__all__ = [
    "BoundedBuffer",
    "BufferStats",
    "WorkerQueue",
    "ShardedQueues",
    "RecordStream",
    "StreamSet",
    "flow_batches",
    "interleave_streams",
]
