"""Netflow substrate: flow records plus v5 / v9 / IPFIX wire codecs.

Section 2 of the paper describes the flow input as Netflow records carrying
``..., srcIP, dstIP, ..., timestamp, packets, bytes``. The paper's Section 3
notes "the system is not bound to NetFlow data and can be adapted to use
other data formats containing IP addresses and timestamps in a
configuration file" — we mirror that by decoding v5, v9 and IPFIX datagrams
into one common :class:`FlowRecord` the correlator consumes.
"""

from repro.netflow.records import FlowRecord, FlowDirection
from repro.netflow.v5 import decode_v5, encode_v5, V5_HEADER_LEN, V5_RECORD_LEN
from repro.netflow.v9 import (
    TemplateField,
    TemplateRecord,
    V9Session,
    encode_v9_data,
    encode_v9_template,
)
from repro.netflow.ipfix import IpfixSession, encode_ipfix_data, encode_ipfix_template
from repro.netflow.collector import FlowCollector
from repro.netflow.exporter import FlowExporter
from repro.netflow.udp import UdpFlowSource, send_datagrams

__all__ = [
    "FlowRecord",
    "FlowDirection",
    "decode_v5",
    "encode_v5",
    "V5_HEADER_LEN",
    "V5_RECORD_LEN",
    "TemplateField",
    "TemplateRecord",
    "V9Session",
    "encode_v9_template",
    "encode_v9_data",
    "IpfixSession",
    "encode_ipfix_template",
    "encode_ipfix_data",
    "FlowCollector",
    "FlowExporter",
    "UdpFlowSource",
    "send_datagrams",
]
