"""Template-specialized compiled decoders for NetFlow v9 / IPFIX data sets.

The per-field reference decoders (``V9Session._decode_data_reference``,
``IpfixSession._decode_data_reference``) run a Python loop over the
template for every record: one ``unpack_from``/slice per field, a dict of
named values, then a round of ``pop`` calls into :class:`FlowRecord`.
That loop is the dominant cost of the collector hot path once the engine
itself is batched.

This module compiles a template **once, at registration time**, into

* a single :class:`struct.Struct` covering the whole record (addresses
  and odd-length integers as ``Ns`` byte slots, 1/2/4/8-byte integers as
  ``B/H/I/Q``), so a data FlowSet decodes with one ``iter_unpack`` bulk
  pass instead of a per-field loop; and
* a generated straight-line decode function specialised to the template's
  slot layout — constant tuple indices, no per-record dict of field names,
  decoded addresses shared through a bounded cache.

Each compiled decoder also carries a **columnar twin** as its
``decode_columns`` attribute: the same specialised loop, but appending
straight into the parallel lists of a :class:`FlowBatch` — no
``FlowRecord``, no ``ipaddress`` objects at all (addresses go packed
bytes → interned canonical text through a bounded cache). This is the
decode half of the columnar decode→correlate hot path; the object
decoder stays the parity reference.

The generated code reproduces the reference decoder exactly (the
differential tests in ``tests/test_codec_parity.py`` hold them
byte-for-byte equal), with two deliberate deviations on *statically
degenerate* templates only:

* a template with no source or no destination address field can never
  produce a record, so the compiled decoder returns ``[]`` without
  touching the payload (the reference walks it and drops every record);
* records are materialised through ``object.__new__`` instead of the
  frozen-dataclass constructor, so the wire-impossible validations are
  emitted only when a template could actually violate them (ports wider
  than 16 bits); unsigned wire counters can never be negative.
"""

from __future__ import annotations

import struct
from typing import Callable, FrozenSet, List, Mapping

from repro.netflow.records import FlowBatch, FlowRecord
from repro.util.interning import cached_ip_address, cached_ip_text, ip_text_probe

#: struct codes for the integer widths the format can express directly.
_INT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}

#: FlowRecord keyword slots filled from named template fields; anything
#: else lands in ``extra`` (matching the reference decoders' ``pop`` set).
_CORE_FIELDS = {
    "src_port": "src_port",
    "dst_port": "dst_port",
    "protocol": "protocol",
    "packets": "packets",
    "bytes": "bytes_",
}

#: Core fields whose wire value can exceed the record's own validation
#: range when the template declares them wider than their natural size.
_PORT_FIELDS = ("src_port", "dst_port")


def _slot_expr(index: int, is_bytes: bool) -> str:
    """Expression for slot ``index`` of the unpacked record tuple."""
    if is_bytes:
        return f'_fb(r[{index}], "big")'
    return f"r[{index}]"


def compile_decoder(
    template,
    field_names: Mapping[int, str],
    src_types: FrozenSet[int],
    dst_types: FrozenSet[int],
    ts_type: int,
    ts_mode: str,
) -> Callable[..., List[FlowRecord]]:
    """Compile ``template`` into a bulk FlowSet decoder.

    ``ts_mode`` selects the timestamp semantics: ``"uptime_ms"`` generates
    ``decode(payload, unix_secs, sys_uptime)`` (NetFlow v9 LAST_SWITCHED
    offsets), ``"absolute_ms"`` generates ``decode(payload, export_secs)``
    (IPFIX flowEndMilliseconds). Both trim trailing FlowSet padding the
    same way the reference loop does (whole records only).
    """
    if ts_mode not in ("uptime_ms", "absolute_ms"):
        raise ValueError(f"unknown ts_mode {ts_mode!r}")

    fmt = ["!"]
    src_idx = dst_idx = ts_idx = -1
    ts_is_bytes = False
    named: dict = {}  # field name -> (index, is_bytes); later fields win
    for i, f in enumerate(template.fields):
        ftype, length = f.field_type, f.length
        is_addr = ftype in src_types or ftype in dst_types
        if is_addr or length not in _INT_CODES:
            fmt.append(f"{length}s")
            is_bytes = True
        else:
            fmt.append(_INT_CODES[length])
            is_bytes = False
        if ftype in src_types:
            src_idx = i
        elif ftype in dst_types:
            dst_idx = i
        elif ftype == ts_type:
            ts_idx, ts_is_bytes = i, is_bytes
        else:
            named[field_names.get(ftype, f"field_{ftype}")] = (i, is_bytes)

    record_struct = struct.Struct("".join(fmt))
    assert record_struct.size == template.record_length
    rec_len = record_struct.size

    if src_idx < 0 or dst_idx < 0 or rec_len == 0:
        # Statically address-less (or empty): no record can ever emerge.
        def decode_nothing(payload, *_ts_args) -> List[FlowRecord]:
            return []

        def decode_nothing_columns(payload, *_ts_args) -> FlowBatch:
            return FlowBatch()

        decode_nothing.decode_columns = decode_nothing_columns  # type: ignore[attr-defined]
        return decode_nothing

    # ---- generate the per-record body ------------------------------------
    if ts_mode == "uptime_ms":
        signature = "payload, unix_secs, sys_uptime"
        if ts_idx >= 0:
            ts_expr = f"unix_secs + ({_slot_expr(ts_idx, ts_is_bytes)} - sys_uptime) / 1000.0"
        else:
            ts_expr = "unix_secs + 0.0"
        preamble = ""
    else:
        signature = "payload, export_secs"
        if ts_idx >= 0:
            ts_expr = f"{_slot_expr(ts_idx, ts_is_bytes)} / 1000.0"
            preamble = ""
        else:
            ts_expr = "_ts_default"
            preamble = "    _ts_default = float(export_secs)\n"

    guards = []
    core_exprs = {}
    for name, kwarg in _CORE_FIELDS.items():
        slot = named.pop(name, None)
        if slot is None:
            core_exprs[kwarg] = "0"
        elif name in _PORT_FIELDS and (slot[1] or template.fields[slot[0]].length > 2):
            # The only reference-constructor check a wire value can trip.
            var = kwarg
            guards.append(f"        {var} = {_slot_expr(slot[0], slot[1])}")
            guards.append(f"        if {var} > 65535:")
            guards.append('            raise ValueError("ports must fit in 16 bits")')
            core_exprs[kwarg] = var
        else:
            core_exprs[kwarg] = _slot_expr(*slot)

    extra_items = ", ".join(
        f"{name!r}: {_slot_expr(index, is_bytes)}" for name, (index, is_bytes) in named.items()
    )
    guard_block = "\n".join(guards) + "\n" if guards else ""

    source = (
        f"def _decode({signature}):\n"
        f"{preamble}"
        f"    out = []\n"
        f"    append = out.append\n"
        f"    for r in _iter_unpack(payload):\n"
        f"{guard_block}"
        f"        rec = _new(_FlowRecord)\n"
        f"        rec.__dict__.update({{\n"
        f"            'ts': {ts_expr},\n"
        f"            'src_ip': _ip(r[{src_idx}]),\n"
        f"            'dst_ip': _ip(r[{dst_idx}]),\n"
        f"            'src_port': {core_exprs['src_port']},\n"
        f"            'dst_port': {core_exprs['dst_port']},\n"
        f"            'protocol': {core_exprs['protocol']},\n"
        f"            'packets': {core_exprs['packets']},\n"
        f"            'bytes_': {core_exprs['bytes_']},\n"
        f"            'extra': {{{extra_items}}},\n"
        f"        }})\n"
        f"        append(rec)\n"
        f"    return out\n"
    )
    # ---- generate the columnar twin --------------------------------------
    # Same slot exprs and port guards, but appending into parallel lists:
    # no FlowRecord, no per-record dict unless the template has extra
    # fields, addresses as interned text straight from the packed bytes.
    if named:
        extras_init = "    _ex = []\n    _a_ex = _ex.append\n"
        extras_append = f"        _a_ex({{{extra_items}}})\n"
        extras_ret = "_ex"
    else:
        extras_init = ""
        extras_append = ""
        extras_ret = "None"
    col_source = (
        f"def _decode_cols({signature}):\n"
        f"{preamble}"
        f"    _ts = []\n    _src = []\n    _dst = []\n    _sp = []\n"
        f"    _dp = []\n    _pr = []\n    _pk = []\n    _by = []\n"
        f"{extras_init}"
        f"    _a_ts = _ts.append\n    _a_src = _src.append\n"
        f"    _a_dst = _dst.append\n    _a_sp = _sp.append\n"
        f"    _a_dp = _dp.append\n    _a_pr = _pr.append\n"
        f"    _a_pk = _pk.append\n    _a_by = _by.append\n"
        f"    for r in _iter_unpack(payload):\n"
        f"{guard_block}"
        f"        _a_ts({ts_expr})\n"
        # The bytes->text cache probe is inlined (one dict .get instead
        # of a Python call per address); misses fall back to the bounded
        # cached_ip_text, which validates, interns, and fills the table.
        f"        _k = r[{src_idx}]\n"
        f"        _v = _tg(_k)\n"
        f"        _a_src(_v if _v is not None else _ip_text(_k))\n"
        f"        _k = r[{dst_idx}]\n"
        f"        _v = _tg(_k)\n"
        f"        _a_dst(_v if _v is not None else _ip_text(_k))\n"
        f"        _a_sp({core_exprs['src_port']})\n"
        f"        _a_dp({core_exprs['dst_port']})\n"
        f"        _a_pr({core_exprs['protocol']})\n"
        f"        _a_pk({core_exprs['packets']})\n"
        f"        _a_by({core_exprs['bytes_']})\n"
        f"{extras_append}"
        f"    return (_ts, _src, _dst, _sp, _dp, _pr, _pk, _by, {extras_ret})\n"
    )

    namespace = {
        "_iter_unpack": record_struct.iter_unpack,
        "_FlowRecord": FlowRecord,
        "_new": object.__new__,
        "_ip": cached_ip_address,
        "_ip_text": cached_ip_text,
        "_tg": ip_text_probe,
        "_fb": int.from_bytes,
    }
    exec(compile(source, f"<compiled-template-{template.template_id}>", "exec"), namespace)
    exec(
        compile(col_source, f"<compiled-template-{template.template_id}-columns>", "exec"),
        namespace,
    )
    inner = namespace["_decode"]
    inner_cols = namespace["_decode_cols"]

    def decode(payload, *ts_args) -> List[FlowRecord]:
        count = len(payload) // rec_len
        if count == 0:
            return []
        end = count * rec_len
        if end != len(payload):
            # memoryview trim: FlowSet padding must not copy the payload
            # (iter_unpack still hands the Ns slots out as bytes).
            payload = memoryview(payload)[:end]
        return inner(payload, *ts_args)

    def decode_columns(payload, *ts_args) -> FlowBatch:
        count = len(payload) // rec_len
        if count == 0:
            return FlowBatch()
        end = count * rec_len
        if end != len(payload):
            payload = memoryview(payload)[:end]
        return FlowBatch(*inner_cols(payload, *ts_args))

    decode.record_struct = record_struct  # type: ignore[attr-defined]
    decode.source = source  # type: ignore[attr-defined]
    decode.decode_columns = decode_columns  # type: ignore[attr-defined]
    decode_columns.source = col_source  # type: ignore[attr-defined]
    return decode
