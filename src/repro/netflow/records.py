"""The common flow record consumed by FlowDNS.

All three supported export formats (Netflow v5, Netflow v9, IPFIX) decode
into :class:`FlowRecord`. Only the fields FlowDNS uses are first-class;
everything else a template might carry is preserved in ``extra``.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Union

from repro.util.interning import cached_ip_address

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


class FlowDirection(Enum):
    """Which endpoint FlowDNS should look up in the DNS map.

    The paper analyses traffic *sources* ("we are interested in analyzing
    the source of the traffic, hence we use the source IP address") but
    notes the destination or both can be used with minor modifications.
    """

    SOURCE = "source"
    DESTINATION = "destination"
    BOTH = "both"


@dataclass(frozen=True)
class FlowRecord:
    """One unidirectional flow observation.

    ``ts`` is the flow end timestamp in UNIX seconds (what the correlator
    compares against DNS record timestamps), ``packets``/``bytes_`` are the
    flow's volume counters.
    """

    ts: float
    src_ip: IPAddress
    dst_ip: IPAddress
    src_port: int = 0
    dst_port: int = 0
    protocol: int = 6
    packets: int = 1
    bytes_: int = 0
    extra: Dict[str, int] = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if not isinstance(self.src_ip, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            object.__setattr__(self, "src_ip", cached_ip_address(self.src_ip))
        if not isinstance(self.dst_ip, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            object.__setattr__(self, "dst_ip", cached_ip_address(self.dst_ip))
        if self.packets < 0 or self.bytes_ < 0:
            raise ValueError("flow counters must be non-negative")
        if not (0 <= self.src_port <= 65535 and 0 <= self.dst_port <= 65535):
            raise ValueError("ports must fit in 16 bits")

    def lookup_ip(self, direction: FlowDirection = FlowDirection.SOURCE) -> IPAddress:
        """The address FlowDNS keys its hashmap lookup on."""
        if direction == FlowDirection.SOURCE:
            return self.src_ip
        if direction == FlowDirection.DESTINATION:
            return self.dst_ip
        raise ValueError("FlowDirection.BOTH requires two separate lookups")

    @property
    def is_dns_port(self) -> bool:
        """True for traffic to/from port 53 (DNS) or 853 (DoT).

        Used by the Section 4 coverage analysis, which filters a flow
        sample down to resolver traffic before testing destination IPs
        against the public-resolver list.
        """
        dns_ports = (53, 853)
        return self.dst_port in dns_ports or self.src_port in dns_ports
