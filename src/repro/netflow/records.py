"""The common flow record consumed by FlowDNS.

All three supported export formats (Netflow v5, Netflow v9, IPFIX) decode
into :class:`FlowRecord`. Only the fields FlowDNS uses are first-class;
everything else a template might carry is preserved in ``extra``.

:class:`FlowBatch` is the columnar twin: the same fields as parallel
lists, carried through the decode→correlate hot path without
materialising a ``FlowRecord`` (or its two ``ipaddress`` objects) per
flow. A parity-identical record can still be built on demand via
:meth:`FlowBatch.record`.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.util.interning import cached_ip_address, cached_ip_text

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


class FlowDirection(Enum):
    """Which endpoint FlowDNS should look up in the DNS map.

    The paper analyses traffic *sources* ("we are interested in analyzing
    the source of the traffic, hence we use the source IP address") but
    notes the destination or both can be used with minor modifications.
    """

    SOURCE = "source"
    DESTINATION = "destination"
    BOTH = "both"


@dataclass(frozen=True)
class FlowRecord:
    """One unidirectional flow observation.

    ``ts`` is the flow end timestamp in UNIX seconds (what the correlator
    compares against DNS record timestamps), ``packets``/``bytes_`` are the
    flow's volume counters.
    """

    ts: float
    src_ip: IPAddress
    dst_ip: IPAddress
    src_port: int = 0
    dst_port: int = 0
    protocol: int = 6
    packets: int = 1
    bytes_: int = 0
    extra: Dict[str, int] = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if not isinstance(self.src_ip, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            object.__setattr__(self, "src_ip", cached_ip_address(self.src_ip))
        if not isinstance(self.dst_ip, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            object.__setattr__(self, "dst_ip", cached_ip_address(self.dst_ip))
        if self.packets < 0 or self.bytes_ < 0:
            raise ValueError("flow counters must be non-negative")
        if not (0 <= self.src_port <= 65535 and 0 <= self.dst_port <= 65535):
            raise ValueError("ports must fit in 16 bits")

    def lookup_ip(self, direction: FlowDirection = FlowDirection.SOURCE) -> IPAddress:
        """The address FlowDNS keys its hashmap lookup on."""
        if direction == FlowDirection.SOURCE:
            return self.src_ip
        if direction == FlowDirection.DESTINATION:
            return self.dst_ip
        raise ValueError("FlowDirection.BOTH requires two separate lookups")

    @property
    def is_dns_port(self) -> bool:
        """True for traffic to/from port 53 (DNS) or 853 (DoT).

        Used by the Section 4 coverage analysis, which filters a flow
        sample down to resolver traffic before testing destination IPs
        against the public-resolver list.
        """
        dns_ports = (53, 853)
        return self.dst_port in dns_ports or self.src_port in dns_ports


class FlowBatch:
    """A batch of flows as parallel columns (structure-of-arrays).

    Addresses are carried as canonical interned *text* (what the
    correlator keys its map lookups on anyway), so the decode→correlate
    path never touches ``ipaddress``. ``extras`` is ``None`` when every
    flow's ``extra`` dict is empty — the common case for the standard
    v9/IPFIX templates — otherwise a parallel list of per-flow dicts
    (``None`` entries meaning empty).

    The flat columns are what the sharded engine pickles across IPC: one
    tuple of primitive lists per batch instead of an object graph.
    """

    __slots__ = (
        "ts",
        "src_ip_text",
        "dst_ip_text",
        "src_port",
        "dst_port",
        "protocol",
        "packets",
        "bytes_",
        "extras",
    )

    def __init__(
        self,
        ts: Optional[List[float]] = None,
        src_ip_text: Optional[List[str]] = None,
        dst_ip_text: Optional[List[str]] = None,
        src_port: Optional[List[int]] = None,
        dst_port: Optional[List[int]] = None,
        protocol: Optional[List[int]] = None,
        packets: Optional[List[int]] = None,
        bytes_: Optional[List[int]] = None,
        extras: Optional[List[Optional[Dict[str, int]]]] = None,
    ):
        self.ts = ts if ts is not None else []
        self.src_ip_text = src_ip_text if src_ip_text is not None else []
        self.dst_ip_text = dst_ip_text if dst_ip_text is not None else []
        self.src_port = src_port if src_port is not None else []
        self.dst_port = dst_port if dst_port is not None else []
        self.protocol = protocol if protocol is not None else []
        self.packets = packets if packets is not None else []
        self.bytes_ = bytes_ if bytes_ is not None else []
        self.extras = extras

    def __len__(self) -> int:
        return len(self.ts)

    def __repr__(self) -> str:
        return f"FlowBatch(len={len(self.ts)})"

    # --- building ---------------------------------------------------------

    def append_row(
        self,
        ts: float,
        src_ip_text: str,
        dst_ip_text: str,
        src_port: int = 0,
        dst_port: int = 0,
        protocol: int = 6,
        packets: int = 1,
        bytes_: int = 0,
        extra: Optional[Dict[str, int]] = None,
    ) -> None:
        """Append one flow from already-validated scalar fields."""
        if extra:
            if self.extras is None:
                self.extras = [None] * len(self.ts)
            self.extras.append(extra)
        elif self.extras is not None:
            self.extras.append(None)
        self.ts.append(ts)
        self.src_ip_text.append(src_ip_text)
        self.dst_ip_text.append(dst_ip_text)
        self.src_port.append(src_port)
        self.dst_port.append(dst_port)
        self.protocol.append(protocol)
        self.packets.append(packets)
        self.bytes_.append(bytes_)

    def append_record(self, flow: FlowRecord) -> None:
        """Append one :class:`FlowRecord` (compat lane for object sources)."""
        self.append_row(
            flow.ts,
            cached_ip_text(flow.src_ip),
            cached_ip_text(flow.dst_ip),
            flow.src_port,
            flow.dst_port,
            flow.protocol,
            flow.packets,
            flow.bytes_,
            flow.extra,
        )

    def append_from(self, other: "FlowBatch", i: int) -> None:
        """Append row ``i`` of ``other`` (the sharded router's partitioner)."""
        extra = other.extras[i] if other.extras is not None else None
        self.append_row(
            other.ts[i],
            other.src_ip_text[i],
            other.dst_ip_text[i],
            other.src_port[i],
            other.dst_port[i],
            other.protocol[i],
            other.packets[i],
            other.bytes_[i],
            extra,
        )

    def extend(self, other: "FlowBatch") -> None:
        """Concatenate another batch's columns onto this one."""
        if not len(other):
            return
        if other.extras is not None and self.extras is None:
            self.extras = [None] * len(self.ts)
        if self.extras is not None:
            if other.extras is not None:
                self.extras.extend(other.extras)
            else:
                self.extras.extend([None] * len(other.ts))
        self.ts.extend(other.ts)
        self.src_ip_text.extend(other.src_ip_text)
        self.dst_ip_text.extend(other.dst_ip_text)
        self.src_port.extend(other.src_port)
        self.dst_port.extend(other.dst_port)
        self.protocol.extend(other.protocol)
        self.packets.extend(other.packets)
        self.bytes_.extend(other.bytes_)

    @classmethod
    def from_records(cls, flows: Iterable[FlowRecord]) -> "FlowBatch":
        batch = cls()
        for flow in flows:
            batch.append_record(flow)
        return batch

    # --- slicing / IPC ----------------------------------------------------

    def select(self, indices: Sequence[int]) -> "FlowBatch":
        """A new batch holding the given rows, in the given order."""
        extras = self.extras
        return FlowBatch(
            [self.ts[i] for i in indices],
            [self.src_ip_text[i] for i in indices],
            [self.dst_ip_text[i] for i in indices],
            [self.src_port[i] for i in indices],
            [self.dst_port[i] for i in indices],
            [self.protocol[i] for i in indices],
            [self.packets[i] for i in indices],
            [self.bytes_[i] for i in indices],
            None if extras is None else [extras[i] for i in indices],
        )

    def columns(self) -> Tuple:
        """The flat column tuple — what the sharded engine pickles."""
        return (
            self.ts,
            self.src_ip_text,
            self.dst_ip_text,
            self.src_port,
            self.dst_port,
            self.protocol,
            self.packets,
            self.bytes_,
            self.extras,
        )

    @classmethod
    def from_columns(cls, columns: Tuple) -> "FlowBatch":
        """Rebuild a batch from :meth:`columns` output (trusted input)."""
        return cls(*columns)

    # --- materialisation --------------------------------------------------

    def record(self, i: int) -> FlowRecord:
        """Build the parity-identical :class:`FlowRecord` for row ``i``.

        Fields were validated at decode/adapt time, so the record is
        assembled through ``object.__new__`` like the compiled decoders
        do; ``extra`` is copied so repeated materialisations never alias.
        """
        rec = object.__new__(FlowRecord)
        extra = self.extras[i] if self.extras is not None else None
        rec.__dict__.update(
            ts=self.ts[i],
            src_ip=cached_ip_address(self.src_ip_text[i]),
            dst_ip=cached_ip_address(self.dst_ip_text[i]),
            src_port=self.src_port[i],
            dst_port=self.dst_port[i],
            protocol=self.protocol[i],
            packets=self.packets[i],
            bytes_=self.bytes_[i],
            extra=dict(extra) if extra else {},
        )
        return rec

    def to_records(self) -> List[FlowRecord]:
        """Materialise every row (tests and compat callers only)."""
        return [self.record(i) for i in range(len(self.ts))]

    def iter_records(self) -> Iterator[FlowRecord]:
        for i in range(len(self.ts)):
            yield self.record(i)
