"""UDP collection: receive NetFlow/IPFIX export datagrams off a socket.

Routers export flow records over UDP; :class:`UdpFlowSource` binds a
socket, decodes datagrams through a :class:`FlowCollector`, and exposes
the resulting flow records as an iterable suitable for handing straight
to :class:`repro.core.engine.ThreadedEngine` as one of its flow streams.

The source is deliberately minimal: one socket, one thread (the caller's
— iteration does the receiving), a stop flag, and drop-free decode
statistics from the underlying collector. Sizing the OS receive buffer
is the deployment's job; the paper's loss accounting happens in the
engine's bounded stream buffers.
"""

from __future__ import annotations

import socket
from typing import Iterator, Optional, Tuple

from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowRecord

#: Largest datagram we accept; NetFlow exports stay well under this.
MAX_DATAGRAM = 65535


class UdpFlowSource:
    """Iterable of FlowRecords decoded from UDP export datagrams."""

    def __init__(
        self,
        bind_addr: Tuple[str, int] = ("127.0.0.1", 0),
        collector: Optional[FlowCollector] = None,
        recv_timeout: float = 0.2,
    ):
        self.collector = collector if collector is not None else FlowCollector()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(bind_addr)
        self._sock.settimeout(recv_timeout)
        self._stopped = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — exporters send here."""
        return self._sock.getsockname()

    def stop(self) -> None:
        """Make the iterator finish after its current timeout slice."""
        self._stopped = True

    def close(self) -> None:
        self.stop()
        self._sock.close()

    def __enter__(self) -> "UdpFlowSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def recv_once(self) -> Optional[bytes]:
        """One raw datagram, or None on timeout."""
        try:
            data, _peer = self._sock.recvfrom(MAX_DATAGRAM)
            return data
        except socket.timeout:
            return None

    def __iter__(self) -> Iterator[FlowRecord]:
        """Yield flows until :meth:`stop` is called.

        Each socket timeout re-checks the stop flag, so a stopped source
        terminates within ``recv_timeout`` seconds.
        """
        while not self._stopped:
            datagram = self.recv_once()
            if datagram is None:
                continue
            yield from self.collector.ingest(datagram)


def send_datagrams(datagrams, address: Tuple[str, int]) -> int:
    """Test/exporter helper: push datagrams at a collector address."""
    sent = 0
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        for datagram in datagrams:
            sock.sendto(datagram, address)
            sent += 1
    return sent
