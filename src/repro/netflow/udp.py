"""UDP collection: receive NetFlow/IPFIX export datagrams off a socket.

Routers export flow records over UDP; :class:`UdpFlowSource` binds a
socket, decodes datagrams through a :class:`FlowCollector`, and exposes
the decoded flows as an iterable suitable for handing straight to the
live engines as one of their flow streams. By default it yields columnar
:class:`FlowBatch` items (one per datagram, via
:meth:`FlowCollector.ingest_columns`) so live UDP ingest rides the
engines' columnar fast lane; ``yield_records=True`` restores the
per-record object iteration for consumers that want ``FlowRecord`` s.

The source is deliberately minimal: one socket, one thread (the caller's
— iteration does the receiving), a stop flag, and per-source ingest
counters (:class:`repro.core.metrics.IngestStats`, surfaced by the
engines under ``EngineReport.ingest``). Sizing the OS receive buffer is
the deployment's job; the paper's loss accounting happens in the
engine's bounded stream buffers.

``stop()`` wakes a ``recvfrom`` blocked in another thread immediately
(zero-byte wake datagram, then socket close) — a stopped source
terminates without waiting out ``recv_timeout``. Stopping twice, or
iterating after stop, is safe and yields nothing.
"""

from __future__ import annotations

import socket
from typing import Iterator, Optional, Tuple, Union

from repro.core.metrics import IngestStats
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowBatch, FlowRecord
from repro.util.errors import ConfigError

#: Largest datagram we accept; NetFlow exports stay well under this.
MAX_DATAGRAM = 65535


def bind_udp_socket(
    bind_addr: Tuple[str, int], reuseport: bool = False
) -> socket.socket:
    """Bind a UDP socket for the given address, any family.

    The family comes from ``getaddrinfo`` so IPv6 literals ("::1") work
    as naturally as IPv4. Binding an IPv6 wildcard ("::") clears
    ``IPV6_V6ONLY`` where the platform allows, giving one dual-stack
    socket that receives exporters over both families.

    ``reuseport=True`` sets ``SO_REUSEPORT`` before binding, so several
    sockets (across processes) can share one port and the kernel load-
    balances datagrams between them by flow hash — the socket-sharding
    mechanism :class:`repro.core.ingest.ReuseportUdpIngest` builds on.
    Raises :class:`ConfigError` where the platform has no SO_REUSEPORT.
    """
    host, port = bind_addr
    infos = socket.getaddrinfo(
        host, port, type=socket.SOCK_DGRAM, flags=socket.AI_PASSIVE
    )
    if not infos:  # pragma: no cover - getaddrinfo raises before this
        raise ConfigError(f"cannot resolve bind address {bind_addr!r}")
    family, _type, proto, _canon, sockaddr = infos[0]
    sock = socket.socket(family, socket.SOCK_DGRAM, proto)
    try:
        if reuseport:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                sock.close()
                raise ConfigError(
                    "SO_REUSEPORT is not available on this platform; "
                    "multi-worker UDP ingest requires it"
                )
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        if family == socket.AF_INET6 and host in ("::", ""):
            try:
                sock.setsockopt(socket.IPPROTO_IPV6, socket.IPV6_V6ONLY, 0)
            except OSError:  # pragma: no cover - platform without dual-stack
                pass
        sock.bind(sockaddr)
    except OSError:
        sock.close()
        raise
    return sock


#: Backwards-compatible alias (pre-PR6 private name).
_bind_udp_socket = bind_udp_socket


def set_recv_buffer(sock: socket.socket, requested: int) -> int:
    """Best-effort SO_RCVBUF sizing; returns the *achieved* size.

    The kernel silently clamps the request to rmem_max (and on Linux
    reports double the usable payload), so callers record the achieved
    value — :attr:`repro.core.metrics.IngestStats.recv_buffer_bytes` —
    rather than trusting the request. Returns 0 when the platform
    exposes neither the setter nor the getter.
    """
    if requested:
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, requested)
        except OSError:  # pragma: no cover - platform refusal is fine
            pass
    try:
        return sock.getsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF)
    except OSError:  # pragma: no cover - platform without the getter
        return 0


class UdpFlowSource:
    """Iterable of columnar flow batches decoded from UDP export datagrams."""

    def __init__(
        self,
        bind_addr: Tuple[str, int] = ("127.0.0.1", 0),
        collector: Optional[FlowCollector] = None,
        recv_timeout: float = 0.2,
        yield_records: bool = False,
        capture=None,
        recv_buffer_bytes: int = 0,
    ):
        self.collector = collector if collector is not None else FlowCollector()
        self.yield_records = yield_records
        #: Optional :class:`repro.replay.capture.CaptureWriter` tee: every
        #: received datagram is recorded pre-decode (malformed included).
        self.capture = capture
        self._sock = bind_udp_socket(bind_addr)
        self._sock.settimeout(recv_timeout)
        # Snapshot the bound address: stop() closes the socket, and a
        # stopped source must still report where it was listening.
        self._address = self._sock.getsockname()[:2]
        self._stopped = False
        self.ingest_stats = IngestStats(name=f"udp[{self._address[0]}:{self._address[1]}]")
        # Achieved SO_RCVBUF is always recorded (0 requests nothing but
        # still reports the kernel default) — drop diagnostics need it.
        self.ingest_stats.recv_buffer_bytes = set_recv_buffer(
            self._sock, recv_buffer_bytes
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — exporters send here."""
        return self._address

    def stop(self) -> None:
        """Make the iterator finish immediately.

        A zero-byte wake datagram is sent to our own address (on Linux,
        merely closing the fd does *not* interrupt a thread already
        parked in ``recvfrom``) and the socket is then closed, so a
        blocked receiver wakes right away — via the wake datagram or the
        close's ``OSError``, both swallowed because the stop flag is
        already set — instead of waiting out ``recv_timeout``.
        Idempotent: stopping twice is a no-op.
        """
        if self._stopped:
            return
        self._stopped = True
        try:
            host, port = self._address
            if host in ("0.0.0.0", ""):
                host = "127.0.0.1"
            elif host == "::":
                host = "::1"
            with socket.socket(self._sock.family, socket.SOCK_DGRAM) as wake:
                wake.sendto(b"", (host, port))
        except OSError:
            pass
        self._sock.close()

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "UdpFlowSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def recv_once(self) -> Optional[bytes]:
        """One raw datagram, or None on timeout or after stop."""
        if self._stopped:
            return None
        try:
            data, _peer = self._sock.recvfrom(MAX_DATAGRAM)
        except socket.timeout:
            return None
        except OSError:
            # stop() closed the socket under us — the expected wake-up.
            if self._stopped:
                return None
            raise
        if self._stopped:
            # What woke us was stop()'s zero-byte wake datagram, not real
            # traffic — it must not pollute the ingest counters.
            return None
        stats = self.ingest_stats
        stats.received += 1
        stats.bytes_in += len(data)
        if self.capture is not None:
            self.capture.record_flow(data)
        return data

    def __iter__(self) -> Iterator[Union[FlowBatch, FlowRecord]]:
        """Yield decoded flows until :meth:`stop` is called.

        Columnar by default: one :class:`FlowBatch` per flow-carrying
        datagram (template-only and malformed datagrams yield nothing but
        are counted). With ``yield_records=True``, per-record
        :class:`FlowRecord` objects come out instead — the slow-lane
        escape hatch for object consumers.
        """
        stats = self.ingest_stats
        collector = self.collector
        while not self._stopped:
            datagram = self.recv_once()
            if datagram is None:
                continue
            errors_before = collector.stats.malformed + collector.stats.unknown_version
            if self.yield_records:
                flows = collector.ingest(datagram)
                stats.accepted += len(flows)
                yield from flows
            else:
                batch = collector.ingest_columns(datagram)
                if len(batch):
                    stats.accepted += 1
                    yield batch
            errors_after = collector.stats.malformed + collector.stats.unknown_version
            if errors_after > errors_before:
                stats.malformed += 1


def send_datagrams(datagrams, address: Tuple[str, int]) -> int:
    """Test/exporter helper: push datagrams at a collector address."""
    host, _port = address
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    sent = 0
    with socket.socket(family, socket.SOCK_DGRAM) as sock:
        for datagram in datagrams:
            sock.sendto(datagram, address)
            sent += 1
    return sent
