"""IPFIX (RFC 7011) wire codec, sharing field semantics with NetFlow v9.

The paper cites IPFIX alongside Netflow as the flow formats ISPs collect.
IPFIX differs from v9 in its message header (no record count or uptime; a
direct export-time field) and its set numbering (template set id 2). Field
types are inherited from v9's information elements, so we reuse them, with
one semantic difference: our IPFIX exporter ships absolute millisecond
timestamps (flowEndMilliseconds, IE 153) instead of uptime offsets.
"""

from __future__ import annotations

import ipaddress
import struct
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.netflow.compiled import compile_decoder
from repro.netflow.records import FlowBatch, FlowRecord
from repro.netflow.v9 import (
    FIELD_NAMES,
    IPV4_DST_ADDR,
    IPV4_SRC_ADDR,
    IPV6_DST_ADDR,
    IPV6_SRC_ADDR,
    IN_BYTES,
    IN_PKTS,
    L4_DST_PORT,
    L4_SRC_PORT,
    PROTOCOL,
    TemplateField,
    TemplateRecord,
)
from repro.util.errors import ParseError

IPFIX_HEADER = struct.Struct("!HHIII")
IPFIX_VERSION = 10
TEMPLATE_SET_ID = 2

FLOW_END_MILLISECONDS = 153

#: Default IPFIX template for IPv4 flows in this reproduction.
IPFIX_V4_TEMPLATE = TemplateRecord(
    template_id=300,
    fields=(
        TemplateField(IPV4_SRC_ADDR, 4),
        TemplateField(IPV4_DST_ADDR, 4),
        TemplateField(L4_SRC_PORT, 2),
        TemplateField(L4_DST_PORT, 2),
        TemplateField(PROTOCOL, 1),
        TemplateField(IN_PKTS, 8),
        TemplateField(IN_BYTES, 8),
        TemplateField(FLOW_END_MILLISECONDS, 8),
    ),
)


def _pack_message(body: bytes, export_secs: int, sequence: int, domain_id: int) -> bytes:
    return (
        IPFIX_HEADER.pack(
            IPFIX_VERSION,
            IPFIX_HEADER.size + len(body),
            export_secs & 0xFFFFFFFF,
            sequence & 0xFFFFFFFF,
            domain_id & 0xFFFFFFFF,
        )
        + body
    )


def encode_ipfix_template(
    templates: Iterable[TemplateRecord],
    export_secs: int = 0,
    sequence: int = 0,
    domain_id: int = 0,
) -> bytes:
    """Encode one IPFIX message carrying a template set."""
    body = bytearray()
    for tmpl in templates:
        body.extend(struct.pack("!HH", tmpl.template_id, len(tmpl.fields)))
        for f in tmpl.fields:
            body.extend(struct.pack("!HH", f.field_type, f.length))
    set_header = struct.pack("!HH", TEMPLATE_SET_ID, 4 + len(body))
    return _pack_message(set_header + bytes(body), export_secs, sequence, domain_id)


def _field_bytes(flow: FlowRecord, f: TemplateField) -> bytes:
    if f.field_type in (IPV4_SRC_ADDR, IPV6_SRC_ADDR):
        return flow.src_ip.packed
    if f.field_type in (IPV4_DST_ADDR, IPV6_DST_ADDR):
        return flow.dst_ip.packed
    if f.field_type == L4_SRC_PORT:
        return struct.pack("!H", flow.src_port)
    if f.field_type == L4_DST_PORT:
        return struct.pack("!H", flow.dst_port)
    if f.field_type == PROTOCOL:
        return struct.pack("!B", flow.protocol)
    if f.field_type == IN_PKTS:
        return flow.packets.to_bytes(f.length, "big")
    if f.field_type == IN_BYTES:
        return flow.bytes_.to_bytes(f.length, "big")
    if f.field_type == FLOW_END_MILLISECONDS:
        return int(flow.ts * 1000.0).to_bytes(f.length, "big")
    value = flow.extra.get(FIELD_NAMES.get(f.field_type, f"field_{f.field_type}"), 0)
    return int(value).to_bytes(f.length, "big")


def encode_ipfix_data(
    template: TemplateRecord,
    flows: Iterable[FlowRecord],
    export_secs: int = 0,
    sequence: int = 0,
    domain_id: int = 0,
) -> bytes:
    """Encode flows as a data set against ``template``."""
    body = bytearray()
    for flow in flows:
        for f in template.fields:
            chunk = _field_bytes(flow, f)
            if len(chunk) != f.length:
                raise ParseError(
                    f"field {f.field_type} produced {len(chunk)} bytes, template says {f.length}"
                )
            body.extend(chunk)
    padding = (-(4 + len(body))) % 4
    set_header = struct.pack("!HH", template.template_id, 4 + len(body) + padding)
    return _pack_message(set_header + bytes(body) + b"\x00" * padding, export_secs, sequence, domain_id)


@lru_cache(maxsize=256)
def compiled_ipfix_decoder(template: TemplateRecord) -> Callable[..., List[FlowRecord]]:
    """One compiled ``decode(payload, export_secs)`` per template."""
    return compile_decoder(
        template,
        FIELD_NAMES,
        frozenset({IPV4_SRC_ADDR, IPV6_SRC_ADDR}),
        frozenset({IPV4_DST_ADDR, IPV6_DST_ADDR}),
        FLOW_END_MILLISECONDS,
        "absolute_ms",
    )


class IpfixSession:
    """Stateful IPFIX collector: template cache keyed by observation domain.

    Like :class:`repro.netflow.v9.V9Session`, data sets decode through the
    compiled per-template decoder unless ``use_compiled=False`` selects the
    per-field reference implementation.
    """

    def __init__(self, use_compiled: bool = True) -> None:
        self.use_compiled = use_compiled
        self._templates: Dict[Tuple[int, int], TemplateRecord] = {}
        self._decoders: Dict[Tuple[int, int], Callable[..., List[FlowRecord]]] = {}

    def template_for(self, domain_id: int, template_id: int) -> Optional[TemplateRecord]:
        return self._templates.get((domain_id, template_id))

    def _walk_sets(self, message: bytes, on_data) -> None:
        """The one set walk both decode lanes share.

        Validates the header, learns template sets, and hands each data
        set with a known template to
        ``on_data(key, tmpl, payload, export_secs)``. Per-set (not
        per-record) indirection, so a shared walk costs nothing while
        keeping the object and columnar lanes structurally identical.
        """
        if len(message) < IPFIX_HEADER.size:
            raise ParseError("IPFIX message shorter than header")
        version, length, export_secs, _seq, domain_id = IPFIX_HEADER.unpack_from(message, 0)
        if version != IPFIX_VERSION:
            raise ParseError(f"not an IPFIX message (version={version})")
        if length > len(message):
            raise ParseError("IPFIX message truncated")
        offset = IPFIX_HEADER.size
        while offset + 4 <= length:
            set_id, set_len = struct.unpack_from("!HH", message, offset)
            if set_len < 4 or offset + set_len > length:
                raise ParseError("malformed IPFIX set length")
            payload = message[offset + 4 : offset + set_len]
            if set_id == TEMPLATE_SET_ID:
                self._learn_templates(domain_id, payload)
            elif set_id >= 256:
                key = (domain_id, set_id)
                tmpl = self._templates.get(key)
                if tmpl is not None:
                    on_data(key, tmpl, payload, export_secs)
            offset += set_len

    def _compiled_decoder(self, key, tmpl):
        """Get-or-compile the cached compiled decoder for one template."""
        decoder = self._decoders.get(key)
        if decoder is None:
            decoder = compiled_ipfix_decoder(tmpl)
            self._decoders[key] = decoder
        return decoder

    def decode(self, message: bytes) -> List[FlowRecord]:
        flows: List[FlowRecord] = []

        def on_data(key, tmpl, payload, export_secs):
            if self.use_compiled:
                decoder = self._compiled_decoder(key, tmpl)
                flows.extend(decoder(payload, export_secs))
            else:
                flows.extend(self._decode_data_reference(tmpl, payload, export_secs))

        self._walk_sets(message, on_data)
        return flows

    def decode_batch_columns(self, message: bytes) -> FlowBatch:
        """Decode one message straight into a columnar :class:`FlowBatch`.

        The IPFIX analogue of :meth:`V9Session.decode_batch_columns`:
        data sets run the compiled decoder's columnar twin, template sets
        are learned as usual.
        """
        batches: List[FlowBatch] = [FlowBatch()]

        def on_data(key, tmpl, payload, export_secs):
            decoder = self._compiled_decoder(key, tmpl)
            decoded = decoder.decode_columns(payload, export_secs)
            batch = batches[0]
            if len(batch):
                batch.extend(decoded)
            elif len(decoded):
                batches[0] = decoded

        self._walk_sets(message, on_data)
        return batches[0]

    def _learn_templates(self, domain_id: int, payload: bytes) -> None:
        offset = 0
        while offset + 4 <= len(payload):
            template_id, field_count = struct.unpack_from("!HH", payload, offset)
            offset += 4
            if template_id == 0 and field_count == 0:
                break
            fields = []
            for _ in range(field_count):
                if offset + 4 > len(payload):
                    raise ParseError("truncated IPFIX template")
                ftype, flen = struct.unpack_from("!HH", payload, offset)
                fields.append(TemplateField(ftype, flen))
                offset += 4
            key = (domain_id, template_id)
            tmpl = TemplateRecord(template_id, tuple(fields))
            self._templates[key] = tmpl
            if self.use_compiled:
                self._decoders[key] = compiled_ipfix_decoder(tmpl)
            else:
                # decode_batch_columns lazily caches compiled decoders even
                # on reference sessions; a re-announced template must not
                # leave that cache decoding the old layout.
                self._decoders.pop(key, None)

    def _decode_data_reference(
        self, tmpl: TemplateRecord, payload: bytes, export_secs: int
    ) -> List[FlowRecord]:
        """Per-field reference decoder (the compiled path's ground truth)."""
        flows: List[FlowRecord] = []
        rec_len = tmpl.record_length
        if rec_len == 0:
            return flows  # zero-field template: nothing to decode, don't spin
        offset = 0
        while offset + rec_len <= len(payload):
            values: Dict[str, int] = {}
            src_ip = dst_ip = None
            ts_ms = None
            for f in tmpl.fields:
                raw = payload[offset : offset + f.length]
                offset += f.length
                if f.field_type in (IPV4_SRC_ADDR, IPV6_SRC_ADDR):
                    src_ip = ipaddress.ip_address(raw)
                elif f.field_type in (IPV4_DST_ADDR, IPV6_DST_ADDR):
                    dst_ip = ipaddress.ip_address(raw)
                elif f.field_type == FLOW_END_MILLISECONDS:
                    ts_ms = int.from_bytes(raw, "big")
                else:
                    values[FIELD_NAMES.get(f.field_type, f"field_{f.field_type}")] = int.from_bytes(
                        raw, "big"
                    )
            if src_ip is None or dst_ip is None:
                continue
            ts = (ts_ms / 1000.0) if ts_ms is not None else float(export_secs)
            flows.append(
                FlowRecord(
                    ts=ts,
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=values.pop("src_port", 0),
                    dst_port=values.pop("dst_port", 0),
                    protocol=values.pop("protocol", 0),
                    packets=values.pop("packets", 0),
                    bytes_=values.pop("bytes", 0),
                    extra=values,
                )
            )
        return flows
