"""NetFlow version 5 wire codec (fixed 48-byte records, RFC-less Cisco spec).

v5 is IPv4-only and templateless: a 24-byte header followed by up to 30
fixed-layout records. The encoder/decoder here round-trips every field the
format defines; FlowDNS itself consumes only the subset carried into
:class:`repro.netflow.records.FlowRecord`.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from repro.netflow.records import FlowBatch, FlowRecord
from repro.util.errors import ParseError
from repro.util.interning import cached_ip_address, cached_ip_text, ip_text_probe

V5_HEADER = struct.Struct("!HHIIIIBBH")
V5_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")
V5_HEADER_LEN = V5_HEADER.size  # 24
V5_RECORD_LEN = V5_RECORD.size  # 48
V5_MAX_RECORDS = 30


def encode_v5(
    flows: Iterable[FlowRecord],
    sys_uptime_ms: int = 0,
    unix_secs: int = 0,
    flow_sequence: int = 0,
    engine_id: int = 0,
) -> bytes:
    """Encode up to 30 IPv4 flows as one v5 export datagram.

    Flow start/end are expressed as SysUptime offsets; we anchor the export
    at ``unix_secs`` and place each flow's end at its ``ts`` relative to
    that anchor (clamped at 0 for flows older than the uptime window).
    """
    flows = list(flows)
    if len(flows) > V5_MAX_RECORDS:
        raise ParseError(f"v5 datagram limited to {V5_MAX_RECORDS} records")
    for f in flows:
        if f.src_ip.version != 4 or f.dst_ip.version != 4:
            raise ParseError("NetFlow v5 carries IPv4 flows only")
    out = bytearray(
        V5_HEADER.pack(
            5,
            len(flows),
            sys_uptime_ms & 0xFFFFFFFF,
            unix_secs & 0xFFFFFFFF,
            0,  # unix_nsecs
            flow_sequence & 0xFFFFFFFF,
            0,  # engine_type
            engine_id & 0xFF,
            0,  # sampling interval
        )
    )
    for f in flows:
        delta_ms = int((f.ts - unix_secs) * 1000.0)
        end_uptime = max(0, sys_uptime_ms + delta_ms) & 0xFFFFFFFF
        start_uptime = end_uptime
        out.extend(
            V5_RECORD.pack(
                int(f.src_ip),
                int(f.dst_ip),
                0,  # nexthop
                f.extra.get("input_if", 0) & 0xFFFF,
                f.extra.get("output_if", 0) & 0xFFFF,
                f.packets & 0xFFFFFFFF,
                f.bytes_ & 0xFFFFFFFF,
                start_uptime,
                end_uptime,
                f.src_port,
                f.dst_port,
                0,  # pad1
                f.extra.get("tcp_flags", 0) & 0xFF,
                f.protocol & 0xFF,
                f.extra.get("tos", 0) & 0xFF,
                f.extra.get("src_as", 0) & 0xFFFF,
                f.extra.get("dst_as", 0) & 0xFFFF,
                f.extra.get("src_mask", 0) & 0xFF,
                f.extra.get("dst_mask", 0) & 0xFF,
                0,  # pad2
            )
        )
    return bytes(out)


def decode_v5(datagram: bytes) -> Tuple[dict, List[FlowRecord]]:
    """Decode a v5 datagram → (header dict, flow records).

    Flow timestamps are reconstructed from the header's ``unix_secs``
    anchor and each record's end-uptime offset, the inverse of
    :func:`encode_v5`.
    """
    header, count, sys_uptime, unix_secs = _decode_v5_header(datagram)
    flows: List[FlowRecord] = []
    # One bulk iter_unpack pass over the record block instead of a
    # per-record unpack_from; parsed addresses are shared via the
    # bounded intern cache (exporter pools repeat a small IP set).
    body = datagram[V5_HEADER_LEN : V5_HEADER_LEN + count * V5_RECORD_LEN]
    for fields in V5_RECORD.iter_unpack(body):
        (src, dst, _nexthop, in_if, out_if, packets, octets, _start, end,
         sport, dport, _pad1, tcp_flags, proto, tos, src_as, dst_as,
         src_mask, dst_mask, _pad2) = fields
        ts = unix_secs + (end - sys_uptime) / 1000.0
        flows.append(
            FlowRecord(
                ts=ts,
                src_ip=cached_ip_address(src),
                dst_ip=cached_ip_address(dst),
                src_port=sport,
                dst_port=dport,
                protocol=proto,
                packets=packets,
                bytes_=octets,
                extra={
                    "input_if": in_if,
                    "output_if": out_if,
                    "tcp_flags": tcp_flags,
                    "tos": tos,
                    "src_as": src_as,
                    "dst_as": dst_as,
                    "src_mask": src_mask,
                    "dst_mask": dst_mask,
                },
            )
        )
    return header, flows


def _decode_v5_header(datagram: bytes) -> Tuple[dict, int, int, int]:
    """Validate the v5 header; returns (header dict, count, uptime, secs)."""
    if len(datagram) < V5_HEADER_LEN:
        raise ParseError("v5 datagram shorter than header")
    version, count, sys_uptime, unix_secs, _nsecs, sequence, _etype, engine_id, _sampling = (
        V5_HEADER.unpack_from(datagram, 0)
    )
    if version != 5:
        raise ParseError(f"not a v5 datagram (version={version})")
    expected = V5_HEADER_LEN + count * V5_RECORD_LEN
    if len(datagram) < expected:
        raise ParseError(f"v5 datagram truncated: {len(datagram)} < {expected}")
    header = {
        "version": version,
        "count": count,
        "sys_uptime_ms": sys_uptime,
        "unix_secs": unix_secs,
        "flow_sequence": sequence,
        "engine_id": engine_id,
    }
    return header, count, sys_uptime, unix_secs


def decode_v5_columns(datagram: bytes) -> Tuple[dict, FlowBatch]:
    """Decode a v5 datagram → (header dict, columnar flow batch).

    Same wire walk as :func:`decode_v5` but filling :class:`FlowBatch`
    columns: addresses go host-int → interned canonical text through the
    bounded IP-text cache, and no ``FlowRecord``/``ipaddress`` objects
    are built. ``FlowBatch.record(i)`` materialises records identical to
    the object path's (the parity suite holds the two equal).
    """
    header, count, sys_uptime, unix_secs = _decode_v5_header(datagram)
    batch = FlowBatch(extras=[])
    ts_col, src_col, dst_col = batch.ts, batch.src_ip_text, batch.dst_ip_text
    sp_col, dp_col, pr_col = batch.src_port, batch.dst_port, batch.protocol
    pk_col, by_col, ex_col = batch.packets, batch.bytes_, batch.extras
    body = datagram[V5_HEADER_LEN : V5_HEADER_LEN + count * V5_RECORD_LEN]
    ip_text = cached_ip_text
    probe = ip_text_probe
    for fields in V5_RECORD.iter_unpack(body):
        (src, dst, _nexthop, in_if, out_if, packets, octets, _start, end,
         sport, dport, _pad1, tcp_flags, proto, tos, src_as, dst_as,
         src_mask, dst_mask, _pad2) = fields
        ts_col.append(unix_secs + (end - sys_uptime) / 1000.0)
        text = probe(src)
        src_col.append(text if text is not None else ip_text(src))
        text = probe(dst)
        dst_col.append(text if text is not None else ip_text(dst))
        sp_col.append(sport)
        dp_col.append(dport)
        pr_col.append(proto)
        pk_col.append(packets)
        by_col.append(octets)
        ex_col.append({
            "input_if": in_if,
            "output_if": out_if,
            "tcp_flags": tcp_flags,
            "tos": tos,
            "src_as": src_as,
            "dst_as": dst_as,
            "src_mask": src_mask,
            "dst_mask": dst_mask,
        })
    return header, batch
