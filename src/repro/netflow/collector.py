"""Version-sniffing flow collector.

An ISP collector receives datagrams from many exporters speaking different
NetFlow dialects. :class:`FlowCollector` sniffs the 16-bit version field and
dispatches to the right codec, maintaining per-protocol session state
(templates) and drop counters for undecodable datagrams — a collector must
never let one malformed export kill the pipeline feeding FlowDNS.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.netflow.ipfix import IpfixSession
from repro.netflow.records import FlowBatch, FlowRecord
from repro.netflow.v5 import decode_v5, decode_v5_columns
from repro.netflow.v9 import V9Session
from repro.util.errors import ParseError


@dataclass
class CollectorStats:
    """Counters for observability of the collector itself."""

    datagrams: int = 0
    flows: int = 0
    malformed: int = 0
    unknown_version: int = 0
    by_version: dict = field(default_factory=dict)

    def note(self, version: int, flow_count: int) -> None:
        self.datagrams += 1
        self.flows += flow_count
        self.by_version[version] = self.by_version.get(version, 0) + 1


def probe_version(datagram: bytes) -> int:
    """Return the datagram's 16-bit version field.

    Raises :class:`ParseError` (never ``struct.error``) when the datagram
    is shorter than the 2-byte probe — a truncated export must surface as
    the same error family every other malformed input does.
    """
    if len(datagram) < 2:
        raise ParseError(
            f"datagram shorter than the 2-byte version probe ({len(datagram)} bytes)"
        )
    (version,) = struct.unpack_from("!H", datagram, 0)
    return version


class FlowCollector:
    """Decode NetFlow v5 / v9 / IPFIX datagrams into flow records."""

    def __init__(self, use_compiled: bool = True) -> None:
        self._v9 = V9Session(use_compiled=use_compiled)
        self._ipfix = IpfixSession(use_compiled=use_compiled)
        self.stats = CollectorStats()

    def ingest(self, datagram: bytes) -> List[FlowRecord]:
        """Decode one datagram; malformed input is counted, not raised.

        Returns the decoded flows (possibly empty, e.g. for a pure
        template datagram).
        """
        try:
            version = probe_version(datagram)
            if version == 5:
                _, flows = decode_v5(datagram)
            elif version == 9:
                flows = self._v9.decode(datagram)
            elif version == 10:
                flows = self._ipfix.decode(datagram)
            else:
                self.stats.unknown_version += 1
                return []
        except ParseError:
            self.stats.malformed += 1
            return []
        self.stats.note(version, len(flows))
        return flows

    def ingest_columns(self, datagram: bytes) -> FlowBatch:
        """Columnar :meth:`ingest`: decode one datagram into a FlowBatch.

        Same version sniffing, session state, and counters as the object
        path, but the flows come out as columns — the engines' columnar
        flow lanes feed on this.
        """
        try:
            version = probe_version(datagram)
            if version == 5:
                _, batch = decode_v5_columns(datagram)
            elif version == 9:
                batch = self._v9.decode_batch_columns(datagram)
            elif version == 10:
                batch = self._ipfix.decode_batch_columns(datagram)
            else:
                self.stats.unknown_version += 1
                return FlowBatch()
        except ParseError:
            self.stats.malformed += 1
            return FlowBatch()
        self.stats.note(version, len(batch))
        return batch

    def ingest_columns_many(self, datagrams) -> FlowBatch:
        """Decode a burst of datagrams into one accumulated FlowBatch.

        The bulk shape the batched socket layers drain in: N raw
        datagrams in, one columnar batch out, with the usual per-datagram
        session state and malformed/unknown-version counting. Callers
        that need a malformed delta snapshot ``stats`` around the call.
        """
        batch = FlowBatch()
        for datagram in datagrams:
            batch.extend(self.ingest_columns(datagram))
        return batch
