"""Flow exporter: batches flow records into export datagrams.

The inverse of :class:`repro.netflow.collector.FlowCollector`; workload
generators use it to produce genuine wire-format streams so integration
tests exercise encode → datagram → decode → correlate end to end.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.netflow.ipfix import IPFIX_V4_TEMPLATE, encode_ipfix_data, encode_ipfix_template
from repro.netflow.records import FlowRecord
from repro.netflow.v5 import V5_MAX_RECORDS, encode_v5
from repro.netflow.v9 import (
    STANDARD_V4_TEMPLATE,
    STANDARD_V6_TEMPLATE,
    V9_HEADER,
    encode_v9_data,
    encode_v9_template,
)
from repro.util.errors import ConfigError


def _batched(flows: Iterable[FlowRecord], size: int) -> Iterator[List[FlowRecord]]:
    batch: List[FlowRecord] = []
    for flow in flows:
        batch.append(flow)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


class FlowExporter:
    """Encode flow records as a sequence of export datagrams.

    ``version`` selects the dialect (5, 9 or 10/IPFIX). For template-based
    dialects the first datagram out is the template export, and templates
    are re-announced every ``template_refresh`` data datagrams, mirroring
    router behaviour so late-joining collectors can synchronise.
    """

    def __init__(self, version: int = 9, batch_size: int = 24, template_refresh: int = 64):
        if version not in (5, 9, 10):
            raise ConfigError(f"unsupported NetFlow version {version}")
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if version == 5 and batch_size > V5_MAX_RECORDS:
            raise ConfigError(f"v5 batches are limited to {V5_MAX_RECORDS} records")
        self.version = version
        self.batch_size = batch_size
        self.template_refresh = template_refresh
        self._sequence = 0

    def export(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        """Yield datagrams covering all ``flows``."""
        if self.version == 5:
            yield from self._export_v5(flows)
        elif self.version == 9:
            yield from self._export_v9(flows)
        else:
            yield from self._export_ipfix(flows)

    def _export_v5(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        for batch in _batched(flows, self.batch_size):
            anchor = int(batch[0].ts)
            yield encode_v5(batch, unix_secs=anchor, flow_sequence=self._sequence)
            self._sequence += len(batch)

    def _export_v9(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        sent_since_template = None  # force template first
        for batch in _batched(flows, self.batch_size):
            anchor = int(batch[0].ts)
            if sent_since_template is None or sent_since_template >= self.template_refresh:
                yield encode_v9_template(
                    [STANDARD_V4_TEMPLATE, STANDARD_V6_TEMPLATE], unix_secs=anchor,
                    sequence=self._sequence,
                )
                sent_since_template = 0
            v4 = [f for f in batch if f.src_ip.version == 4 and f.dst_ip.version == 4]
            v6 = [f for f in batch if f.src_ip.version == 6 and f.dst_ip.version == 6]
            for template, group in ((STANDARD_V4_TEMPLATE, v4), (STANDARD_V6_TEMPLATE, v6)):
                if group:
                    yield encode_v9_data(
                        template, group, unix_secs=anchor, sequence=self._sequence
                    )
                    self._sequence += len(group)
                    sent_since_template += 1

    def _export_ipfix(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        sent_since_template = None
        for batch in _batched(flows, self.batch_size):
            anchor = int(batch[0].ts)
            if sent_since_template is None or sent_since_template >= self.template_refresh:
                yield encode_ipfix_template([IPFIX_V4_TEMPLATE], export_secs=anchor,
                                            sequence=self._sequence)
                sent_since_template = 0
            v4 = [f for f in batch if f.src_ip.version == 4 and f.dst_ip.version == 4]
            if v4:
                yield encode_ipfix_data(IPFIX_V4_TEMPLATE, v4, export_secs=anchor,
                                        sequence=self._sequence)
                self._sequence += len(v4)
                sent_since_template += 1


#: One packed flow as the generator's hot loop carries it:
#: ``(ts, src_packed, dst_packed, src_port, dst_port, protocol, packets,
#: bytes)`` — addresses already in network byte order, everything else a
#: plain int. Family is implied by address length (4 or 16 bytes).
PackedFlow = Tuple[float, bytes, bytes, int, int, int, int, int]

_PACKED_V4_RECORD = struct.Struct("!4s4sHHBIII")
_PACKED_V6_RECORD = struct.Struct("!16s16sHHBIII")
_FLOWSET_HEADER = struct.Struct("!HH")
_M32 = 0xFFFFFFFF


class PackedV9Exporter:
    """v9 encoder over :data:`PackedFlow` tuples — the generator's fast path.

    Produces datagrams *byte-identical* to ``FlowExporter(version=9)``
    fed equivalent :class:`FlowRecord` objects (same template cadence,
    sequence accounting, v4/v6 FlowSet split, field packing — the
    equivalence suite in ``tests/test_workload_generator.py`` pins this),
    but skips per-record object construction and per-field dispatch: the
    whole record packs in one precompiled ``struct`` call. That is what
    lets a workload generator emit hundreds of thousands of wire-accurate
    flows per second from pure Python.
    """

    def __init__(self, batch_size: int = 24, template_refresh: int = 64):
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if template_refresh <= 0:
            raise ConfigError("template_refresh must be positive")
        self.batch_size = batch_size
        self.template_refresh = template_refresh
        self._sequence = 0
        self._sent_since_template: int | None = None  # None forces template first

    def export(self, flows: Iterable[PackedFlow]) -> Iterator[bytes]:
        """Yield datagrams covering all ``flows`` (batching internally)."""
        batch: List[PackedFlow] = []
        for flow in flows:
            batch.append(flow)
            if len(batch) == self.batch_size:
                yield from self.export_batch(batch)
                batch = []
        if batch:
            yield from self.export_batch(batch)

    def export_batch(self, batch: Sequence[PackedFlow]) -> Iterator[bytes]:
        """Encode one caller-assembled batch (<= ``batch_size`` flows)."""
        anchor = int(batch[0][0])
        if (
            self._sent_since_template is None
            or self._sent_since_template >= self.template_refresh
        ):
            yield encode_v9_template(
                [STANDARD_V4_TEMPLATE, STANDARD_V6_TEMPLATE], unix_secs=anchor,
                sequence=self._sequence,
            )
            self._sent_since_template = 0
        # Mixed-family tuples (v4 src, v6 dst) are dropped, matching
        # FlowExporter's per-family group filters.
        v4: List[PackedFlow] = []
        v6: List[PackedFlow] = []
        for f in batch:
            if len(f[1]) == 4:
                if len(f[2]) == 4:
                    v4.append(f)
            elif len(f[1]) == 16 and len(f[2]) == 16:
                v6.append(f)
        for template_id, record, group in (
            (STANDARD_V4_TEMPLATE.template_id, _PACKED_V4_RECORD, v4),
            (STANDARD_V6_TEMPLATE.template_id, _PACKED_V6_RECORD, v6),
        ):
            if not group:
                continue
            pack = record.pack
            body = b"".join(
                [
                    pack(
                        f[1], f[2], f[3], f[4], f[5], f[6] & _M32, f[7] & _M32,
                        max(0, int((f[0] - anchor) * 1000.0)) & _M32,
                    )
                    for f in group
                ]
            )
            padding = (-(4 + len(body))) % 4
            yield (
                V9_HEADER.pack(9, len(group), 0, anchor & _M32, self._sequence & _M32, 0)
                + _FLOWSET_HEADER.pack(template_id, 4 + len(body) + padding)
                + body
                + b"\x00" * padding
            )
            self._sequence += len(group)
            self._sent_since_template += 1
