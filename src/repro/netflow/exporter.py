"""Flow exporter: batches flow records into export datagrams.

The inverse of :class:`repro.netflow.collector.FlowCollector`; workload
generators use it to produce genuine wire-format streams so integration
tests exercise encode → datagram → decode → correlate end to end.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.netflow.ipfix import IPFIX_V4_TEMPLATE, encode_ipfix_data, encode_ipfix_template
from repro.netflow.records import FlowRecord
from repro.netflow.v5 import V5_MAX_RECORDS, encode_v5
from repro.netflow.v9 import (
    STANDARD_V4_TEMPLATE,
    STANDARD_V6_TEMPLATE,
    encode_v9_data,
    encode_v9_template,
)
from repro.util.errors import ConfigError


def _batched(flows: Iterable[FlowRecord], size: int) -> Iterator[List[FlowRecord]]:
    batch: List[FlowRecord] = []
    for flow in flows:
        batch.append(flow)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


class FlowExporter:
    """Encode flow records as a sequence of export datagrams.

    ``version`` selects the dialect (5, 9 or 10/IPFIX). For template-based
    dialects the first datagram out is the template export, and templates
    are re-announced every ``template_refresh`` data datagrams, mirroring
    router behaviour so late-joining collectors can synchronise.
    """

    def __init__(self, version: int = 9, batch_size: int = 24, template_refresh: int = 64):
        if version not in (5, 9, 10):
            raise ConfigError(f"unsupported NetFlow version {version}")
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if version == 5 and batch_size > V5_MAX_RECORDS:
            raise ConfigError(f"v5 batches are limited to {V5_MAX_RECORDS} records")
        self.version = version
        self.batch_size = batch_size
        self.template_refresh = template_refresh
        self._sequence = 0

    def export(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        """Yield datagrams covering all ``flows``."""
        if self.version == 5:
            yield from self._export_v5(flows)
        elif self.version == 9:
            yield from self._export_v9(flows)
        else:
            yield from self._export_ipfix(flows)

    def _export_v5(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        for batch in _batched(flows, self.batch_size):
            anchor = int(batch[0].ts)
            yield encode_v5(batch, unix_secs=anchor, flow_sequence=self._sequence)
            self._sequence += len(batch)

    def _export_v9(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        sent_since_template = None  # force template first
        for batch in _batched(flows, self.batch_size):
            anchor = int(batch[0].ts)
            if sent_since_template is None or sent_since_template >= self.template_refresh:
                yield encode_v9_template(
                    [STANDARD_V4_TEMPLATE, STANDARD_V6_TEMPLATE], unix_secs=anchor,
                    sequence=self._sequence,
                )
                sent_since_template = 0
            v4 = [f for f in batch if f.src_ip.version == 4 and f.dst_ip.version == 4]
            v6 = [f for f in batch if f.src_ip.version == 6 and f.dst_ip.version == 6]
            for template, group in ((STANDARD_V4_TEMPLATE, v4), (STANDARD_V6_TEMPLATE, v6)):
                if group:
                    yield encode_v9_data(
                        template, group, unix_secs=anchor, sequence=self._sequence
                    )
                    self._sequence += len(group)
                    sent_since_template += 1

    def _export_ipfix(self, flows: Iterable[FlowRecord]) -> Iterator[bytes]:
        sent_since_template = None
        for batch in _batched(flows, self.batch_size):
            anchor = int(batch[0].ts)
            if sent_since_template is None or sent_since_template >= self.template_refresh:
                yield encode_ipfix_template([IPFIX_V4_TEMPLATE], export_secs=anchor,
                                            sequence=self._sequence)
                sent_since_template = 0
            v4 = [f for f in batch if f.src_ip.version == 4 and f.dst_ip.version == 4]
            if v4:
                yield encode_ipfix_data(IPFIX_V4_TEMPLATE, v4, export_secs=anchor,
                                        sequence=self._sequence)
                self._sequence += len(v4)
                sent_since_template += 1
