"""NetFlow version 9 wire codec (RFC 3954): template-driven records.

Unlike v5, a v9 exporter first describes its record layout in a *template
FlowSet* and then ships *data FlowSets* that reference the template id. A
collector must therefore be stateful: :class:`V9Session` caches templates
per (source-id, template-id) and decodes data FlowSets against them, which
is exactly what an ISP-side collector feeding FlowDNS does.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.netflow.compiled import compile_decoder
from repro.netflow.records import FlowBatch, FlowRecord
from repro.util.errors import ParseError

V9_HEADER = struct.Struct("!HHIIII")

# Field type numbers from RFC 3954 §8.
IN_BYTES = 1
IN_PKTS = 2
PROTOCOL = 4
L4_SRC_PORT = 7
IPV4_SRC_ADDR = 8
IPV4_DST_ADDR = 12
L4_DST_PORT = 11
SRC_AS = 16
DST_AS = 17
LAST_SWITCHED = 21
FIRST_SWITCHED = 22
IPV6_SRC_ADDR = 27
IPV6_DST_ADDR = 28

FIELD_NAMES = {
    IN_BYTES: "bytes",
    IN_PKTS: "packets",
    PROTOCOL: "protocol",
    L4_SRC_PORT: "src_port",
    IPV4_SRC_ADDR: "src_ip4",
    L4_DST_PORT: "dst_port",
    IPV4_DST_ADDR: "dst_ip4",
    SRC_AS: "src_as",
    DST_AS: "dst_as",
    LAST_SWITCHED: "last_switched",
    FIRST_SWITCHED: "first_switched",
    IPV6_SRC_ADDR: "src_ip6",
    IPV6_DST_ADDR: "dst_ip6",
}


@dataclass(frozen=True)
class TemplateField:
    """One (type, length) entry of a template record."""

    field_type: int
    length: int

    def __post_init__(self):
        if self.length <= 0:
            raise ParseError("template field length must be positive")


@dataclass(frozen=True)
class TemplateRecord:
    """A v9/IPFIX template: an id plus its ordered field layout."""

    template_id: int
    fields: Tuple[TemplateField, ...]

    def __post_init__(self):
        if not 256 <= self.template_id <= 65535:
            raise ParseError("data template ids must be >= 256")
        object.__setattr__(self, "fields", tuple(self.fields))

    @property
    def record_length(self) -> int:
        return sum(f.length for f in self.fields)


#: The template the reproduction's exporters use for IPv4 flows.
STANDARD_V4_TEMPLATE = TemplateRecord(
    template_id=256,
    fields=(
        TemplateField(IPV4_SRC_ADDR, 4),
        TemplateField(IPV4_DST_ADDR, 4),
        TemplateField(L4_SRC_PORT, 2),
        TemplateField(L4_DST_PORT, 2),
        TemplateField(PROTOCOL, 1),
        TemplateField(IN_PKTS, 4),
        TemplateField(IN_BYTES, 4),
        TemplateField(LAST_SWITCHED, 4),
    ),
)

#: IPv6 variant (AAAA traffic appears in the paper's streams too).
STANDARD_V6_TEMPLATE = TemplateRecord(
    template_id=257,
    fields=(
        TemplateField(IPV6_SRC_ADDR, 16),
        TemplateField(IPV6_DST_ADDR, 16),
        TemplateField(L4_SRC_PORT, 2),
        TemplateField(L4_DST_PORT, 2),
        TemplateField(PROTOCOL, 1),
        TemplateField(IN_PKTS, 4),
        TemplateField(IN_BYTES, 4),
        TemplateField(LAST_SWITCHED, 4),
    ),
)


def _pack_header(count: int, sys_uptime_ms: int, unix_secs: int, sequence: int, source_id: int) -> bytes:
    return V9_HEADER.pack(9, count, sys_uptime_ms & 0xFFFFFFFF, unix_secs & 0xFFFFFFFF,
                          sequence & 0xFFFFFFFF, source_id & 0xFFFFFFFF)


def encode_v9_template(
    templates: Iterable[TemplateRecord],
    sys_uptime_ms: int = 0,
    unix_secs: int = 0,
    sequence: int = 0,
    source_id: int = 0,
) -> bytes:
    """Encode a datagram containing one template FlowSet (id 0)."""
    templates = list(templates)
    body = bytearray()
    for tmpl in templates:
        body.extend(struct.pack("!HH", tmpl.template_id, len(tmpl.fields)))
        for f in tmpl.fields:
            body.extend(struct.pack("!HH", f.field_type, f.length))
    flowset = struct.pack("!HH", 0, 4 + len(body)) + bytes(body)
    return _pack_header(len(templates), sys_uptime_ms, unix_secs, sequence, source_id) + flowset


def _flow_to_field_bytes(flow: FlowRecord, f: TemplateField, unix_secs: int, sys_uptime_ms: int) -> bytes:
    if f.field_type == IPV4_SRC_ADDR:
        return flow.src_ip.packed
    if f.field_type == IPV4_DST_ADDR:
        return flow.dst_ip.packed
    if f.field_type == IPV6_SRC_ADDR:
        return flow.src_ip.packed
    if f.field_type == IPV6_DST_ADDR:
        return flow.dst_ip.packed
    if f.field_type == L4_SRC_PORT:
        return struct.pack("!H", flow.src_port)
    if f.field_type == L4_DST_PORT:
        return struct.pack("!H", flow.dst_port)
    if f.field_type == PROTOCOL:
        return struct.pack("!B", flow.protocol)
    if f.field_type == IN_PKTS:
        return struct.pack("!I", flow.packets & 0xFFFFFFFF)
    if f.field_type == IN_BYTES:
        return struct.pack("!I", flow.bytes_ & 0xFFFFFFFF)
    if f.field_type == LAST_SWITCHED:
        delta_ms = int((flow.ts - unix_secs) * 1000.0)
        return struct.pack("!I", max(0, sys_uptime_ms + delta_ms) & 0xFFFFFFFF)
    if f.field_type == FIRST_SWITCHED:
        delta_ms = int((flow.ts - unix_secs) * 1000.0)
        return struct.pack("!I", max(0, sys_uptime_ms + delta_ms) & 0xFFFFFFFF)
    value = flow.extra.get(FIELD_NAMES.get(f.field_type, f"field_{f.field_type}"), 0)
    return int(value).to_bytes(f.length, "big")


def encode_v9_data(
    template: TemplateRecord,
    flows: Iterable[FlowRecord],
    sys_uptime_ms: int = 0,
    unix_secs: int = 0,
    sequence: int = 0,
    source_id: int = 0,
) -> bytes:
    """Encode flows as one data FlowSet against ``template``."""
    body = bytearray()
    count = 0
    for flow in flows:
        for f in template.fields:
            chunk = _flow_to_field_bytes(flow, f, unix_secs, sys_uptime_ms)
            if len(chunk) != f.length:
                raise ParseError(
                    f"field {f.field_type} produced {len(chunk)} bytes, template says {f.length}"
                )
            body.extend(chunk)
        count += 1
    # Pad FlowSet to a 4-byte boundary per RFC 3954 §5.3.
    padding = (-(4 + len(body))) % 4
    flowset = struct.pack("!HH", template.template_id, 4 + len(body) + padding)
    return (
        _pack_header(count, sys_uptime_ms, unix_secs, sequence, source_id)
        + flowset
        + bytes(body)
        + b"\x00" * padding
    )


_SRC_ADDR_TYPES = frozenset({IPV4_SRC_ADDR, IPV6_SRC_ADDR})
_DST_ADDR_TYPES = frozenset({IPV4_DST_ADDR, IPV6_DST_ADDR})


@lru_cache(maxsize=256)
def compiled_v9_decoder(template: TemplateRecord) -> Callable[..., List[FlowRecord]]:
    """One compiled ``decode(payload, unix_secs, sys_uptime)`` per template.

    Memoised so periodic template refreshes (re-learning an identical
    layout) never recompile.
    """
    return compile_decoder(
        template,
        FIELD_NAMES,
        _SRC_ADDR_TYPES,
        _DST_ADDR_TYPES,
        LAST_SWITCHED,
        "uptime_ms",
    )


class V9Session:
    """Stateful v9 collector side: caches templates, decodes data FlowSets.

    Data FlowSets decode through the template-specialized compiled decoder
    by default; ``use_compiled=False`` keeps the per-field reference
    implementation, which the parity tests and the codec benchmark's
    baseline measure against.
    """

    def __init__(self, use_compiled: bool = True) -> None:
        self.use_compiled = use_compiled
        self._templates: Dict[Tuple[int, int], TemplateRecord] = {}
        self._decoders: Dict[Tuple[int, int], Callable[..., List[FlowRecord]]] = {}

    def template_for(self, source_id: int, template_id: int) -> Optional[TemplateRecord]:
        return self._templates.get((source_id, template_id))

    def _walk_flowsets(self, datagram: bytes, on_data) -> None:
        """The one FlowSet walk both decode lanes share.

        Validates the header, learns template FlowSets, and hands each
        data FlowSet with a known template to
        ``on_data(key, tmpl, payload, unix_secs, sys_uptime)``. Data
        FlowSets referencing an unknown template are skipped (the
        standard collector behaviour until the template refresh
        arrives). The callback runs per FlowSet, not per record, so the
        indirection costs nothing measurable — and any future fix to
        length validation or template learning lands in both lanes at
        once.
        """
        if len(datagram) < V9_HEADER.size:
            raise ParseError("v9 datagram shorter than header")
        version, _count, sys_uptime, unix_secs, _seq, source_id = V9_HEADER.unpack_from(datagram, 0)
        if version != 9:
            raise ParseError(f"not a v9 datagram (version={version})")
        offset = V9_HEADER.size
        while offset + 4 <= len(datagram):
            set_id, set_len = struct.unpack_from("!HH", datagram, offset)
            if set_len < 4 or offset + set_len > len(datagram):
                raise ParseError("malformed FlowSet length")
            payload = datagram[offset + 4 : offset + set_len]
            if set_id == 0:
                self._learn_templates(source_id, payload)
            elif set_id >= 256:
                key = (source_id, set_id)
                tmpl = self._templates.get(key)
                if tmpl is not None:
                    on_data(key, tmpl, payload, unix_secs, sys_uptime)
            offset += set_len

    def _compiled_decoder(self, key, tmpl):
        """Get-or-compile the cached compiled decoder for one template."""
        decoder = self._decoders.get(key)
        if decoder is None:
            decoder = compiled_v9_decoder(tmpl)
            self._decoders[key] = decoder
        return decoder

    def decode(self, datagram: bytes) -> List[FlowRecord]:
        """Decode one datagram, learning templates and emitting flows."""
        flows: List[FlowRecord] = []

        def on_data(key, tmpl, payload, unix_secs, sys_uptime):
            if self.use_compiled:
                decoder = self._compiled_decoder(key, tmpl)
                flows.extend(decoder(payload, unix_secs, sys_uptime))
            else:
                flows.extend(
                    self._decode_data_reference(tmpl, payload, unix_secs, sys_uptime)
                )

        self._walk_flowsets(datagram, on_data)
        return flows

    def decode_batch_columns(self, datagram: bytes) -> FlowBatch:
        """Decode one datagram straight into a columnar :class:`FlowBatch`.

        Same template learning and FlowSet walk as :meth:`decode`, but
        data FlowSets run the compiled decoder's columnar twin — no
        ``FlowRecord`` or ``ipaddress`` objects are materialised. Always
        uses the compiled path (there is no per-field columnar reference;
        the object decoders remain the parity ground truth).
        """
        batches: List[FlowBatch] = [FlowBatch()]

        def on_data(key, tmpl, payload, unix_secs, sys_uptime):
            decoder = self._compiled_decoder(key, tmpl)
            decoded = decoder.decode_columns(payload, unix_secs, sys_uptime)
            batch = batches[0]
            if len(batch):
                batch.extend(decoded)
            elif len(decoded):
                # Adopt the first non-empty set's batch outright — the
                # single-data-FlowSet datagram needs no copy at all.
                batches[0] = decoded

        self._walk_flowsets(datagram, on_data)
        return batches[0]

    def _learn_templates(self, source_id: int, payload: bytes) -> None:
        offset = 0
        while offset + 4 <= len(payload):
            template_id, field_count = struct.unpack_from("!HH", payload, offset)
            offset += 4
            if template_id == 0 and field_count == 0:
                break  # padding
            fields = []
            for _ in range(field_count):
                if offset + 4 > len(payload):
                    raise ParseError("truncated template record")
                ftype, flen = struct.unpack_from("!HH", payload, offset)
                fields.append(TemplateField(ftype, flen))
                offset += 4
            key = (source_id, template_id)
            tmpl = TemplateRecord(template_id, tuple(fields))
            self._templates[key] = tmpl
            # Compile at registration so the first data FlowSet pays nothing.
            if self.use_compiled:
                self._decoders[key] = compiled_v9_decoder(tmpl)
            else:
                # decode_batch_columns lazily caches compiled decoders even
                # on reference sessions; a re-announced template must not
                # leave that cache decoding the old layout.
                self._decoders.pop(key, None)

    def _decode_data_reference(
        self, tmpl: TemplateRecord, payload: bytes, unix_secs: int, sys_uptime: int
    ) -> List[FlowRecord]:
        """Per-field reference decoder (the compiled path's ground truth)."""
        flows: List[FlowRecord] = []
        rec_len = tmpl.record_length
        if rec_len == 0:
            return flows  # zero-field template: nothing to decode, don't spin
        offset = 0
        while offset + rec_len <= len(payload):
            values: Dict[str, int] = {}
            src_ip = dst_ip = None
            for f in tmpl.fields:
                raw = payload[offset : offset + f.length]
                offset += f.length
                if f.field_type in (IPV4_SRC_ADDR, IPV6_SRC_ADDR):
                    src_ip = ipaddress.ip_address(raw)
                elif f.field_type in (IPV4_DST_ADDR, IPV6_DST_ADDR):
                    dst_ip = ipaddress.ip_address(raw)
                else:
                    values[FIELD_NAMES.get(f.field_type, f"field_{f.field_type}")] = int.from_bytes(
                        raw, "big"
                    )
            if src_ip is None or dst_ip is None:
                continue  # option/record without addresses is useless to FlowDNS
            last = values.pop("last_switched", sys_uptime)
            ts = unix_secs + (last - sys_uptime) / 1000.0
            flows.append(
                FlowRecord(
                    ts=ts,
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=values.pop("src_port", 0),
                    dst_port=values.pop("dst_port", 0),
                    protocol=values.pop("protocol", 0),
                    packets=values.pop("packets", 0),
                    bytes_=values.pop("bytes", 0),
                    extra=values,
                )
            )
        return flows
