"""Run a capture through any live engine, deterministically.

One entry point — :func:`replay_capture` — hides the per-engine ordering
policy that makes offline replay reproducible:

* ``threaded`` consumes its sources concurrently, so the flow lane is
  gated behind fill completion (:func:`repro.core.pipeline.gated_flow_source`);
  a gate timeout lands in :attr:`EngineReport.warnings` instead of being
  lost to stderr;
* ``sharded`` and ``async`` take ``dns_first=True`` (per-shard FIFO
  queues / the async fill barrier give the same hard ordering).

With identical ordering and identical wire bytes, every engine must
produce identical output rows and merged report stats — that is the
contract the differential harness (``tests/test_replay_differential.py``)
pins on the golden corpus.
"""

from __future__ import annotations

from typing import List, Optional, TextIO

from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.metrics import EngineReport, dedupe_warnings
from repro.core.pipeline import (  # noqa: F401 - re-exported replay API
    DEFAULT_FILL_TIMEOUT,
    fill_gate_warning,
    gated_with_warning,
)
from repro.core.variants import engine_for
from repro.replay.capture import probe_capture
from repro.replay.faults import FaultInjector, FaultPlan, resolve_fault_plan
from repro.replay.source import CaptureLike, replay_sources
from repro.util.errors import ConfigError

#: Engines a capture can be replayed through (the live trio; the
#: simulation engine consumes record objects, not wire bytes).
REPLAY_ENGINES = ("threaded", "sharded", "async")


def replay_capture(
    capture: CaptureLike,
    engine: str = "threaded",
    config: Optional[FlowDNSConfig | EngineConfig] = None,
    sink: Optional[TextIO] = None,
    realtime: Optional[bool] = None,
    speed: Optional[float] = None,
    num_shards: Optional[int] = None,
    fill_timeout: Optional[float] = None,
    on_fill_timeout=None,
    faults: Optional[FaultPlan | str] = None,
    fault_seed: Optional[int] = None,
) -> EngineReport:
    """Replay a capture (path or frames) through one engine; returns its report.

    ``config`` may be a full :class:`EngineConfig`, in which case its
    ``shards``/``fill_timeout``/``realtime``/``speed`` fields are the
    defaults and the explicit keyword arguments override them (the
    keywords keep their pre-EngineConfig behaviour for existing callers).

    ``realtime=True`` paces items by the recorded inter-arrival gaps
    (divided by ``speed``); the default replays at max speed, which with
    the DNS-before-flows ordering is fully deterministic.

    Realtime caveat for ``engine="async"``: the pacing sleep is a
    blocking ``time.sleep`` executed by the pump coroutine, so each gap
    stalls the whole event loop, not just the source. Output rows and
    report counters are unaffected (nothing else needs the loop during
    an offline replay's gaps), but intra-run buffer-occupancy dynamics
    are not faithful — study burst-induced loss under the threaded or
    sharded engine, whose receiver threads sleep independently.

    ``faults`` perturbs the capture *before* it reaches the engine: a
    :class:`~repro.replay.faults.FaultPlan`, a profile name from
    :data:`~repro.replay.faults.FAULT_PROFILES`, or None to fall back
    to the fault fields of an ``EngineConfig`` passed as ``config``.
    Perturbation is deterministic in ``fault_seed`` — the same seed
    over the same capture yields bit-identical faulted frames, so the
    chaos differential harness can compare engines on equal footing.
    """
    if engine not in REPLAY_ENGINES:
        raise ConfigError(
            f"cannot replay through engine {engine!r}; choose one of {REPLAY_ENGINES}"
        )
    if isinstance(capture, str):
        # Missing file / not-a-capture must fail here, cleanly — not
        # inside a receiver thread after the engine has spun up. (A
        # *truncated* capture still replays: every cleanly-framed item
        # flows through and the failure lands in report.warnings.)
        probe_capture(capture)
    engine_config = EngineConfig.of(config)
    if realtime is None:
        realtime = engine_config.realtime
    if speed is None:
        speed = engine_config.speed
    if num_shards is None:
        num_shards = engine_config.shards
    if fill_timeout is None:
        fill_timeout = engine_config.fill_timeout
    if faults is None and (
        engine_config.fault_profile or engine_config.fault_rates
    ):
        faults = resolve_fault_plan(
            engine_config.fault_profile, engine_config.fault_rates
        )
    elif isinstance(faults, str):
        faults = resolve_fault_plan(faults, None)
    if fault_seed is None:
        fault_seed = engine_config.fault_seed
    if faults is not None and faults.active:
        injector = FaultInjector(
            faults, seed=fault_seed if fault_seed is not None else 0
        )
        capture = injector.apply(capture)
    instance = engine_for(engine, config=engine_config, sink=sink, num_shards=num_shards)
    dns_sources, flow_sources = replay_sources(capture, realtime=realtime, speed=speed)
    warnings: List[str] = []
    if engine == "threaded":
        flow_sources = [
            gated_with_warning(
                instance, source, fill_timeout, warnings, on_timeout=on_fill_timeout
            )
            for source in flow_sources
        ]
        report = instance.run(dns_sources, flow_sources)
    else:
        report = instance.run(dns_sources, flow_sources, dns_first=True)
    report.warnings.extend(warnings)
    report.warnings[:] = dedupe_warnings(report.warnings)
    return report
