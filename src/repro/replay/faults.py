"""Deterministic, seeded fault injection for captures and ingest sources.

The paper's collection points see hostile input by default: UDP export
loses, duplicates, and reorders datagrams; TCP DNS streams corrupt and
truncate mid-frame; exporter clocks stall and skew. This module turns
those failure modes into a reproducible instrument:

* a :class:`FaultPlan` declares per-lane perturbation rates — drop,
  duplicate, bounded-window reorder, byte corruption, frame truncation,
  stall (cumulative timing gaps), and clock skew;
* a :class:`FaultInjector` applies a plan to a capture (path or frame
  iterable) or wraps a single ingest source, using
  :func:`repro.util.rng.derive_rng` with a per-lane label so the two
  lanes perturb **independently** — adding faults to one lane never
  changes the other lane's byte stream;
* :data:`FAULT_PROFILES` names curated plans (``lossy-udp``,
  ``flaky-tcp``, ``skewed-exporter``, ``everything``) for the CLI's
  ``flowdns replay --fault-profile`` and the chaos differential suite.

The reproducibility contract: the faulted stream is a pure function of
``(input frames, plan, seed)``. The same ``--fault-seed`` reproduces the
identical perturbed byte stream bit-for-bit, so any chaos failure is
replayable — and because perturbation happens *before* the engines,
every engine fed the same faulted stream must still produce identical
rows (the differential harness pins exactly that).

Frame order, not timestamps, is delivery order for a capture (the
engines replay frames in file order; timestamps pace ``--realtime`` runs
and stamp DNS records). Reordering therefore permutes the frame
*sequence* within a bounded window, and stall/skew faults rewrite the
*timestamps* without re-sorting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.replay.capture import LANE_DNS, LANE_FLOW, LANES, CaptureFrame, read_capture
from repro.util.errors import ConfigError
from repro.util.rng import derive_rng

CaptureLike = Union[str, Iterable[CaptureFrame]]

#: Rate-valued fault knobs (probability per frame, in [0, 1]).
_RATE_FIELDS = (
    "drop_rate",
    "duplicate_rate",
    "reorder_rate",
    "corrupt_rate",
    "truncate_rate",
    "stall_rate",
)

#: CLI spec shorthand (``--fault drop=0.05``) → LaneFaults field.
_SPEC_ALIASES = {
    "drop": "drop_rate",
    "duplicate": "duplicate_rate",
    "reorder": "reorder_rate",
    "corrupt": "corrupt_rate",
    "truncate": "truncate_rate",
    "stall": "stall_rate",
    "reorder_window": "reorder_window",
    "stall_seconds": "stall_seconds",
    "clock_skew": "clock_skew",
}


@dataclass(frozen=True)
class LaneFaults:
    """Perturbation rates for one capture lane.

    Rates are per-frame probabilities. ``reorder_window`` bounds how many
    subsequent same-lane frames a reordered frame can be delayed past;
    ``stall_seconds`` is the timing gap one stall inserts (stalls
    accumulate — every later frame on the lane shifts too, like a paused
    exporter catching up); ``clock_skew`` is a constant offset added to
    every frame timestamp (a wrong exporter clock).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_window: int = 4
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.25
    clock_skew: float = 0.0

    def __post_init__(self):
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.reorder_window < 1:
            raise ConfigError("reorder_window must be at least 1")
        if self.stall_seconds < 0:
            raise ConfigError("stall_seconds must be non-negative")

    @property
    def active(self) -> bool:
        """True when this lane perturbs anything at all."""
        return any(getattr(self, name) > 0 for name in _RATE_FIELDS) or (
            self.clock_skew != 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete perturbation recipe: one :class:`LaneFaults` per lane."""

    dns: LaneFaults = field(default_factory=LaneFaults)
    flow: LaneFaults = field(default_factory=LaneFaults)
    description: str = ""

    def lane(self, lane: str) -> LaneFaults:
        if lane not in LANES:
            raise ConfigError(f"unknown fault lane {lane!r}; known: {LANES}")
        return self.dns if lane == LANE_DNS else self.flow

    @property
    def active(self) -> bool:
        return self.dns.active or self.flow.active

    @classmethod
    def symmetric(cls, description: str = "", **rates) -> "FaultPlan":
        """The same :class:`LaneFaults` knobs applied to both lanes."""
        return cls(
            dns=LaneFaults(**rates), flow=LaneFaults(**rates), description=description
        )


#: The curated profile library (``flowdns replay --fault-profile``).
FAULT_PROFILES: Dict[str, FaultPlan] = {
    "lossy-udp": FaultPlan(
        flow=LaneFaults(drop_rate=0.08, duplicate_rate=0.04, reorder_rate=0.06),
        description="UDP export impairment: the flow lane loses, "
        "duplicates, and reorders datagrams; DNS untouched",
    ),
    "flaky-tcp": FaultPlan(
        dns=LaneFaults(
            drop_rate=0.02,
            corrupt_rate=0.03,
            truncate_rate=0.05,
            stall_rate=0.02,
            stall_seconds=0.05,
        ),
        description="TCP DNS stream impairment: corrupted and truncated "
        "messages plus delivery stalls; flows untouched",
    ),
    "skewed-exporter": FaultPlan(
        dns=LaneFaults(clock_skew=-30.0),
        flow=LaneFaults(clock_skew=120.0, reorder_rate=0.05),
        description="clock trouble: DNS stamps run 30s slow, the "
        "exporter clock 120s fast with mild reordering",
    ),
    "everything": FaultPlan(
        dns=LaneFaults(
            drop_rate=0.03,
            duplicate_rate=0.02,
            reorder_rate=0.04,
            corrupt_rate=0.02,
            truncate_rate=0.03,
            stall_rate=0.02,
            stall_seconds=0.1,
            clock_skew=-15.0,
        ),
        flow=LaneFaults(
            drop_rate=0.05,
            duplicate_rate=0.03,
            reorder_rate=0.05,
            corrupt_rate=0.03,
            truncate_rate=0.02,
            stall_rate=0.01,
            stall_seconds=0.1,
            clock_skew=60.0,
        ),
        description="every fault on both lanes at moderate rates — the "
        "worst day the collectors should still account for",
    ),
}


def parse_fault_specs(specs: Sequence[str]) -> Dict[str, float]:
    """Parse CLI ``NAME=VALUE`` fault specs into LaneFaults field values.

    Accepts the shorthand names (``drop``, ``corrupt``, …) plus the
    non-rate knobs (``reorder_window``, ``stall_seconds``,
    ``clock_skew``). Raises :class:`ConfigError` on unknown names or
    unparseable values; range validation happens in
    :class:`LaneFaults`.
    """
    values: Dict[str, float] = {}
    for spec in specs:
        name, sep, raw = spec.partition("=")
        if not sep:
            raise ConfigError(
                f"--fault expects NAME=VALUE, got {spec!r} "
                f"(names: {', '.join(sorted(_SPEC_ALIASES))})"
            )
        fault_field = _SPEC_ALIASES.get(name.strip())
        if fault_field is None:
            raise ConfigError(
                f"unknown fault {name.strip()!r}; known: "
                f"{', '.join(sorted(_SPEC_ALIASES))}"
            )
        try:
            value = int(raw) if fault_field == "reorder_window" else float(raw)
        except ValueError:
            raise ConfigError(f"fault {name.strip()!r} needs a number, got {raw!r}")
        values[fault_field] = value
    return values


def resolve_fault_plan(
    profile: Optional[str] = None, specs: Optional[Sequence[str]] = None
) -> Optional[FaultPlan]:
    """Combine a named profile and/or custom ``NAME=VALUE`` specs.

    Custom specs overlay the profile symmetrically (both lanes); either
    part may be absent. Returns None when neither is given. Raises
    :class:`ConfigError` on an unknown profile or a bad spec.
    """
    if profile is None and not specs:
        return None
    if profile is not None:
        plan = FAULT_PROFILES.get(profile)
        if plan is None:
            raise ConfigError(
                f"unknown fault profile {profile!r}; known: "
                f"{', '.join(sorted(FAULT_PROFILES))}"
            )
    else:
        plan = FaultPlan()
    if specs:
        overrides = parse_fault_specs(specs)
        plan = FaultPlan(
            dns=dataclasses.replace(plan.dns, **overrides),
            flow=dataclasses.replace(plan.flow, **overrides),
            description=plan.description,
        )
    return plan


@dataclass
class FaultStats:
    """What the injector did to one lane (reset per application)."""

    frames_in: int = 0
    frames_out: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0
    truncated: int = 0
    stalled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class _LaneState:
    """The per-lane perturbation pipeline over ``(ts, payload)`` pairs.

    One RNG per lane, derived from ``(seed, lane)`` — consuming draws
    only for this lane's frames, so the same lane produces the same
    perturbation whether it is faulted alone (a wrapped source) or
    interleaved with the other lane (a whole capture).

    Per frame, decision draws happen in a fixed order (drop → corrupt →
    truncate → duplicate → stall → reorder); the output permutation and
    payload mutations are fully determined by the draw sequence.
    """

    def __init__(self, faults: LaneFaults, seed: int, lane: str):
        self.faults = faults
        self.rng = derive_rng(seed, f"fault:{lane}")
        self.stats = FaultStats()
        #: Cumulative timing offset from stalls (every later frame shifts).
        self._stall_offset = 0.0
        #: Reorder hold queue: ``[countdown, (ts, payload)]`` entries; a
        #: held frame is released after ``countdown`` more emissions.
        self._held: List[List] = []

    def _emit(self, item: Tuple[float, bytes], out: List[Tuple[float, bytes]]) -> None:
        out.append(item)
        self.stats.frames_out += 1
        for entry in self._held:
            entry[0] -= 1
        released = [entry for entry in self._held if entry[0] <= 0]
        if released:
            # Detach before recursing: a freed frame counts as an
            # emission and can in turn free later-held frames, which
            # must not be double-released by this stack frame.
            self._held = [entry for entry in self._held if entry[0] > 0]
            for entry in released:
                self._emit(entry[1], out)

    def feed(self, ts: float, payload: bytes) -> List[Tuple[float, bytes]]:
        """Perturb one frame; returns zero or more ``(ts, payload)``."""
        faults = self.faults
        rng = self.rng
        stats = self.stats
        stats.frames_in += 1
        out: List[Tuple[float, bytes]] = []

        if faults.drop_rate and rng.random() < faults.drop_rate:
            stats.dropped += 1
            return out

        if faults.corrupt_rate and payload and rng.random() < faults.corrupt_rate:
            mutated = bytearray(payload)
            flips = 1 + rng.randrange(min(3, len(mutated)))
            for _ in range(flips):
                pos = rng.randrange(len(mutated))
                mutated[pos] ^= 1 + rng.randrange(255)
            payload = bytes(mutated)
            stats.corrupted += 1

        if faults.truncate_rate and payload and rng.random() < faults.truncate_rate:
            # Strictly shorter; zero-length payloads are deliberately in
            # range (the decoders must account for them, not choke).
            payload = payload[: rng.randrange(len(payload))]
            stats.truncated += 1

        copies = 1
        if faults.duplicate_rate and rng.random() < faults.duplicate_rate:
            copies = 2
            stats.duplicated += 1

        if faults.stall_rate and rng.random() < faults.stall_rate:
            self._stall_offset += faults.stall_seconds
            stats.stalled += 1
        ts = ts + faults.clock_skew + self._stall_offset

        for _ in range(copies):
            item = (ts, payload)
            if faults.reorder_rate and rng.random() < faults.reorder_rate:
                delay = 1 + rng.randrange(faults.reorder_window)
                self._held.append([delay, item])
                stats.reordered += 1
            else:
                self._emit(item, out)
        return out

    def flush(self) -> List[Tuple[float, bytes]]:
        """Release every still-held frame (in hold order) at stream end."""
        out: List[Tuple[float, bytes]] = []
        held, self._held = self._held, []
        for _countdown, item in held:
            out.append(item)
            self.stats.frames_out += 1
        return out


class FaultedSource:
    """An ingest source wrapped with per-item faults (one lane).

    Implements the ingest-source protocol by proxy — ``ingest_stats``,
    ``ingest_errors``, and ``close()`` pass through to the wrapped
    source — so engines account the *unfaulted* arrivals while the items
    they actually see are the perturbed ones. Items may be raw ``bytes``
    (flow lane) or ``(ts, payload)`` tuples (DNS lane); timing faults
    apply only where a timestamp exists to rewrite.

    Each iteration re-derives the lane RNG, so one wrapper replays the
    identical perturbation across several engine runs.
    """

    def __init__(self, source, lane: str, plan: FaultPlan, seed: int = 0):
        if lane not in LANES:
            raise ConfigError(f"unknown fault lane {lane!r}; known: {LANES}")
        self._source = source
        self.lane = lane
        self.plan = plan
        self.seed = seed
        self.fault_stats = FaultStats()

    @property
    def ingest_stats(self):
        return getattr(self._source, "ingest_stats", None)

    @property
    def ingest_errors(self):
        return getattr(self._source, "ingest_errors", ())

    def close(self) -> None:
        close = getattr(self._source, "close", None)
        if close is not None:
            close()

    def __iter__(self) -> Iterator:
        state = _LaneState(self.plan.lane(self.lane), self.seed, self.lane)
        self.fault_stats = state.stats
        tupled = self.lane == LANE_DNS
        for item in self._source:
            if isinstance(item, tuple) and len(item) == 2:
                ts, payload = item
            else:
                ts, payload = 0.0, item
            for out_ts, out_payload in state.feed(ts, payload):
                yield (out_ts, out_payload) if tupled else out_payload
        for out_ts, out_payload in state.flush():
            yield (out_ts, out_payload) if tupled else out_payload


class FaultInjector:
    """Apply one :class:`FaultPlan` deterministically.

    ``apply`` perturbs a whole capture into a materialised frame list
    (both lanes, independently seeded); ``wrap_source`` wraps a single
    ingest source lazily. Either way the output is a pure function of
    ``(input, plan, seed)`` — :attr:`stats` (per-lane
    :class:`FaultStats`) describes the most recent application.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self.stats: Dict[str, FaultStats] = {
            lane: FaultStats() for lane in LANES
        }

    def apply(self, capture: CaptureLike) -> List[CaptureFrame]:
        """Fault every frame of a capture, preserving file order.

        The faulted list is safe to hand to several engines: it is a
        plain re-iterable frame sequence, so every engine replays the
        *identical* perturbed stream (the differential contract).
        Reordered frames move within their lane only; the output is
        **not** re-sorted by timestamp — frame order is delivery order.
        """
        frames: Iterable[CaptureFrame]
        if isinstance(capture, str):
            frames = read_capture(capture)
        else:
            frames = capture
        states = {
            lane: _LaneState(self.plan.lane(lane), self.seed, lane)
            for lane in LANES
        }
        out: List[CaptureFrame] = []
        for frame in frames:
            state = states[frame.lane]
            for ts, payload in state.feed(frame.ts, frame.payload):
                out.append(CaptureFrame(ts=ts, lane=frame.lane, payload=payload))
        for lane in LANES:
            for ts, payload in states[lane].flush():
                out.append(CaptureFrame(ts=ts, lane=lane, payload=payload))
        self.stats = {lane: states[lane].stats for lane in LANES}
        return out

    def wrap_source(self, source, lane: str) -> FaultedSource:
        """Wrap one ingest source with this plan's faults for ``lane``."""
        return FaultedSource(source, lane, self.plan, seed=self.seed)
