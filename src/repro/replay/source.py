"""Replay captured wire bytes into any engine.

A :class:`ReplaySource` is a plain iterable over one lane of a capture,
yielding exactly the item shapes the engines' lanes normalise natively:

* ``flow`` lane → raw export datagram ``bytes`` (each engine's
  per-stream :class:`~repro.netflow.collector.FlowCollector` re-decodes
  them, template state and malformed counting included);
* ``dns`` lane → ``(ts, wire_bytes)`` tuples, carrying the *captured*
  arrival timestamp so the fill lane stores records at the same times
  the original session did.

Two speeds:

* **max speed** (default) — yield as fast as the consumer pulls; the
  deterministic differential-testing mode;
* **timestamp-faithful** (``realtime=True``) — sleep out each recorded
  inter-arrival gap (scaled by ``speed``) before yielding, so bursts
  land on the engine's bounded buffers as bursts and reproduce the
  original buffer-overflow loss instead of being smoothed away by
  backpressure.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, List, Tuple, Union

from repro.core.metrics import IngestStats
from repro.replay.capture import LANE_DNS, LANE_FLOW, LANES, CaptureFrame, read_capture
from repro.util.errors import ConfigError

CaptureLike = Union[str, Iterable[CaptureFrame]]


def _frames(capture: CaptureLike) -> Iterator[CaptureFrame]:
    if isinstance(capture, str):
        return read_capture(capture)
    return iter(capture)


class ReplaySource:
    """One lane of a capture as an engine stream source.

    ``capture`` is a file path (re-read lazily on every iteration, so
    one source object can feed several engine runs) or an in-memory
    frame iterable (list/tuple re-iterate too; a one-shot generator
    supports a single run). ``sleep`` is injectable for deterministic
    pacing tests.
    """

    def __init__(
        self,
        capture: CaptureLike,
        lane: str,
        realtime: bool = False,
        speed: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        capture_tee=None,
    ):
        if lane not in LANES:
            raise ConfigError(f"unknown replay lane {lane!r}; known: {LANES}")
        if speed <= 0:
            raise ConfigError("replay speed must be positive")
        self._capture = capture
        self.lane = lane
        self.realtime = realtime
        self.speed = speed
        self._sleep = sleep
        #: Items yielded by the most recent iteration.
        self.items_replayed = 0
        #: Ingest-source protocol: a replayed frame is by definition both
        #: received and accepted (nothing between file and engine drops).
        self.ingest_stats = IngestStats(name=f"replay[{lane}]")
        #: Optional CaptureWriter tee — re-recording a replay (protocol
        #: parity with the live sources; useful for capture round-trips).
        self.capture = capture_tee

    def close(self) -> None:
        """Ingest-source protocol close(); nothing to release (no-op)."""

    def __iter__(self) -> Iterator:
        dns = self.lane == LANE_DNS
        realtime = self.realtime
        prev_ts = None
        stats = self.ingest_stats
        tee = self.capture
        self.items_replayed = 0
        # Per-run counters, like items_replayed (one source object can
        # feed several engine runs); the object identity is kept because
        # collect_ingest reads the attribute after the run.
        stats.received = stats.accepted = stats.dropped = 0
        stats.malformed = stats.bytes_in = 0
        for frame in _frames(self._capture):
            if frame.lane != self.lane:
                continue
            if realtime:
                if prev_ts is not None:
                    # Clamp: mixed-clock captures may interleave lanes
                    # non-monotonically; a negative gap is just "no wait".
                    gap = (frame.ts - prev_ts) / self.speed
                    if gap > 0:
                        self._sleep(gap)
                prev_ts = frame.ts
            self.items_replayed += 1
            stats.received += 1
            stats.accepted += 1
            stats.bytes_in += len(frame.payload)
            if tee is not None:
                if dns:
                    tee.record_dns(frame.payload, ts=frame.ts)
                else:
                    tee.record_flow(frame.payload, ts=frame.ts)
            yield (frame.ts, frame.payload) if dns else frame.payload


def replay_sources(
    capture: CaptureLike,
    realtime: bool = False,
    speed: float = 1.0,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[List[ReplaySource], List[ReplaySource]]:
    """Both lanes of a capture as ``(dns_sources, flow_sources)``.

    Always returns one source per lane — a lane absent from the capture
    simply yields nothing, which every engine treats as an empty stream.

    A one-shot iterator (a generator, ``read_capture(path)``) is
    materialized first: the two lanes iterate independently, and letting
    them race-split a shared iterator would silently hand each lane only
    the frames the other happened not to consume.

    For a path capture each lane streams the file independently (two
    reads, two decodes). That is deliberate, not an oversight: the
    engines drain the lanes on *their* schedule — the threaded fill gate
    pulls nothing from the flow lane until the DNS lane has fully
    drained — so a shared single pass would have to buffer one lane's
    entire frame set in memory anyway. Two O(1)-memory streams beat one
    whole-file buffer; callers that already hold frames in memory pass
    the list and pay a single decode.
    """
    if not isinstance(capture, str) and iter(capture) is capture:
        capture = list(capture)
    make = lambda lane: ReplaySource(  # noqa: E731 - two-call local factory
        capture, lane, realtime=realtime, speed=speed, sleep=sleep
    )
    return [make(LANE_DNS)], [make(LANE_FLOW)]
