"""The on-disk capture format: length-framed wire bytes per lane.

A capture is a durable recording of everything a FlowDNS collector saw
on the wire — NetFlow/IPFIX export datagrams and DNS messages — so a
scenario that trips one engine can be replayed bit-for-bit against any
other. The format is deliberately dumb:

* an 8-byte magic header (``FDNSCAP`` + format version);
* then frames, each ``lane (1 byte) | timestamp (8-byte IEEE double,
  big-endian) | length (4 bytes, big-endian) | payload``.

The lane tag says which stream the bytes belong to (``flow`` = one UDP
export datagram, ``dns`` = one RFC 1035 wire-format message); the
timestamp is the per-item capture stamp — by default from
:class:`repro.util.clock.MonotonicClock`, so inter-arrival gaps survive
wall-clock steps; live DNS frames instead carry the fill lane's
wall-clock arrival stamp, because replay must store records at the
identical timestamps the live session used — and the payload is the raw
wire bytes, exactly as
received, malformed input included (replay must reproduce the original
run's malformed counters too).

:class:`CaptureDecoder` mirrors :class:`repro.dns.tcp.TcpFrameDecoder`'s
contract: incremental feeding under arbitrary chunk boundaries, corrupt
input raises :class:`ParseError` *after* handing back every frame that
framed cleanly, and a truncated tail surfaces on :meth:`close` without
losing already-framed items.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import ParseError

#: File magic: format name + one version byte.
MAGIC = b"FDNSCAP\x01"

#: Lane tags (the public, string-typed API surface).
LANE_FLOW = "flow"
LANE_DNS = "dns"
LANES = (LANE_FLOW, LANE_DNS)

_LANE_TO_BYTE = {LANE_FLOW: 0x01, LANE_DNS: 0x02}
_BYTE_TO_LANE = {v: k for k, v in _LANE_TO_BYTE.items()}

#: lane tag, capture timestamp, payload length.
_FRAME_HEAD = struct.Struct("!BdI")

#: Hard ceiling on one frame's payload. Both wire formats the capture
#: carries are bounded at 64 KiB (UDP datagram / 16-bit DNS framing), so
#: a longer claim means the file is corrupt or not a capture at all.
MAX_FRAME_PAYLOAD = 1 << 17


@dataclass(frozen=True)
class CaptureFrame:
    """One captured wire unit: when it arrived, which lane, what bytes."""

    ts: float
    lane: str
    payload: bytes

    def __post_init__(self):
        if self.lane not in _LANE_TO_BYTE:
            raise ParseError(f"unknown capture lane {self.lane!r}")
        if len(self.payload) > MAX_FRAME_PAYLOAD:
            raise ParseError(
                f"capture payload too large: {len(self.payload)} > {MAX_FRAME_PAYLOAD}"
            )


def encode_frame(frame: CaptureFrame) -> bytes:
    """One frame's on-disk bytes (header + payload)."""
    return _FRAME_HEAD.pack(
        _LANE_TO_BYTE[frame.lane], frame.ts, len(frame.payload)
    ) + frame.payload


class CaptureDecoder:
    """Incremental capture reader: feed chunks, collect complete frames.

    The magic header is consumed first (and validated as soon as enough
    bytes arrive); afterwards every completed frame comes out of
    :meth:`feed` regardless of how the transport or filesystem chunked
    the bytes. Corruption — bad magic, an unknown lane tag, an oversized
    length claim — raises :class:`ParseError`, but frames completed
    *before* the corrupt bytes in the same chunk are still returned and
    the raise is deferred to the next :meth:`feed` or :meth:`close`,
    exactly like :class:`repro.dns.tcp.TcpFrameDecoder`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._corrupt: str = ""
        self._magic_seen = False
        self.frames_out = 0
        self.bytes_in = 0

    def _check_magic(self) -> bool:
        """True once the magic has been consumed; raises on mismatch."""
        if self._magic_seen:
            return True
        have = min(len(self._buffer), len(MAGIC))
        if self._buffer[:have] != MAGIC[:have]:
            self._corrupt = f"not a FlowDNS capture (bad magic {bytes(self._buffer[:8])!r})"
            raise ParseError(self._corrupt)
        if len(self._buffer) < len(MAGIC):
            return False
        del self._buffer[: len(MAGIC)]
        self._magic_seen = True
        return True

    def feed(self, chunk: bytes) -> List[CaptureFrame]:
        """Add bytes; return every frame completed by them."""
        if self._corrupt:
            raise ParseError(self._corrupt)
        self._buffer.extend(chunk)
        self.bytes_in += len(chunk)
        out: List[CaptureFrame] = []
        if not self._check_magic():
            return out
        head = _FRAME_HEAD
        while True:
            if len(self._buffer) < head.size:
                break
            lane_byte, ts, length = head.unpack_from(self._buffer, 0)
            lane = _BYTE_TO_LANE.get(lane_byte)
            if lane is None or length > MAX_FRAME_PAYLOAD:
                self._corrupt = (
                    f"unknown capture lane tag 0x{lane_byte:02x}"
                    if lane is None
                    else f"framed length {length} exceeds cap {MAX_FRAME_PAYLOAD}"
                ) + ": capture corrupt"
                if out:
                    # Hand back what framed cleanly; the caller learns of
                    # the corruption on its next feed()/close().
                    return out
                raise ParseError(self._corrupt)
            if len(self._buffer) < head.size + length:
                break
            payload = bytes(self._buffer[head.size : head.size + length])
            del self._buffer[: head.size + length]
            out.append(CaptureFrame(ts=ts, lane=lane, payload=payload))
            self.frames_out += 1
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame (or the magic)."""
        return len(self._buffer)

    def close(self) -> None:
        """Signal EOF; leftover bytes mean a truncated tail."""
        if self._corrupt:
            raise ParseError(self._corrupt)
        if not self._magic_seen:
            raise ParseError(
                "capture truncated inside the magic header"
                if self._buffer
                else "empty capture: missing magic header"
            )
        if self._buffer:
            raise ParseError(
                f"capture ended mid-frame with {len(self._buffer)} bytes pending"
            )


class CaptureWriter:
    """Append-only capture sink the live ingest paths tee into.

    Accepts a path (opened/closed by the writer) or an already-open
    binary file object (left open). Thread-safe: the threaded engine's
    ``UdpFlowSource`` iterates in one thread while a DNS tap may write
    from another, so every record takes the lock.

    Items are stamped with ``clock.now()`` (default:
    :class:`~repro.util.clock.MonotonicClock`) unless the caller passes
    the timestamp it already stamped the item with — the live DNS ingest
    does, so a replayed capture feeds the fill lane the *identical*
    arrival timestamps the original session used.

    A *path* target opens lazily — on the first recorded frame or an
    explicit :meth:`ensure_open` — so a session that dies before
    receiving anything (listeners failed to bind) exits without having
    truncated whatever previously lived at that path. A file-object
    target is the caller's to manage and gets the magic immediately.
    """

    def __init__(
        self,
        target: Union[str, IO[bytes]],
        clock: Optional[Clock] = None,
    ):
        self.clock = clock if clock is not None else MonotonicClock()
        self._lock = threading.Lock()
        self._closed = False
        self.frames_written = 0
        self.bytes_written = 0
        if isinstance(target, str):
            self._path: Optional[str] = target
            self._file: Optional[IO[bytes]] = None
            self._owns_file = True
        else:
            self._path = None
            self._file = target
            self._owns_file = False
            self._file.write(MAGIC)
            self.bytes_written += len(MAGIC)

    def _open_locked(self) -> IO[bytes]:
        if self._file is None:
            self._file = open(self._path, "wb")
            self._file.write(MAGIC)
            self.bytes_written += len(MAGIC)
        return self._file

    def ensure_open(self) -> None:
        """Materialize a path target now (a valid, possibly empty capture).

        The CLI calls this after a live session ends cleanly, so a
        zero-traffic run still leaves a well-formed file; a run that
        failed at bind time never calls it and the path stays untouched.
        """
        with self._lock:
            if not self._closed:
                self._open_locked()

    def record(self, lane: str, payload: bytes, ts: Optional[float] = None) -> None:
        """Append one wire unit; stamps ``clock.now()`` when ``ts`` is None."""
        frame = CaptureFrame(
            ts=self.clock.now() if ts is None else ts,
            lane=lane,
            payload=bytes(payload),
        )
        encoded = encode_frame(frame)
        with self._lock:
            if self._closed:
                return
            self._open_locked().write(encoded)
            self.frames_written += 1
            self.bytes_written += len(encoded)

    def record_stream(self, frames: Iterable[Tuple[float, str, bytes]]) -> None:
        """Append many ``(ts, lane, payload)`` frames in one lock hold.

        The bulk fast path for producers that emit whole captures in one
        go (the workload generator): skips per-frame :class:`CaptureFrame`
        construction and lock churn while writing the exact same bytes as
        repeated :meth:`record` calls. The lock is held for the duration,
        so don't interleave with concurrent :meth:`record` callers.
        """
        pack = _FRAME_HEAD.pack
        head_size = _FRAME_HEAD.size
        lane_bytes = _LANE_TO_BYTE
        with self._lock:
            if self._closed:
                return
            write = self._open_locked().write
            frames_written = 0
            bytes_written = 0
            try:
                for ts, lane, payload in frames:
                    n = len(payload)
                    if n > MAX_FRAME_PAYLOAD:
                        raise ParseError(
                            f"capture payload too large: {n} > {MAX_FRAME_PAYLOAD}"
                        )
                    try:
                        tag = lane_bytes[lane]
                    except KeyError:
                        raise ParseError(f"unknown capture lane {lane!r}") from None
                    write(pack(tag, ts, n) + payload)
                    frames_written += 1
                    bytes_written += head_size + n
            finally:
                self.frames_written += frames_written
                self.bytes_written += bytes_written

    def record_flow(self, payload: bytes, ts: Optional[float] = None) -> None:
        """Tee one NetFlow/IPFIX export datagram."""
        self.record(LANE_FLOW, payload, ts=ts)

    def record_dns(self, payload: bytes, ts: Optional[float] = None) -> None:
        """Tee one DNS wire-format message."""
        self.record(LANE_DNS, payload, ts=ts)

    def flush(self) -> None:
        with self._lock:
            if not self._closed and self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                self._file.flush()
                if self._owns_file:
                    self._file.close()

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_capture(path: str, frames: Iterable[CaptureFrame]) -> int:
    """Write a complete capture file from frames; returns the frame count."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        for frame in frames:
            handle.write(encode_frame(frame))
            count += 1
    return count


def probe_capture(path: str) -> None:
    """Fail fast on a path that can never replay.

    Raises :class:`OSError` (missing/unreadable file) or
    :class:`ParseError` (not a capture) by checking only the magic header
    — the cheap validation :func:`repro.replay.runner.replay_capture`
    runs *before* spinning up an engine, so a bad path surfaces as a
    clean error instead of an engine fed by a source that dies lazily.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head != MAGIC:
        raise ParseError(
            f"not a FlowDNS capture: {path!r} (bad or short magic {head!r})"
        )


def read_capture(path: str, chunk_size: int = 1 << 16) -> Iterator[CaptureFrame]:
    """Stream frames off a capture file.

    Frames are yielded as they complete, so a truncated file still
    delivers everything that framed cleanly before :class:`ParseError`
    surfaces for the damaged tail.
    """
    decoder = CaptureDecoder()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            yield from decoder.feed(chunk)
    decoder.close()


def load_capture(path: str) -> List[CaptureFrame]:
    """Read a whole capture file into memory."""
    return list(read_capture(path))
