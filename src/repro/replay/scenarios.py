"""Scenario library: synthesize captures worth replaying.

Each scenario builds a small, fully deterministic capture (a list of
:class:`~repro.replay.capture.CaptureFrame`) exercising one behaviour
the ROADMAP's "as many scenarios as you can imagine" goal cares about:

* ``bursts`` — steady traffic, then a zero-gap datagram burst, then
  steady again: timestamp-faithful replay reproduces the burst's
  buffer-overflow pressure, max-speed replay the contents;
* ``template-reannounce`` — NetFlow v9 and IPFIX streams whose capture
  starts mid-export (data before any template — the late-joiner drop
  path) and whose templates are re-announced mid-stream;
* ``malformed`` — valid traffic interleaved with garbage on both lanes:
  unknown export versions, truncated datagrams, undecodable DNS;
* ``cname-churn`` — names re-resolving through *changing* CNAME chains
  mid-capture, so chain walks and overwrite counting get exercised;
* ``ttl-expiry`` — records whose flows arrive exactly at, just before,
  and just after TTL expiry (run it under ``exact_ttl`` too — the
  differential harness does);
* ``two-site`` — the Section 4 browse-two-websites accuracy capture
  (same-IP variant: the second site's A record overwrites the first),
  straight from :func:`repro.workloads.two_site_capture`.

Scenarios synthesize *wire bytes* — DNS messages via
:mod:`repro.dns.wire`, export datagrams via
:class:`~repro.netflow.exporter.FlowExporter` — because a capture
records what the sockets saw, not decoded objects. The golden corpus
under ``tests/data/golden/`` is these scenarios at seed 7; regenerate
with ``python -m repro.replay.scenarios <dir>`` or
``flowdns capture --scenario <name>``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.dns.rr import ResourceRecord, RRType, a_record, cname_record
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.netflow.v9 import STANDARD_V4_TEMPLATE, encode_v9_data
from repro.replay.capture import CaptureFrame, LANE_DNS, LANE_FLOW, write_capture
from repro.util.errors import ConfigError
from repro.util.rng import derive_rng

#: Seed the golden corpus is generated with.
GOLDEN_SEED = 7


# --- wire-building helpers ---------------------------------------------------


def _message_wire(qname: str, answers: Sequence[ResourceRecord]) -> bytes:
    msg = DnsMessage()
    msg.questions.append(Question(qname, RRType.A))
    msg.answers.extend(answers)
    return encode_message(msg)


def _a_frame(ts: float, name: str, ip: str, ttl: int) -> CaptureFrame:
    return CaptureFrame(ts, LANE_DNS, _message_wire(name, [a_record(name, ip, ttl)]))


def _chain_frame(
    ts: float, name: str, targets: Sequence[str], ip: str, ttl: int
) -> CaptureFrame:
    """One response resolving ``name`` through a CNAME chain to ``ip``."""
    answers: List[ResourceRecord] = []
    owner = name
    for target in targets:
        answers.append(cname_record(owner, target, ttl))
        owner = target
    answers.append(a_record(owner, ip, ttl))
    return CaptureFrame(ts, LANE_DNS, _message_wire(name, answers))


def _flow_frames(
    flows: Iterable[FlowRecord],
    start: float,
    gap: float,
    version: int = 9,
    batch_size: int = 24,
    template_refresh: int = 64,
) -> List[CaptureFrame]:
    """Export flows to datagrams, one frame per datagram, evenly paced."""
    exporter = FlowExporter(
        version=version, batch_size=batch_size, template_refresh=template_refresh
    )
    frames = []
    ts = start
    for datagram in exporter.export(flows):
        frames.append(CaptureFrame(ts, LANE_FLOW, datagram))
        ts += gap
    return frames


def _client_flows(
    rng, ips: Sequence[str], count: int, t0: float, span: float
) -> List[FlowRecord]:
    """Flows from the given server IPs towards clients, shuffled in time."""
    flows = []
    for i in range(count):
        flows.append(
            FlowRecord(
                ts=t0 + rng.uniform(0.0, span),
                src_ip=ips[i % len(ips)],
                dst_ip=f"100.64.7.{i % 20 + 1}",
                src_port=443,
                dst_port=49152 + i % 500,
                protocol=6,
                packets=1 + i % 9,
                bytes_=200 + 37 * (i % 41),
            )
        )
    flows.sort(key=lambda f: f.ts)
    return flows


def _background_flows(rng, count: int, t0: float, span: float) -> List[FlowRecord]:
    """Traffic from addresses no DNS record announces (unmatched rows)."""
    return [
        FlowRecord(
            ts=t0 + rng.uniform(0.0, span),
            src_ip=f"172.16.50.{i % 12 + 1}",
            dst_ip=f"100.64.9.{i % 6 + 1}",
            src_port=8443,
            dst_port=51000 + i % 200,
            protocol=17 if i % 3 == 0 else 6,
            packets=1 + i % 4,
            bytes_=64 + 11 * (i % 29),
        )
        for i in range(count)
    ]


# --- scenarios ---------------------------------------------------------------


def scenario_bursts(seed: int) -> List[CaptureFrame]:
    """Steady → zero-gap burst → steady, on the flow lane."""
    rng = derive_rng(seed, "bursts")
    ips = [f"10.20.0.{i + 1}" for i in range(30)]
    frames = [
        _a_frame(0.2 + 0.1 * i, f"svc{i}.burst.example", ip, 300)
        for i, ip in enumerate(ips)
    ]
    steady_a = sorted(
        _client_flows(rng, ips, 48, t0=5.0, span=4.0)
        + _background_flows(rng, 12, t0=5.0, span=4.0),
        key=lambda f: f.ts,
    )
    burst = _client_flows(rng, ips, 192, t0=10.0, span=0.05)
    steady_b = sorted(
        _client_flows(rng, ips, 48, t0=12.0, span=4.0)
        + _background_flows(rng, 12, t0=12.0, span=4.0),
        key=lambda f: f.ts,
    )
    frames += _flow_frames(steady_a, start=5.0, gap=0.25, batch_size=16)
    # The burst: every datagram stamped at the same instant — replayed
    # timestamp-faithful these land back-to-back, like the original burst.
    frames += _flow_frames(burst, start=10.0, gap=0.0, batch_size=16)
    frames += _flow_frames(steady_b, start=12.0, gap=0.25, batch_size=16)
    return frames


def scenario_template_reannounce(seed: int) -> List[CaptureFrame]:
    """v9 + IPFIX with a late-join head and mid-stream re-announces."""
    rng = derive_rng(seed, "template-reannounce")
    ips = [f"10.21.0.{i + 1}" for i in range(12)]
    frames = [
        _a_frame(0.2 + 0.1 * i, f"app{i}.tmpl.example", ip, 600)
        for i, ip in enumerate(ips)
    ]
    # Late join: the capture starts with a DATA datagram for a template
    # this collector has never seen — dropped and counted, identically,
    # by every engine's collector.
    orphans = _client_flows(rng, ips, 6, t0=4.0, span=0.5)
    frames.append(
        CaptureFrame(
            4.0,
            LANE_FLOW,
            encode_v9_data(STANDARD_V4_TEMPLATE, orphans, unix_secs=4, sequence=0),
        )
    )
    # Then the proper streams; template_refresh=2 forces re-announces
    # every two data datagrams — mid-stream template churn.
    v9_flows = _client_flows(rng, ips, 96, t0=5.0, span=10.0)
    ipfix_flows = _client_flows(rng, ips, 96, t0=5.5, span=10.0)
    frames += _flow_frames(
        v9_flows, start=5.0, gap=0.2, version=9, batch_size=12, template_refresh=2
    )
    frames += _flow_frames(
        ipfix_flows, start=5.1, gap=0.2, version=10, batch_size=12, template_refresh=2
    )
    return frames


def scenario_malformed(seed: int) -> List[CaptureFrame]:
    """Garbage interleaved with valid traffic on both lanes."""
    rng = derive_rng(seed, "malformed")
    ips = [f"10.22.0.{i + 1}" for i in range(8)]
    frames = []
    for i, ip in enumerate(ips):
        frames.append(_a_frame(0.2 + 0.2 * i, f"ok{i}.mal.example", ip, 300))
        if i % 2 == 0:
            # Undecodable DNS payloads: pure garbage, and a truncated
            # copy of a real message — both count as invalid, not fatal.
            frames.append(CaptureFrame(0.25 + 0.2 * i, LANE_DNS, b"\xde\xad\xbe\xef" * 3))
    good_wire = _message_wire("trunc.mal.example", [a_record("trunc.mal.example", "10.22.9.9", 60)])
    frames.append(CaptureFrame(1.9, LANE_DNS, good_wire[: len(good_wire) // 2]))

    flows = sorted(
        _client_flows(rng, ips, 64, t0=5.0, span=8.0)
        + _background_flows(rng, 16, t0=5.0, span=8.0),
        key=lambda f: f.ts,
    )
    good = _flow_frames(flows, start=5.0, gap=0.2, version=9, batch_size=16)
    bad = [
        CaptureFrame(5.05, LANE_FLOW, b"\x00\x63junk-export-version-99"),
        CaptureFrame(5.45, LANE_FLOW, b"\x00"),  # shorter than the version probe
        CaptureFrame(5.85, LANE_FLOW, good[1].payload[:11]),  # truncated v9 body
    ]
    frames += sorted(good + bad, key=lambda f: f.ts)
    return frames


def scenario_cname_churn(seed: int) -> List[CaptureFrame]:
    """CNAME chains whose targets change mid-capture."""
    rng = derive_rng(seed, "cname-churn")
    frames: List[CaptureFrame] = []
    old_ips, new_ips = [], []
    for i in range(10):
        name = f"www{i}.churn.example"
        old_ip, new_ip = f"10.30.0.{i + 1}", f"10.30.1.{i + 1}"
        old_ips.append(old_ip)
        new_ips.append(new_ip)
        # First resolution: a 2-step chain through provider A.
        frames.append(
            _chain_frame(0.5 + 0.3 * i, name, [f"edge{i}.cdn-a.example"], old_ip, 120)
        )
        # Mid-capture churn: the same name re-resolves through provider
        # B with a *longer* chain and a new address.
        frames.append(
            _chain_frame(
                12.0 + 0.3 * i,
                name,
                [f"lb{i}.cdn-b.example", f"pop{i}.cdn-b.example"],
                new_ip,
                60,
            )
        )
    flows = _client_flows(rng, old_ips, 48, t0=4.0, span=6.0)
    flows += _client_flows(rng, old_ips + new_ips, 96, t0=16.0, span=8.0)
    flows += _background_flows(rng, 24, t0=4.0, span=20.0)
    flows.sort(key=lambda f: f.ts)
    frames += _flow_frames(flows, start=4.0, gap=0.15, batch_size=20)
    return frames


def scenario_ttl_expiry(seed: int) -> List[CaptureFrame]:
    """Flows timed exactly around record TTL expiry boundaries."""
    rng = derive_rng(seed, "ttl-expiry")
    frames: List[CaptureFrame] = []
    flows: List[FlowRecord] = []
    for i in range(12):
        name = f"ttl{i}.exact.example"
        ip = f"10.40.0.{i + 1}"
        ttl = 30 + 5 * (i % 3)
        born = 1.0 + 0.5 * i
        frames.append(_a_frame(born, name, ip, ttl))
        expiry = born + ttl
        for offset in (-5.0, -0.5, 0.0, 0.5, 5.0):
            flows.append(
                FlowRecord(
                    ts=expiry + offset,
                    src_ip=ip,
                    dst_ip=f"100.64.8.{i + 1}",
                    src_port=443,
                    dst_port=50000 + i,
                    protocol=6,
                    packets=2,
                    bytes_=500 + 10 * i + int(10 * offset) % 7,
                )
            )
    # A tail of flows past the sweep interval, so exact-TTL sweeps run.
    flows += _client_flows(rng, ["10.40.0.1", "10.40.0.2"], 16, t0=65.0, span=5.0)
    flows.sort(key=lambda f: f.ts)
    frames += _flow_frames(flows, start=2.0, gap=0.3, batch_size=10)
    return frames


def scenario_two_site(seed: int) -> List[CaptureFrame]:
    """The paper's same-IP two-website capture, as wire bytes."""
    from repro.workloads.pcaplike import two_site_capture

    capture = two_site_capture(same_ip=True, seed=seed)
    frames = [
        _a_frame(rec.ts, rec.query, rec.answer, rec.ttl)
        for rec in capture.dns_records
    ]
    frames += _flow_frames(capture.flow_records, start=3.0, gap=0.1, batch_size=8)
    return frames


SCENARIOS: Dict[str, Callable[[int], List[CaptureFrame]]] = {
    "bursts": scenario_bursts,
    "template-reannounce": scenario_template_reannounce,
    "malformed": scenario_malformed,
    "cname-churn": scenario_cname_churn,
    "ttl-expiry": scenario_ttl_expiry,
    "two-site": scenario_two_site,
}


def build_scenario(name: str, seed: int = GOLDEN_SEED) -> List[CaptureFrame]:
    """Synthesize one scenario's frames, in capture (chronological) order.

    The sort is what a real recorder would have produced — frames land
    in the file as they arrive — and it is load-bearing for
    ``--realtime`` replay: per-lane inter-arrival gaps are computed from
    consecutive same-lane frames, so a lane whose timestamps oscillated
    would sleep far longer than the recorded span (negative gaps clamp
    to zero, positive ones all get slept). The sort is stable, so the
    zero-gap burst frames keep their datagram order.
    """
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    frames = builder(seed)
    frames.sort(key=lambda frame: frame.ts)
    return frames


def write_scenario(name: str, path: str, seed: int = GOLDEN_SEED) -> int:
    """Synthesize a scenario straight to a capture file; returns frames."""
    return write_capture(path, build_scenario(name, seed=seed))


def main(argv=None) -> int:  # pragma: no cover - regeneration utility
    """Regenerate the scenario corpus: ``python -m repro.replay.scenarios DIR``."""
    import os
    import sys

    args = argv if argv is not None else sys.argv[1:]
    out_dir = args[0] if args else os.path.join("tests", "data", "golden")
    os.makedirs(out_dir, exist_ok=True)
    for name in SCENARIOS:
        path = os.path.join(out_dir, f"{name}.fdc")
        count = write_scenario(name, path)
        print(f"wrote {path} ({count} frames)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
