"""Record-and-replay: durable capture artifacts for every engine.

The paper's system runs against live, unrepeatable socket feeds; this
subpackage turns a feed into a file and a file back into a feed:

* :mod:`repro.replay.capture` — the length-framed on-disk format,
  the incremental :class:`CaptureDecoder`, and the :class:`CaptureWriter`
  tap the live ingest paths tee into;
* :mod:`repro.replay.source` — :class:`ReplaySource`, one capture lane
  as an engine stream source, timestamp-faithful or max speed;
* :mod:`repro.replay.runner` — :func:`replay_capture`, one capture
  through any live engine with deterministic DNS-before-flows ordering;
* :mod:`repro.replay.scenarios` — the scenario library behind the
  golden corpus (``tests/data/golden/``) and ``flowdns capture
  --scenario``;
* :mod:`repro.replay.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan`/:class:`FaultInjector`) perturbing a capture's
  wire bytes and timing per lane, behind ``flowdns replay
  --fault-profile`` and :func:`replay_capture`'s ``faults=`` hook.
"""

from repro.replay.capture import (
    LANE_DNS,
    LANE_FLOW,
    LANES,
    MAGIC,
    MAX_FRAME_PAYLOAD,
    CaptureDecoder,
    CaptureFrame,
    CaptureWriter,
    encode_frame,
    load_capture,
    probe_capture,
    read_capture,
    write_capture,
)
from repro.replay.faults import (
    FAULT_PROFILES,
    FaultedSource,
    FaultInjector,
    FaultPlan,
    FaultStats,
    LaneFaults,
    parse_fault_specs,
    resolve_fault_plan,
)
from repro.replay.runner import (
    DEFAULT_FILL_TIMEOUT,
    REPLAY_ENGINES,
    fill_gate_warning,
    gated_with_warning,
    replay_capture,
)
from repro.replay.scenarios import (
    GOLDEN_SEED,
    SCENARIOS,
    build_scenario,
    write_scenario,
)
from repro.replay.source import ReplaySource, replay_sources

__all__ = [
    "CaptureDecoder",
    "CaptureFrame",
    "CaptureWriter",
    "DEFAULT_FILL_TIMEOUT",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultedSource",
    "GOLDEN_SEED",
    "LaneFaults",
    "LANES",
    "LANE_DNS",
    "LANE_FLOW",
    "MAGIC",
    "MAX_FRAME_PAYLOAD",
    "REPLAY_ENGINES",
    "ReplaySource",
    "SCENARIOS",
    "build_scenario",
    "encode_frame",
    "fill_gate_warning",
    "gated_with_warning",
    "load_capture",
    "parse_fault_specs",
    "probe_capture",
    "read_capture",
    "replay_capture",
    "replay_sources",
    "resolve_fault_plan",
    "write_capture",
    "write_scenario",
]
