"""Shared experiment runners and report builders.

The benchmark harness regenerates every figure/table through these
helpers so that tests, benches, and examples all measure the same way.
Each builder returns plain data (dicts/lists) plus a ``rows()``-style
formatter that prints ``paper=<x> measured=<y>`` lines.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import FlowDNSConfig
from repro.core.lookup import CorrelationResult
from repro.core.metrics import EngineReport
from repro.core.simulation import SimulationEngine
from repro.core.variants import Variant, config_for
from repro.workloads.isp import IspWorkload


@dataclass
class VariantRun:
    """One variant's engine report plus derived summaries."""

    variant: Variant
    report: EngineReport

    @property
    def mean_correlation_rate(self) -> float:
        return self.report.correlation_rate

    @property
    def mean_cpu_percent(self) -> float:
        return self.report.mean_cpu_percent

    @property
    def mean_memory_gb(self) -> float:
        return self.report.mean_memory_gb

    @property
    def final_memory_gb(self) -> float:
        if not self.report.samples:
            return 0.0
        return self.report.samples[-1].memory_bytes / (1024.0**3)


def run_variant(
    workload: IspWorkload,
    variant: Variant,
    base_config: Optional[FlowDNSConfig] = None,
    sample_interval: float = 3600.0,
    on_result=None,
    drop_warmup: bool = True,
) -> VariantRun:
    """Run one variant over a workload with the preset's cost model."""
    config = config_for(variant, base_config)
    engine = SimulationEngine(
        config=config,
        cost_params=workload.cost_params,
        sample_interval=sample_interval,
        worker_count=workload.worker_count,
        variant_name=variant.value,
        on_result=on_result,
    )
    report = engine.run(workload.dns_records(), workload.flow_records())
    if drop_warmup:
        report = strip_warmup(report, workload.t0)
    return VariantRun(variant=variant, report=report)


def strip_warmup(report: EngineReport, t0: float) -> EngineReport:
    """Drop samples that lie (partly) in the warm-up window.

    The workload emits DNS from ``t0 - warmup`` but flows only from
    ``t0``; the warm-up samples carry no traffic and would dilute means.
    """
    kept = [s for s in report.samples if s.t_start >= t0]
    report.samples = kept
    report.total_bytes = sum(s.traffic_bytes for s in kept)
    report.correlated_bytes = sum(s.correlated_bytes for s in kept)
    report.dns_records = sum(s.dns_records for s in kept)
    report.flow_records = sum(s.flow_records for s in kept)
    return report


def run_variants(
    workload_factory,
    variants,
    sample_interval: float = 3600.0,
) -> Dict[Variant, VariantRun]:
    """Run several variants over *identical* workload replays.

    ``workload_factory`` is called once per variant so each run gets
    fresh generators with the same seed — the paper's "selectively
    remove implementation features … on a one-day traffic capture".
    """
    out: Dict[Variant, VariantRun] = {}
    for variant in variants:
        out[variant] = run_variant(workload_factory(), variant, sample_interval=sample_interval)
    return out


class ServiceBytesCollector:
    """on_result hook aggregating correlated bytes per resolved service."""

    def __init__(self) -> None:
        self.bytes_by_service: Dict[str, int] = defaultdict(int)
        self.results_seen = 0

    def __call__(self, result: CorrelationResult) -> None:
        self.results_seen += 1
        if result.matched:
            self.bytes_by_service[result.service] += result.flow.bytes_


class ResultRecorder:
    """on_result hook retaining full results (small runs only)."""

    def __init__(self) -> None:
        self.results: List[CorrelationResult] = []

    def __call__(self, result: CorrelationResult) -> None:
        self.results.append(result)


def chain_length_ecdf(report: EngineReport) -> List[Tuple[int, float]]:
    """Figure 6: (chain length, cumulative fraction) from a run's chains."""
    total = sum(report.chain_lengths.values())
    out: List[Tuple[int, float]] = []
    acc = 0
    for length in sorted(report.chain_lengths):
        acc += report.chain_lengths[length]
        out.append((length, acc / total if total else 0.0))
    return out


def comparison_row(label: str, paper, measured, unit: str = "") -> str:
    """One standard paper-vs-measured output row."""
    if isinstance(paper, float):
        paper_s = f"{paper:.3f}"
    else:
        paper_s = str(paper)
    if isinstance(measured, float):
        measured_s = f"{measured:.3f}"
    else:
        measured_s = str(measured)
    suffix = f" {unit}" if unit else ""
    return f"{label:<44s} paper={paper_s}{suffix:<6s} measured={measured_s}{suffix}"
