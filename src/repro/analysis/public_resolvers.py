"""Public-DNS-resolver coverage analysis (Section 4, "Coverage").

The paper estimates how much DNS data FlowDNS misses because clients use
public resolvers (Cloudflare, Google, Quad9, …) instead of the ISP's
default ones: filter one hour of Netflow down to DNS/DoT traffic (ports
53 and 853), test the resolver-side address against a public-resolver
list, and take the ratio — 1 in 20 packets, hence 95 % coverage.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.netflow.records import FlowRecord

#: The reproduction's public-resolver list (a stand-in for the
#: public-dns.info dataset [11] the paper uses). Contains the major
#: anycast resolvers; the workloads draw from exactly this list.
DEFAULT_PUBLIC_RESOLVERS: FrozenSet[str] = frozenset(
    {
        "1.1.1.1",
        "1.0.0.1",
        "8.8.8.8",
        "8.8.4.4",
        "9.9.9.9",
        "149.112.112.112",
        "208.67.222.222",
        "208.67.220.220",
        "94.140.14.14",
        "76.76.2.0",
    }
)

DNS_PORTS = (53, 853)


@dataclass
class CoverageReport:
    """Result of the coverage estimation."""

    dns_flows: int = 0
    public_resolver_flows: int = 0

    @property
    def public_fraction(self) -> float:
        return self.public_resolver_flows / self.dns_flows if self.dns_flows else 0.0

    @property
    def coverage(self) -> float:
        """The share of client DNS FlowDNS's resolvers actually see."""
        return 1.0 - self.public_fraction


class PublicResolverList:
    """Membership tests against a set of resolver addresses."""

    def __init__(self, addresses: Iterable[str] = DEFAULT_PUBLIC_RESOLVERS):
        self._addresses = {str(ipaddress.ip_address(a)) for a in addresses}

    def __contains__(self, address) -> bool:
        return str(ipaddress.ip_address(address)) in self._addresses

    def __len__(self) -> int:
        return len(self._addresses)


def is_dns_flow(flow: FlowRecord) -> bool:
    """Port-53/853 filter, either direction (queries and answers)."""
    return flow.dst_port in DNS_PORTS or flow.src_port in DNS_PORTS


def estimate_coverage(
    flows: Iterable[FlowRecord],
    resolvers: Optional[PublicResolverList] = None,
) -> CoverageReport:
    """Run the Section 4 coverage estimation over a flow sample.

    For client→resolver flows the resolver is the destination; for the
    return direction it is the source. Both are tested.
    """
    resolvers = resolvers if resolvers is not None else PublicResolverList()
    report = CoverageReport()
    for flow in flows:
        if not is_dns_flow(flow):
            continue
        report.dns_flows += 1
        resolver_side = flow.dst_ip if flow.dst_port in DNS_PORTS else flow.src_ip
        if resolver_side in resolvers:
            report.public_resolver_flows += 1
    return report
