"""Accuracy estimation: names-per-IP analysis (Section 4 / Appendix A.7).

FlowDNS keys its map on the IP address, so a second domain observed on
the same IP *overwrites* the first — the one mislabelling mechanism by
design. The paper bounds its impact by measuring how many IPs map to
multiple names within a 300 s window (the TTL of 70 % of records): 88 %
of IPs map to a single name, so results are exact for at least 88 % of
IPs. It also reports the converse (35 % of names map to >1 IP), which by
design does **not** hurt accuracy.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.dns.stream import DnsRecord
from repro.util.stats import Ecdf


@dataclass
class NamesPerIpReport:
    """Distribution of distinct names per IP in an observation window."""

    names_per_ip: Dict[str, int]
    ips_per_name: Dict[str, int]
    window: float

    @property
    def single_name_fraction(self) -> float:
        """Fraction of IPs with exactly one name (the paper's 88 %)."""
        if not self.names_per_ip:
            return 0.0
        singles = sum(1 for n in self.names_per_ip.values() if n == 1)
        return singles / len(self.names_per_ip)

    @property
    def multi_ip_name_fraction(self) -> float:
        """Fraction of names seen with more than one IP (the paper's 35 %)."""
        if not self.ips_per_name:
            return 0.0
        multi = sum(1 for n in self.ips_per_name.values() if n > 1)
        return multi / len(self.ips_per_name)

    def names_per_ip_ecdf(self) -> Ecdf:
        """Figure 9's ECDF."""
        return Ecdf(self.names_per_ip.values())

    @property
    def expected_accuracy_lower_bound(self) -> float:
        """The paper's argument: results are exact for the single-name IPs."""
        return self.single_name_fraction


def names_per_ip(
    records: Iterable[DnsRecord],
    window: float = 300.0,
    t_start: float = None,
) -> NamesPerIpReport:
    """Count distinct query names per answer IP within one window.

    Only address records participate (they are what the IP-NAME map
    holds). ``t_start`` defaults to the first record's timestamp; records
    outside ``[t_start, t_start + window)`` are ignored.
    """
    ip_names: Dict[str, Set[str]] = defaultdict(set)
    name_ips: Dict[str, Set[str]] = defaultdict(set)
    start = t_start
    for rec in records:
        if not rec.is_address:
            continue
        if start is None:
            start = rec.ts
        if rec.ts < start:
            continue
        if rec.ts >= start + window:
            break
        ip_names[rec.answer].add(rec.query)
        name_ips[rec.query].add(rec.answer)
    return NamesPerIpReport(
        names_per_ip={ip: len(names) for ip, names in ip_names.items()},
        ips_per_name={name: len(ips) for name, ips in name_ips.items()},
        window=window,
    )


@dataclass
class OverwriteReport:
    """Observed overwrite pressure in a running store (live counterpart
    of the names-per-IP estimate)."""

    puts: int
    overwrites: int

    @property
    def overwrite_rate(self) -> float:
        return self.overwrites / self.puts if self.puts else 0.0
