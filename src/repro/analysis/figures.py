"""Figure-data export and terminal rendering.

Each figure builder returns rows of plain tuples and can write them as
TSV — the format the paper's plotting scripts would consume — plus a
quick ASCII sparkline rendering for terminal inspection. The benches
assert on the numbers; this module makes them *visible*.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, TextIO, Tuple

from repro.core.metrics import EngineReport

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = None) -> str:
    """Render a numeric series as a unicode sparkline."""
    vals = list(values)
    if not vals:
        return ""
    if width is not None and len(vals) > width:
        # Downsample by averaging consecutive buckets.
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK[3] * len(vals)
    return "".join(_SPARK[min(7, int(8 * (v - lo) / span))] for v in vals)


def write_tsv(sink: TextIO, header: Sequence[str], rows: Iterable[Sequence]) -> int:
    """Write rows as TSV with a ``#``-prefixed header; returns row count."""
    sink.write("# " + "\t".join(header) + "\n")
    count = 0
    for row in rows:
        sink.write("\t".join(str(x) for x in row) + "\n")
        count += 1
    return count


def figure2_rows(report: EngineReport) -> List[Tuple[float, float, float, int]]:
    """(t_start, cpu_percent, memory_gb, traffic_bytes) per sample."""
    return [
        (s.t_start, s.cpu_percent, s.memory_bytes / 2**30, s.traffic_bytes)
        for s in report.samples
    ]


def figure3_rows(
    reports: Dict[str, EngineReport]
) -> List[Tuple[str, float, float, float]]:
    """(variant, t_start, cpu_percent, memory_gb) long-format rows."""
    out: List[Tuple[str, float, float, float]] = []
    for variant, report in reports.items():
        for s in report.samples:
            out.append((variant, s.t_start, s.cpu_percent, s.memory_bytes / 2**30))
    return out


def figure7_rows(reports: Dict[str, EngineReport]) -> List[Tuple[str, float, float]]:
    """(variant, t_start, correlation_rate) long-format rows."""
    out: List[Tuple[str, float, float]] = []
    for variant, report in reports.items():
        for s in report.samples:
            if s.traffic_bytes:
                out.append((variant, s.t_start, s.correlation_rate))
    return out


def ecdf_rows(points: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Pass-through for ECDF point lists (uniform writer interface)."""
    return [(float(x), float(y)) for x, y in points]


def render_report_summary(report: EngineReport, title: str = "FlowDNS run") -> str:
    """A terminal dashboard for one engine run."""
    cpu = [s.cpu_percent for s in report.samples]
    mem = [s.memory_bytes / 2**30 for s in report.samples]
    traffic = [float(s.traffic_bytes) for s in report.samples]
    corr = [s.correlation_rate for s in report.samples if s.traffic_bytes]
    lines = [
        title,
        "=" * len(title),
        f"correlation rate : {report.correlation_rate:.1%}",
        f"stream loss      : {report.overall_loss_rate:.3%}",
        f"records          : {report.dns_records:,} DNS / {report.flow_records:,} flows",
    ]
    if cpu:
        lines.append(f"CPU %    {min(cpu):7.0f}..{max(cpu):<7.0f} {sparkline(cpu, 48)}")
    if mem:
        lines.append(f"mem GiB  {min(mem):7.1f}..{max(mem):<7.1f} {sparkline(mem, 48)}")
    if traffic:
        lines.append(f"traffic  {min(traffic)/1e9:7.1f}..{max(traffic)/1e9:<7.1f} GB/h "
                     f"{sparkline(traffic, 48)}")
    if corr:
        lines.append(f"corr     {min(corr):7.1%}..{max(corr):<7.1%} {sparkline(corr, 48)}")
    return "\n".join(lines)
