"""A Spamhaus-DBL-style domain blocklist engine (Section 5, "Spam Domains").

The real DBL is a remote, rate-limited reputation service with label
expiry. This engine reproduces the *interface* the paper's analysis
needs — categorised membership lookups over sampled domain names, with
an hourly sampling budget and label expiry — against a local category
database (in the benches: the workload's synthetic abuse population, so
ground truth is known).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: The categories the paper reports, in its order.
DBL_CATEGORIES = ("spam", "botnet", "abused-redirector", "malware", "phish")


@dataclass
class DblEntry:
    """One listed domain: category plus optional label expiry."""

    category: str
    expires_at: Optional[float] = None

    def live_at(self, ts: Optional[float]) -> bool:
        """Labels disappear after expiry ("they will no longer exist in
        the dataset and therefore be labeled as benign")."""
        if self.expires_at is None or ts is None:
            return True
        return ts < self.expires_at


class DomainBlockList:
    """Category-labelled domain list with expiry-aware lookups."""

    def __init__(self, entries: Mapping[str, DblEntry] = None):
        self._entries: Dict[str, DblEntry] = dict(entries or {})
        self.queries = 0
        self.hits = 0

    @classmethod
    def from_categories(
        cls, by_category: Mapping[str, Iterable[str]], expires_at: Optional[float] = None
    ) -> "DomainBlockList":
        entries: Dict[str, DblEntry] = {}
        for category, names in by_category.items():
            if category not in DBL_CATEGORIES:
                continue  # mal-formatted etc. are not DBL material
            for name in names:
                entries[name.lower().rstrip(".")] = DblEntry(category, expires_at)
        return cls(entries)

    def add(self, name: str, category: str, expires_at: Optional[float] = None) -> None:
        self._entries[name.lower().rstrip(".")] = DblEntry(category, expires_at)

    def classify(self, name: str, ts: Optional[float] = None) -> Optional[str]:
        """The domain's category, or None when unlisted/expired."""
        self.queries += 1
        entry = self._entries.get(name.lower().rstrip("."))
        if entry is None or not entry.live_at(ts):
            return None
        self.hits += 1
        return entry.category

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class AbuseTrafficReport:
    """Section 5's per-category traffic aggregation (Figure 5's data)."""

    #: category → {domain → bytes}
    bytes_by_domain: Dict[str, Dict[str, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    sampled_names: int = 0
    suspicious_names: int = 0
    total_bytes: int = 0

    def category_counts(self) -> Dict[str, int]:
        return {cat: len(domains) for cat, domains in self.bytes_by_domain.items()}

    def category_bytes(self) -> Dict[str, int]:
        return {
            cat: sum(domains.values()) for cat, domains in self.bytes_by_domain.items()
        }

    def abuse_byte_share(self) -> float:
        """Fraction of total traffic from listed domains."""
        abuse = sum(self.category_bytes().values())
        return abuse / self.total_bytes if self.total_bytes else 0.0

    def cumulative_curve(self, category: str) -> List[Tuple[int, float]]:
        """Figure 5's curve: (#domains, cumulative byte fraction).

        Domains sorted by contribution; the paper's observation is that
        "only a limited number of domain names account for a large
        fraction of the traffic".
        """
        domains = self.bytes_by_domain.get(category, {})
        total = sum(domains.values())
        out: List[Tuple[int, float]] = []
        acc = 0
        for i, (_name, nbytes) in enumerate(
            sorted(domains.items(), key=lambda kv: kv[1], reverse=True), start=1
        ):
            acc += nbytes
            out.append((i, acc / total if total else 0.0))
        return out


def analyze_abuse_traffic(
    service_bytes: Mapping[str, int],
    dbl: DomainBlockList,
    sample_limit: Optional[int] = None,
    ts: Optional[float] = None,
) -> AbuseTrafficReport:
    """Check correlated domains against the DBL and aggregate bytes.

    ``service_bytes`` maps each correlated domain name to its byte count
    for the period (one day in the paper). ``sample_limit`` models the
    paper's once-an-hour sampling to respect the DBL bandwidth limits —
    names beyond the limit (by descending traffic) are not queried.
    """
    report = AbuseTrafficReport()
    report.total_bytes = sum(service_bytes.values())
    items = sorted(service_bytes.items(), key=lambda kv: kv[1], reverse=True)
    if sample_limit is not None:
        items = items[:sample_limit]
    report.sampled_names = len(items)
    for name, nbytes in items:
        category = dbl.classify(name, ts)
        if category is not None:
            report.suspicious_names += 1
            report.bytes_by_domain[category][name] += nbytes
    return report
