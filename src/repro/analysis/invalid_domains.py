"""Invalid (RFC 1035-violating) domain-name traffic analysis (Section 5).

The paper's findings this module reproduces:

* 666k of 39M daily names violate at least one rule (≈1.7 %);
* the underscore is the offending character in 87 % of them;
* malformed + spam domains carry ≈0.5 % of daily bytes;
* 2.7 % of clients receiving malformed-domain traffic answer back, to
  23.6 % of those domains, accounting for 1.9 % of packets — mostly on
  non-web ports (OpenVPN, Kerberos).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.lookup import CorrelationResult
from repro.dns.validation import check_domain, offending_characters

NON_WEB_PORTS = {1194: "openvpn", 88: "kerberos"}


@dataclass
class InvalidDomainReport:
    """Aggregates for the invalid-domain analysis."""

    names_seen: int = 0
    invalid_names: int = 0
    bytes_total: int = 0
    bytes_invalid: int = 0
    #: invalid names whose offending characters include '_'.
    underscore_names: int = 0
    char_counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_invalid_domain: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: clients that received malformed-domain traffic / replied to it
    receiving_clients: Set[str] = field(default_factory=set)
    replying_clients: Set[str] = field(default_factory=set)
    replied_domains: Set[str] = field(default_factory=set)
    packets_total: int = 0
    packets_bidirectional: int = 0
    reply_ports: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def invalid_name_fraction(self) -> float:
        return self.invalid_names / self.names_seen if self.names_seen else 0.0

    @property
    def invalid_byte_share(self) -> float:
        return self.bytes_invalid / self.bytes_total if self.bytes_total else 0.0

    @property
    def underscore_share(self) -> float:
        """Fraction of invalid names whose offending char set includes '_'
        (the paper's "found in 87% of the malformatted domains")."""
        return self.underscore_names / self.invalid_names if self.invalid_names else 0.0

    @property
    def replying_client_fraction(self) -> float:
        if not self.receiving_clients:
            return 0.0
        return len(self.replying_clients) / len(self.receiving_clients)

    @property
    def replied_domain_fraction(self) -> float:
        if not self.replied_domains:
            return 0.0
        domains = {d for d in self.bytes_by_invalid_domain}
        return len(self.replied_domains) / len(domains) if domains else 0.0

    @property
    def bidirectional_packet_fraction(self) -> float:
        if not self.packets_total:
            return 0.0
        return self.packets_bidirectional / self.packets_total

    def cumulative_curve(self) -> List[Tuple[int, float]]:
        """Figure 5's mal-formatted panel: (#domains, cum. byte share)."""
        total = sum(self.bytes_by_invalid_domain.values())
        out: List[Tuple[int, float]] = []
        acc = 0
        ranked = sorted(
            self.bytes_by_invalid_domain.items(), key=lambda kv: kv[1], reverse=True
        )
        for i, (_name, nbytes) in enumerate(ranked, start=1):
            acc += nbytes
            out.append((i, acc / total if total else 0.0))
        return out


def analyze_invalid_domains(results: Iterable[CorrelationResult]) -> InvalidDomainReport:
    """Scan correlated output for RFC 1035 violations and reply traffic.

    A result whose resolved service name violates any of the three rules
    counts as malformed-domain traffic. Reply traffic is recognised as
    flows *from* a client that previously received malformed traffic
    back *to* the malformed source.
    """
    report = InvalidDomainReport()
    seen_names: Set[str] = set()
    invalid_names: Set[str] = set()
    # (client, server) pairs of malformed-domain downloads, for reply
    # matching; server ip → domain for attribution.
    malformed_pairs: Set[Tuple[str, str]] = set()
    server_domain: Dict[str, str] = {}

    for result in results:
        flow = result.flow
        report.bytes_total += flow.bytes_
        report.packets_total += flow.packets
        # Reply direction: src is a client that earlier received
        # malformed-domain traffic from this dst.
        if (str(flow.src_ip), str(flow.dst_ip)) in malformed_pairs:
            report.replying_clients.add(str(flow.src_ip))
            domain = server_domain.get(str(flow.dst_ip))
            if domain is not None:
                report.replied_domains.add(domain)
            report.packets_bidirectional += flow.packets
            port_name = NON_WEB_PORTS.get(flow.dst_port, f"port-{flow.dst_port}")
            report.reply_ports[port_name] += 1
            continue
        if not result.matched:
            continue
        name = result.service
        if name not in seen_names:
            seen_names.add(name)
            report.names_seen += 1
            violations = check_domain(name)
            if violations:
                invalid_names.add(name)
                report.invalid_names += 1
                chars = offending_characters(name)
                if "_" in chars:
                    report.underscore_names += 1
                for ch in chars:
                    report.char_counts[ch] += 1
        if name in invalid_names:
            report.bytes_invalid += flow.bytes_
            report.bytes_by_invalid_domain[name] += flow.bytes_
            report.receiving_clients.add(str(flow.dst_ip))
            malformed_pairs.add((str(flow.dst_ip), str(flow.src_ip)))
            server_domain[str(flow.src_ip)] = name
    return report
