"""Analysis layer: the paper's Section 4/5 measurements over FlowDNS output.

* :mod:`repro.analysis.spamdbl` — DBL-style blocklist joins (Figure 5);
* :mod:`repro.analysis.public_resolvers` — the 95 % coverage estimate;
* :mod:`repro.analysis.invalid_domains` — RFC 1035 violator traffic;
* :mod:`repro.analysis.accuracy` — names-per-IP / mislabelling bounds
  (Figure 9, Appendix A.7);
* :mod:`repro.analysis.reports` — shared experiment runners for the
  benchmark harness.
"""

from repro.analysis.accuracy import NamesPerIpReport, OverwriteReport, names_per_ip
from repro.analysis.figures import (
    figure2_rows,
    figure3_rows,
    figure7_rows,
    render_report_summary,
    sparkline,
    write_tsv,
)
from repro.analysis.invalid_domains import InvalidDomainReport, analyze_invalid_domains
from repro.analysis.public_resolvers import (
    DEFAULT_PUBLIC_RESOLVERS,
    CoverageReport,
    PublicResolverList,
    estimate_coverage,
    is_dns_flow,
)
from repro.analysis.reports import (
    ResultRecorder,
    ServiceBytesCollector,
    VariantRun,
    chain_length_ecdf,
    comparison_row,
    run_variant,
    run_variants,
    strip_warmup,
)
from repro.analysis.spamdbl import (
    DBL_CATEGORIES,
    AbuseTrafficReport,
    DblEntry,
    DomainBlockList,
    analyze_abuse_traffic,
)

__all__ = [
    "names_per_ip",
    "NamesPerIpReport",
    "OverwriteReport",
    "analyze_invalid_domains",
    "InvalidDomainReport",
    "estimate_coverage",
    "is_dns_flow",
    "CoverageReport",
    "PublicResolverList",
    "DEFAULT_PUBLIC_RESOLVERS",
    "run_variant",
    "run_variants",
    "strip_warmup",
    "VariantRun",
    "ServiceBytesCollector",
    "ResultRecorder",
    "chain_length_ecdf",
    "comparison_row",
    "DomainBlockList",
    "DblEntry",
    "analyze_abuse_traffic",
    "AbuseTrafficReport",
    "DBL_CATEGORIES",
    "figure2_rows",
    "figure3_rows",
    "figure7_rows",
    "render_report_summary",
    "sparkline",
    "write_tsv",
]
