"""Differential tests: the columnar flow path vs the per-record reference.

PR 3's parity contract: for any flow population the pipeline can see,
``correlate_batch_columns`` over a :class:`FlowBatch` must produce the
same chains, the same :class:`LookUpStats`, and (when materialised) the
same records — including ``FlowRecord.extra``, which is ``compare=False``
and therefore asserted explicitly — as ``correlate_batch`` over the
equivalent ``FlowRecord`` list. Randomization (hypothesis) covers
IPv4+IPv6 pools, SOURCE/DESTINATION/BOTH directions, CNAME chains,
invalid counters, per-flow extras, and the exact-TTL per-record
fallback. The decoders' columnar twins are pinned against the object
decoders over randomized flows for all three wire formats, and the
engines' columnar lanes (including ShardedEngine's flat-column IPC) are
pinned against each other on a mixed-item corpus.
"""

import io
import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine, gated_flow_source
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.sharded import ShardedEngine
from repro.core.storage_adapter import DnsStorage
from repro.core.writer import format_batch, format_result
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowBatch, FlowDirection, FlowRecord
from repro.netflow.v5 import decode_v5, decode_v5_columns, encode_v5
from repro.netflow.v9 import (
    STANDARD_V4_TEMPLATE,
    STANDARD_V6_TEMPLATE,
    V9Session,
    encode_v9_data,
    encode_v9_template,
)
from repro.netflow.ipfix import (
    IPFIX_V4_TEMPLATE,
    IpfixSession,
    encode_ipfix_data,
    encode_ipfix_template,
)
from repro.util.interning import cached_ip_address

# ---------------------------------------------------------------------------
# Fixed pools the strategies index into: canonical-text addresses (half of
# them covered by DNS answers), names wired into CNAME chains of varying
# depth, and a couple of addresses the map never holds.
# ---------------------------------------------------------------------------

_V4_POOL = [f"198.51.100.{i}" for i in range(1, 9)]
_V6_POOL = [str(ipaddress.IPv6Address(f"2001:db8::{i:x}")) for i in range(1, 9)]
_POOL = _V4_POOL + _V6_POOL


def _dns_corpus():
    """A/AAAA answers for half the pool + CNAME chains of depth 0–3."""
    records = []
    for i, ip in enumerate(_POOL):
        if i % 2:
            continue  # half the pool stays unmatched
        rtype = RRType.AAAA if ":" in ip else RRType.A
        records.append(DnsRecord(1000.0 + i, f"svc{i}.example", rtype, 300, ip))
        for hop in range(i % 4):
            records.append(
                DnsRecord(
                    1000.0 + i,
                    f"svc{i}.example" if hop == 0 else f"hop{hop}.svc{i}.example",
                    RRType.CNAME,
                    300,
                    f"hop{hop + 1}.svc{i}.example",
                )
            )
    return records


@st.composite
def _rows(draw):
    """One flow as a plain field tuple (the two paths build from this)."""
    src = draw(st.sampled_from(_POOL + ["203.0.113.250", "2001:db8:dead::1"]))
    dst = draw(st.sampled_from(_POOL + ["203.0.113.251"]))
    extra = draw(
        st.one_of(
            st.just(None),
            st.dictionaries(st.sampled_from(["tos", "src_as"]),
                            st.integers(min_value=0, max_value=255), max_size=2),
        )
    )
    return (
        1000.0 + draw(st.integers(min_value=0, max_value=400)),  # ts
        src,
        dst,
        draw(st.integers(min_value=0, max_value=65535)),  # src_port
        draw(st.integers(min_value=0, max_value=65535)),  # dst_port
        draw(st.sampled_from([6, 17])),  # protocol
        draw(st.integers(min_value=-1, max_value=50)),  # packets (-1 = invalid)
        draw(st.integers(min_value=-1, max_value=9000)),  # bytes_ (-1 = invalid)
        extra,
    )


def _record_from_row(row) -> FlowRecord:
    """Build the reference FlowRecord, bypassing validation like the
    compiled decoders do so deliberately-invalid counters can exist."""
    ts, src, dst, sp, dp, proto, packets, bytes_, extra = row
    rec = object.__new__(FlowRecord)
    rec.__dict__.update(
        ts=ts,
        src_ip=cached_ip_address(src),
        dst_ip=cached_ip_address(dst),
        src_port=sp,
        dst_port=dp,
        protocol=proto,
        packets=packets,
        bytes_=bytes_,
        extra=dict(extra) if extra else {},
    )
    return rec


def _batch_from_rows(rows) -> FlowBatch:
    batch = FlowBatch()
    for ts, src, dst, sp, dp, proto, packets, bytes_, extra in rows:
        batch.append_row(ts, src, dst, sp, dp, proto, packets, bytes_,
                         dict(extra) if extra else None)
    return batch


def _filled_storage(config: FlowDNSConfig) -> DnsStorage:
    storage = DnsStorage(config)
    fillup = FillUpProcessor(storage)
    records = _dns_corpus()
    if config.exact_ttl:
        for record in records:
            fillup.process(record)
            storage.tick(record.ts)
    else:
        fillup.process_batch(records)
    return storage


@given(
    rows=st.lists(_rows(), min_size=0, max_size=14),
    direction=st.sampled_from(list(FlowDirection)),
    exact_ttl=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_correlate_batch_columns_matches_reference(rows, direction, exact_ttl):
    config = FlowDNSConfig(direction=direction, exact_ttl=exact_ttl)
    # Two identically-filled storages: chain-walk memoisation writes back
    # into storage, so sharing one would let the first run distort the
    # second's counters.
    ref_storage = _filled_storage(config)
    col_storage = _filled_storage(config)

    reference = LookUpProcessor(ref_storage, config)
    results = reference.correlate_batch([_record_from_row(r) for r in rows])

    columnar = LookUpProcessor(col_storage, config)
    correlated = columnar.correlate_batch_columns(_batch_from_rows(rows))

    # Same chains, row for row; same matched mask.
    assert correlated.chains == [r.chain for r in results]
    assert correlated.matched_mask() == [r.matched for r in results]

    # Same counters — LookUpStats is a dataclass, so this compares every
    # field including the chain-length histogram.
    assert columnar.stats == reference.stats

    # The batch's stats deltas agree with the (fresh) processor counters.
    assert correlated.matched == columnar.stats.matched
    assert correlated.invalid == columnar.stats.invalid
    assert correlated.bytes_in == columnar.stats.bytes_in
    assert correlated.bytes_matched == columnar.stats.bytes_matched

    # Materialised results are parity-identical, including extra
    # (compare=False on the dataclass, so == alone would not see it).
    materialised = correlated.results()
    assert len(materialised) == len(results)
    for ours, ref in zip(materialised, results):
        assert ours.flow == ref.flow
        assert ours.flow.extra == ref.flow.extra
        assert ours.ts == ref.ts
        assert ours.chain == ref.chain

    # results(only_matched=True) is exactly the matched subset.
    assert [r.chain for r in correlated.results(only_matched=True)] == [
        r.chain for r in results if r.matched
    ]

    # The columnar write path formats the same rows the object path would.
    assert format_batch(correlated) == [format_result(r) for r in results]


# ---------------------------------------------------------------------------
# Decoder twins over randomized flows, all three wire formats.
# ---------------------------------------------------------------------------

_flow_fields = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),  # src ip int
    st.integers(min_value=0, max_value=2**32 - 1),  # dst ip int
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)


def _flows_from_fields(fields, v6=False):
    flows = []
    for i, (src, dst, sp, dp, proto, packets, bytes_) in enumerate(fields):
        flows.append(
            FlowRecord(
                ts=1000.0 + i,
                src_ip=str(ipaddress.IPv6Address(src) if v6 else ipaddress.IPv4Address(src)),
                dst_ip=str(ipaddress.IPv6Address(dst) if v6 else ipaddress.IPv4Address(dst)),
                src_port=sp,
                dst_port=dp,
                protocol=proto,
                packets=packets,
                bytes_=bytes_,
            )
        )
    return flows


def _assert_record_parity(objects, batch):
    materialised = batch.to_records()
    assert materialised == objects
    for ours, ref in zip(materialised, objects):
        assert ours.ts == ref.ts
        assert ours.extra == ref.extra


@given(fields=st.lists(_flow_fields, min_size=0, max_size=6), v6=st.booleans())
@settings(max_examples=60, deadline=None)
def test_v9_columns_match_object_decode(fields, v6):
    template = STANDARD_V6_TEMPLATE if v6 else STANDARD_V4_TEMPLATE
    flows = _flows_from_fields(fields, v6)
    session = V9Session()
    session.decode(encode_v9_template([template], unix_secs=1000))
    datagram = encode_v9_data(template, flows, unix_secs=1000, sequence=1)
    _assert_record_parity(session.decode(datagram),
                          session.decode_batch_columns(datagram))


@given(fields=st.lists(_flow_fields, min_size=0, max_size=6))
@settings(max_examples=60, deadline=None)
def test_ipfix_columns_match_object_decode(fields):
    flows = _flows_from_fields(fields)
    session = IpfixSession()
    session.decode(encode_ipfix_template([IPFIX_V4_TEMPLATE], export_secs=1000))
    message = encode_ipfix_data(IPFIX_V4_TEMPLATE, flows, export_secs=1000, sequence=1)
    _assert_record_parity(session.decode(message),
                          session.decode_batch_columns(message))


@given(fields=st.lists(_flow_fields, min_size=0, max_size=6))
@settings(max_examples=60, deadline=None)
def test_v5_columns_match_object_decode(fields):
    flows = _flows_from_fields(fields)
    datagram = encode_v5(flows, unix_secs=1000, sys_uptime_ms=0)
    ref_header, objects = decode_v5(datagram)
    col_header, batch = decode_v5_columns(datagram)
    assert col_header == ref_header
    _assert_record_parity(objects, batch)


def test_template_refresh_invalidates_columnar_decoder_cache():
    """Regression: a re-announced template must recompile the columnar twin.

    On a ``use_compiled=False`` session only ``decode_batch_columns``
    populates the compiled-decoder cache (lazily); re-learning a template
    id with a different layout used to leave that cache serving the old
    struct, silently garbling every later columnar decode.
    """
    from repro.netflow.v9 import (
        IN_BYTES,
        IN_PKTS,
        IPV4_DST_ADDR,
        IPV4_SRC_ADDR,
        L4_DST_PORT,
        L4_SRC_PORT,
        LAST_SWITCHED,
        PROTOCOL,
        TemplateField,
        TemplateRecord,
    )

    flows = _flows_from_fields([(0x0A000001, 0x0A000002, 443, 5000, 6, 3, 900)])
    layout_a = STANDARD_V4_TEMPLATE
    # Same template id, different field order: decoding a layout-B
    # payload with layout-A's struct cannot give the same records.
    layout_b = TemplateRecord(
        template_id=layout_a.template_id,
        fields=(
            TemplateField(IN_BYTES, 4),
            TemplateField(IPV4_DST_ADDR, 4),
            TemplateField(IPV4_SRC_ADDR, 4),
            TemplateField(L4_DST_PORT, 2),
            TemplateField(L4_SRC_PORT, 2),
            TemplateField(PROTOCOL, 1),
            TemplateField(IN_PKTS, 4),
            TemplateField(LAST_SWITCHED, 4),
        ),
    )
    for use_compiled in (False, True):
        session = V9Session(use_compiled=use_compiled)
        session.decode(encode_v9_template([layout_a], unix_secs=1000))
        datagram_a = encode_v9_data(layout_a, flows, unix_secs=1000, sequence=1)
        _assert_record_parity(session.decode(datagram_a),
                              session.decode_batch_columns(datagram_a))
        session.decode(encode_v9_template([layout_b], unix_secs=1000))
        datagram_b = encode_v9_data(layout_b, flows, unix_secs=1000, sequence=2)
        objects = session.decode(datagram_b)
        assert objects == flows  # the refresh itself decoded correctly
        _assert_record_parity(objects, session.decode_batch_columns(datagram_b))


def test_ipfix_template_refresh_invalidates_columnar_decoder_cache():
    from repro.netflow.v9 import (
        IN_BYTES,
        IN_PKTS,
        IPV4_DST_ADDR,
        IPV4_SRC_ADDR,
        TemplateField,
        TemplateRecord,
    )
    from repro.netflow.ipfix import FLOW_END_MILLISECONDS

    flows = _flows_from_fields([(0x0A000001, 0x0A000002, 443, 5000, 6, 3, 900)])
    layout_a = IPFIX_V4_TEMPLATE
    layout_b = TemplateRecord(
        template_id=layout_a.template_id,
        fields=(
            TemplateField(IN_BYTES, 8),
            TemplateField(IPV4_DST_ADDR, 4),
            TemplateField(IPV4_SRC_ADDR, 4),
            TemplateField(IN_PKTS, 4),
            TemplateField(FLOW_END_MILLISECONDS, 8),
        ),
    )
    session = IpfixSession(use_compiled=False)
    session.decode(encode_ipfix_template([layout_a], export_secs=1000))
    message_a = encode_ipfix_data(layout_a, flows, export_secs=1000, sequence=1)
    _assert_record_parity(session.decode(message_a),
                          session.decode_batch_columns(message_a))
    session.decode(encode_ipfix_template([layout_b], export_secs=1000))
    message_b = encode_ipfix_data(layout_b, flows, export_secs=1000, sequence=2)
    _assert_record_parity(session.decode(message_b),
                          session.decode_batch_columns(message_b))


# ---------------------------------------------------------------------------
# Engine lanes: ShardedEngine's flat-column IPC vs ThreadedEngine, mixed
# stream item types (records, whole batches, raw datagrams).
# ---------------------------------------------------------------------------

def test_sharded_columnar_ipc_matches_threaded():
    dns = [
        DnsRecord(float(i), f"svc{i % 40}.example", RRType.A, 300, f"10.0.{i % 40}.5")
        for i in range(120)
    ]
    flows = [
        FlowRecord(ts=float(i), src_ip=f"10.0.{i % 40}.5", dst_ip="100.64.0.1",
                   bytes_=1400 + i)
        for i in range(400)
    ]
    prebatched = FlowBatch.from_records(
        [FlowRecord(ts=500.0 + i, src_ip=f"10.0.{i % 40}.5", dst_ip="100.64.0.2",
                    bytes_=900) for i in range(50)]
    )
    session_flows = [
        FlowRecord(ts=600.0 + i, src_ip=f"10.0.{i % 13}.5", dst_ip="203.0.113.9",
                   src_port=443, dst_port=50000 + i, protocol=6, packets=2,
                   bytes_=700 + i)
        for i in range(30)
    ]
    v9_template = encode_v9_template([STANDARD_V4_TEMPLATE], unix_secs=0)
    v9_data = encode_v9_data(STANDARD_V4_TEMPLATE, session_flows, unix_secs=0, sequence=7)
    v5_data = encode_v5(session_flows, unix_secs=600, sys_uptime_ms=0)

    def flow_items():
        return list(flows) + [prebatched, v9_template, v9_data, v5_data]

    threaded_sink = io.StringIO()
    threaded = ThreadedEngine(FlowDNSConfig(), sink=threaded_sink)
    threaded_report = threaded.run(
        [list(dns)], [gated_flow_source(threaded, flow_items())]
    )

    sharded_sink = io.StringIO()
    sharded = ShardedEngine(FlowDNSConfig(), sink=sharded_sink, num_shards=2)
    sharded_report = sharded.run([list(dns)], [flow_items()], dns_first=True)

    expected_flows = len(flows) + len(prebatched) + 2 * len(session_flows)
    assert threaded_report.flow_records == expected_flows
    assert sharded_report.flow_records == expected_flows
    assert sharded_report.matched_flows == threaded_report.matched_flows
    assert sharded_report.total_bytes == threaded_report.total_bytes
    assert sharded_report.correlated_bytes == threaded_report.correlated_bytes
    assert sharded_report.chain_lengths == threaded_report.chain_lengths
    assert sharded_report.dns_records == threaded_report.dns_records
    assert threaded_report.flow_lane == sharded_report.flow_lane == "columnar"

    def rows(sink):
        return sorted(line for line in sink.getvalue().splitlines()
                      if line and not line.startswith("#"))

    assert rows(threaded_sink) == rows(sharded_sink)
