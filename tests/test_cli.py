"""Tests for the flowdns CLI."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def mapping_file(tmp_path):
    config = {
        "dns": {
            "ts": "ts",
            "query": "qname",
            "rtype": "rtype",
            "ttl": "ttl",
            "answer": "answer",
        },
        "flow": {
            "ts": "ts",
            "src_ip": "src",
            "dst_ip": "dst",
            "bytes": {"field": "bytes", "default": 0},
        },
    }
    path = tmp_path / "mapping.json"
    path.write_text(json.dumps(config))
    return str(path)


@pytest.fixture()
def csv_inputs(tmp_path):
    dns = tmp_path / "dns.csv"
    dns.write_text(
        "ts,qname,rtype,ttl,answer\n"
        "1.0,svc.example,CNAME,600,edge.cdn.net\n"
        "1.0,edge.cdn.net,A,60,10.1.1.1\n"
        "2.0,plain.example,A,120,10.2.2.2\n"
    )
    flows = tmp_path / "flows.csv"
    flows.write_text(
        "ts,src,dst,bytes\n"
        "10.0,10.1.1.1,100.64.0.1,1000\n"
        "11.0,10.2.2.2,100.64.0.2,600\n"
        "12.0,172.16.0.1,100.64.0.3,400\n"
    )
    return str(dns), str(flows)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--hours", "1"],
            ["ablation", "--hours", "1"],
            ["analyze", "out.tsv"],
            ["mapping-template"],
            ["serve", "--duration", "1", "--flow-port", "0", "--dns-port", "0"],
        ],
    )
    def test_known_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_serve_bind_conflict_fails_fast(self, capsys):
        """A port already in use must exit with an error, not hang the
        address-poll loop forever."""
        import socket

        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main([
                "serve", "--duration", "5", "--flow-port", "0",
                "--dns-port", str(port),
            ])
        assert rc == 2
        assert "failed to bind" in capsys.readouterr().err

    def test_serve_bounded_duration_runs(self, tmp_path, capsys):
        """`flowdns serve` binds ephemeral sockets, serves for the bounded
        duration, drains, and reports."""
        output = tmp_path / "live.tsv"
        rc = main([
            "serve", "--duration", "0.3", "--flow-port", "0",
            "--dns-port", "0", "--output", str(output),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "NetFlow/IPFIX (UDP)" in err
        assert "flows correlated" in err
        assert output.read_text().startswith("#")


class TestMappingTemplate:
    def test_template_is_valid_config(self, capsys):
        assert main(["mapping-template"]) == 0
        printed = capsys.readouterr().out
        config = json.loads(printed)
        from repro.core.adapter import load_mapping

        dns, flow = load_mapping(config)
        assert dns is not None and flow is not None


class TestCorrelate:
    def test_correlate_csv_files(self, mapping_file, csv_inputs, tmp_path, capsys):
        dns, flows = csv_inputs
        output = tmp_path / "out.tsv"
        rc = main([
            "correlate", "--dns", dns, "--flows", flows,
            "--mapping", mapping_file, "--output", str(output),
        ])
        assert rc == 0
        lines = [line for line in output.read_text().splitlines() if not line.startswith("#")]
        assert len(lines) == 3
        assert any("svc.example" in line for line in lines)
        stderr = capsys.readouterr().err
        assert "correlated 2/3 flows" in stderr

    def test_correlate_jsonl(self, mapping_file, tmp_path, capsys):
        dns = tmp_path / "dns.jsonl"
        dns.write_text(
            '{"ts": 1.0, "qname": "a.example", "rtype": "A", "ttl": 60, "answer": "10.5.5.5"}\n'
        )
        flows = tmp_path / "flows.jsonl"
        flows.write_text('{"ts": 5.0, "src": "10.5.5.5", "dst": "100.64.0.1", "bytes": 42}\n')
        output = tmp_path / "out.tsv"
        rc = main([
            "correlate", "--dns", str(dns), "--flows", str(flows),
            "--mapping", mapping_file, "--output", str(output),
        ])
        assert rc == 0
        assert "a.example" in output.read_text()

    @pytest.mark.parametrize("engine", ["threaded", "sharded", "async"])
    def test_correlate_live_engines(self, mapping_file, csv_inputs, tmp_path,
                                    capsys, engine):
        dns, flows = csv_inputs
        output = tmp_path / "out.tsv"
        # --shards is sharded-only (EngineConfig.from_args rejects it
        # elsewhere; see TestReplayFlagValidation-style checks below).
        extra = ["--shards", "2"] if engine == "sharded" else []
        rc = main([
            "correlate", "--dns", dns, "--flows", flows,
            "--mapping", mapping_file, "--output", str(output),
            "--engine", engine, *extra,
        ])
        assert rc == 0
        lines = [line for line in output.read_text().splitlines()
                 if not line.startswith("#")]
        assert len(lines) == 3
        assert any("svc.example" in line for line in lines)
        assert "correlated 2/3 flows" in capsys.readouterr().err

    def test_correlate_rejects_unknown_engine(self, mapping_file, csv_inputs):
        dns, flows = csv_inputs
        with pytest.raises(SystemExit):
            main([
                "correlate", "--dns", dns, "--flows", flows,
                "--mapping", mapping_file, "--engine", "warp",
            ])

    def test_mapping_without_flow_section_fails(self, tmp_path, csv_inputs, capsys):
        dns, flows = csv_inputs
        mapping = tmp_path / "partial.json"
        mapping.write_text(json.dumps({
            "dns": {"ts": "ts", "query": "qname", "rtype": "rtype",
                    "ttl": "ttl", "answer": "answer"},
        }))
        rc = main([
            "correlate", "--dns", dns, "--flows", flows, "--mapping", str(mapping),
        ])
        assert rc == 2


class TestAnalyze:
    def test_analyze_output_file(self, mapping_file, csv_inputs, tmp_path, capsys):
        dns, flows = csv_inputs
        output = tmp_path / "out.tsv"
        main(["correlate", "--dns", dns, "--flows", flows,
              "--mapping", mapping_file, "--output", str(output)])
        capsys.readouterr()
        rc = main(["analyze", str(output), "--top", "5"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "correlation rate" in printed
        assert "svc.example" in printed

    def test_analyze_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.tsv"
        empty.write_text("# header only\n")
        assert main(["analyze", str(empty)]) == 1


class TestSimulate:
    def test_simulate_small_run(self, tmp_path, capsys):
        output = tmp_path / "run.tsv"
        rc = main([
            "simulate", "--preset", "small", "--hours", "0.3",
            "--seed", "3", "--output", str(output),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "correlation rate" in printed
        assert output.exists()

    def test_simulate_variant(self, capsys):
        rc = main([
            "simulate", "--preset", "small", "--hours", "0.2",
            "--variant", "no-rotation",
        ])
        assert rc == 0
        assert "no-rotation" in capsys.readouterr().out

    def test_simulate_dashboard_and_metrics(self, capsys):
        rc = main([
            "simulate", "--preset", "small", "--hours", "0.2",
            "--dashboard", "--metrics",
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "small ISP / main" in printed
        assert "flowdns_correlation_rate" in printed


class TestFigures:
    def test_figures_writes_tsvs(self, tmp_path, capsys, monkeypatch):
        # Patch the preset to a tiny universe so the run stays fast.
        import repro.cli as cli
        from repro.workloads.isp import large_isp as real_large

        def tiny_large(seed=7, duration=3600.0, **kw):
            kw.setdefault("n_benign", 120)
            return real_large(seed=seed, duration=min(duration, 1800.0), **kw)

        monkeypatch.setattr(cli, "large_isp", tiny_large)
        rc = main(["figures", "--out-dir", str(tmp_path), "--hours", "0.4"])
        assert rc == 0
        for name in ("fig2_week_usage.tsv", "fig3_variant_usage.tsv",
                     "fig7_variant_correlation.tsv"):
            content = (tmp_path / name).read_text()
            assert content.startswith("#")
            assert len(content.splitlines()) > 1


class TestCaptureReplay:
    def _rows(self, path):
        return sorted(line for line in path.read_text().splitlines()
                      if not line.startswith("#"))

    def test_capture_scenario_then_replay(self, tmp_path, capsys):
        capture = tmp_path / "two-site.fdc"
        rc = main(["capture", str(capture), "--scenario", "two-site"])
        assert rc == 0
        assert "scenario 'two-site'" in capsys.readouterr().err
        from repro.replay import load_capture

        assert len(load_capture(str(capture))) > 0

        output = tmp_path / "replayed.tsv"
        rc = main(["replay", str(capture), "--engine", "async",
                   "--output", str(output)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "replayed" in err and "engine=async" in err
        assert self._rows(output)

    def test_replay_engines_agree_via_cli(self, tmp_path):
        """The differential contract holds end-to-end through the CLI."""
        capture = tmp_path / "churn.fdc"
        assert main(["capture", str(capture), "--scenario", "cname-churn"]) == 0
        outputs = {}
        for engine, extra in (("threaded", []), ("sharded", ["--shards", "2"])):
            output = tmp_path / f"{engine}.tsv"
            rc = main(["replay", str(capture), "--engine", engine,
                       "--output", str(output), *extra])
            assert rc == 0
            outputs[engine] = self._rows(output)
        assert outputs["threaded"] == outputs["sharded"]

    def test_replay_exact_ttl_variant(self, tmp_path, capsys):
        capture = tmp_path / "ttl.fdc"
        assert main(["capture", str(capture), "--scenario", "ttl-expiry"]) == 0
        capsys.readouterr()
        assert main(["replay", str(capture), "--exact-ttl",
                     "--output", str(tmp_path / "t.tsv")]) == 0
        assert "flows correlated" in capsys.readouterr().err

    def test_replay_rejects_unknown_engine(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "x.fdc", "--engine", "warp"])

    def test_capture_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["capture", "x.fdc", "--scenario", "nope"])

    def test_replay_missing_capture_fails_cleanly(self, tmp_path, capsys):
        """A bad capture path exits 2 with a message — it must neither
        hang the engine nor truncate an existing --output file."""
        output = tmp_path / "results.tsv"
        output.write_text("precious previous results\n")
        rc = main(["replay", str(tmp_path / "missing.fdc"),
                   "--output", str(output)])
        assert rc == 2
        assert "cannot replay" in capsys.readouterr().err
        assert output.read_text() == "precious previous results\n"

    def test_replay_non_capture_file_fails_cleanly(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.fdc"
        bogus.write_bytes(b"not a capture at all")
        rc = main(["replay", str(bogus), "--output",
                   str(tmp_path / "out.tsv")])
        assert rc == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_replay_bad_speed_rejected_before_sink_opens(self, tmp_path, capsys):
        capture = tmp_path / "ok.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        output = tmp_path / "results.tsv"
        output.write_text("keep me\n")
        rc = main(["replay", str(capture), "--realtime", "--speed", "-1",
                   "--output", str(output)])
        assert rc == 2
        assert "--speed" in capsys.readouterr().err
        assert output.read_text() == "keep me\n"

    def test_capture_rejects_mixed_mode_flags(self, tmp_path, capsys):
        """Flags belonging to the other capture mode error out instead of
        being silently ignored."""
        rc = main(["capture", str(tmp_path / "s.fdc"), "--scenario", "bursts",
                   "--duration", "5"])
        assert rc == 2
        assert "--scenario" in capsys.readouterr().err
        # Presence-based: even a live flag set to its default value is an
        # explicit request and gets rejected with --scenario.
        rc = main(["capture", str(tmp_path / "s.fdc"), "--scenario", "bursts",
                   "--flow-port", "2055"])
        assert rc == 2
        assert "--flow-port" in capsys.readouterr().err
        rc = main(["capture", str(tmp_path / "l.fdc"), "--seed", "42",
                   "--duration", "0.2", "--flow-port", "0", "--dns-port", "0"])
        assert rc == 2
        assert "--seed" in capsys.readouterr().err

    def test_replay_fill_gate_warning_printed_once(self, tmp_path, capsys,
                                                   monkeypatch):
        """A timed-out fill gate warns exactly once on stderr (from
        report.warnings), not once immediately plus once at the end."""
        import repro.replay.runner as runner
        from repro.core.metrics import EngineReport
        from repro.core.pipeline import fill_gate_warning

        capture = tmp_path / "gate.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        capsys.readouterr()

        def fake_replay(capture, on_fill_timeout=None, fill_timeout=0.0, **kw):
            report = EngineReport()
            # What gated_with_warning does on a timeout:
            report.warnings.append(fill_gate_warning(fill_timeout))
            if on_fill_timeout is not None:
                on_fill_timeout()
            return report

        monkeypatch.setattr(runner, "replay_capture", fake_replay)
        rc = main(["replay", str(capture),
                   "--output", str(tmp_path / "g.tsv")])
        assert rc == 0
        err = capsys.readouterr().err
        assert err.count("partially-filled store") == 1

    def test_replay_speed_requires_realtime(self, tmp_path, capsys):
        capture = tmp_path / "ok.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        rc = main(["replay", str(capture), "--speed", "2",
                   "--output", str(tmp_path / "o.tsv")])
        assert rc == 2
        assert "--realtime" in capsys.readouterr().err

    def test_replay_rejects_inapplicable_engine_flags(self, tmp_path, capsys):
        """--shards and --fill-timeout error out for engines they cannot
        affect instead of being silently dropped."""
        capture = tmp_path / "ok.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        rc = main(["replay", str(capture), "--engine", "threaded",
                   "--shards", "8", "--output", str(tmp_path / "o.tsv")])
        assert rc == 2
        assert "--shards" in capsys.readouterr().err
        rc = main(["replay", str(capture), "--engine", "async",
                   "--fill-timeout", "5", "--output", str(tmp_path / "o.tsv")])
        assert rc == 2
        assert "--fill-timeout" in capsys.readouterr().err

    def test_serve_bind_failure_preserves_output_file(self, tmp_path, capsys):
        """serve's --output sink opens lazily: a bind failure exits 2
        without truncating prior results (same contract as --capture)."""
        import socket

        output = tmp_path / "results.tsv"
        output.write_text("prior results\n")
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main(["serve", "--duration", "5", "--flow-port", "0",
                       "--dns-port", str(port), "--output", str(output)])
        assert rc == 2
        assert "failed to bind" in capsys.readouterr().err
        assert output.read_text() == "prior results\n"

    def test_capture_live_bounded_duration(self, tmp_path, capsys):
        """Live capture mode: bind ephemeral sockets, record (nothing) for
        the bounded duration, and leave a valid, empty capture file."""
        capture = tmp_path / "live.fdc"
        rc = main(["capture", str(capture), "--duration", "0.3",
                   "--flow-port", "0", "--dns-port", "0"])
        assert rc == 0
        assert "capture written" in capsys.readouterr().err
        from repro.replay import load_capture

        assert load_capture(str(capture)) == []

    def test_capture_bind_failure_preserves_existing_file(self, tmp_path,
                                                          capsys):
        """A bind failure must exit 2 without truncating whatever already
        lives at the capture path (the writer opens lazily)."""
        import socket

        target = tmp_path / "precious.fdc"
        target.write_bytes(b"earlier capture bytes")
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main(["capture", str(target), "--duration", "5",
                       "--flow-port", "0", "--dns-port", str(port)])
        assert rc == 2
        assert "failed to bind" in capsys.readouterr().err
        assert target.read_bytes() == b"earlier capture bytes"

    def test_serve_capture_tee(self, tmp_path, capsys):
        """`serve --capture` tees into a replayable file alongside the
        normal correlation output."""
        capture = tmp_path / "tee.fdc"
        rc = main(["serve", "--duration", "0.3", "--flow-port", "0",
                   "--dns-port", "0", "--capture", str(capture)])
        assert rc == 0
        assert "capture written" in capsys.readouterr().err
        from repro.replay import load_capture

        assert load_capture(str(capture)) == []


class TestFaultCli:
    """The PR-8 fault-injection surface: list modes, flag validation
    before any sink opens, and seed-reproducible faulted replay."""

    def _rows(self, path):
        return sorted(line for line in path.read_text().splitlines()
                      if not line.startswith("#"))

    def test_list_fault_profiles(self, capsys):
        rc = main(["replay", "--list-fault-profiles"])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.replay import FAULT_PROFILES

        for name in FAULT_PROFILES:
            assert name in out

    def test_list_scenarios(self, capsys):
        rc = main(["capture", "--list-scenarios"])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.replay.scenarios import SCENARIOS

        for name in SCENARIOS:
            assert name in out

    def test_replay_requires_capture_without_list_flag(self, capsys):
        rc = main(["replay"])
        assert rc == 2
        assert "capture path is required" in capsys.readouterr().err

    def test_capture_requires_output_without_list_flag(self, capsys):
        rc = main(["capture"])
        assert rc == 2
        assert "output path is required" in capsys.readouterr().err

    def test_fault_seed_alone_rejected_before_sink_opens(self, tmp_path,
                                                         capsys):
        """--fault-seed without a fault plan is a flag mistake: reject it
        with exit 2 and never truncate an existing output file."""
        capture = tmp_path / "ok.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        output = tmp_path / "results.tsv"
        output.write_text("keep me\n")
        rc = main(["replay", str(capture), "--fault-seed", "3",
                   "--output", str(output)])
        assert rc == 2
        assert "--fault-seed" in capsys.readouterr().err
        assert output.read_text() == "keep me\n"

    def test_unknown_fault_spec_rejected(self, tmp_path, capsys):
        capture = tmp_path / "ok.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        output = tmp_path / "results.tsv"
        output.write_text("keep me\n")
        rc = main(["replay", str(capture), "--fault", "gremlins=0.5",
                   "--output", str(output)])
        assert rc == 2
        assert "gremlins" in capsys.readouterr().err
        assert output.read_text() == "keep me\n"

    def test_unknown_fault_profile_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["replay", "x.fdc", "--fault-profile", "apocalypse"])

    def test_faulted_replay_prints_seed_line(self, tmp_path, capsys):
        capture = tmp_path / "two-site.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        capsys.readouterr()
        rc = main(["replay", str(capture), "--fault-profile", "lossy-udp",
                   "--fault-seed", "7", "--output", str(tmp_path / "o.tsv")])
        assert rc == 0
        err = capsys.readouterr().err
        assert "faults injected" in err
        assert "profile=lossy-udp" in err and "seed=7" in err

    def test_faulted_replay_is_seed_reproducible(self, tmp_path):
        """Same capture + profile + seed through the CLI twice: identical
        output rows — the whole point of deterministic injection."""
        capture = tmp_path / "churn.fdc"
        assert main(["capture", str(capture), "--scenario", "cname-churn"]) == 0
        rows = []
        for run in range(2):
            output = tmp_path / f"run{run}.tsv"
            rc = main(["replay", str(capture), "--fault-profile", "everything",
                       "--fault-seed", "11", "--output", str(output)])
            assert rc == 0
            rows.append(self._rows(output))
        assert rows[0] == rows[1]

    def test_custom_fault_rates_report_custom_profile(self, tmp_path, capsys):
        capture = tmp_path / "two-site.fdc"
        assert main(["capture", str(capture), "--scenario", "two-site"]) == 0
        capsys.readouterr()
        rc = main(["replay", str(capture), "--fault", "drop=0.1",
                   "--fault", "duplicate=0.05",
                   "--output", str(tmp_path / "o.tsv")])
        assert rc == 0
        err = capsys.readouterr().err
        assert "profile=custom" in err and "seed=0" in err


class TestFillTimeout:
    def test_flag_parses_with_default(self):
        # argparse keeps None (presence sentinel); the effective default
        # is EngineConfig's, applied by from_args.
        args = build_parser().parse_args([
            "correlate", "--dns", "d", "--flows", "f", "--mapping", "m",
        ])
        from repro.core.config import DEFAULT_FILL_TIMEOUT, EngineConfig

        assert args.fill_timeout is None
        assert EngineConfig.from_args(
            args, "correlate"
        ).fill_timeout == DEFAULT_FILL_TIMEOUT
        args = build_parser().parse_args([
            "replay", "x.fdc", "--engine", "threaded", "--fill-timeout", "7.5",
        ])
        assert args.fill_timeout == 7.5
        assert EngineConfig.from_args(args, "replay").fill_timeout == 7.5

    def test_gate_timeout_lands_in_report_warnings(self, capsys):
        """A timed-out fill gate is recorded on the report (and printed),
        instead of existing only as a stderr line."""
        from repro.cli import _gated_flow_source
        from repro.core.pipeline import fill_gate_warning

        class NeverDone:
            fillup_complete = False

        warnings_out = []
        source = _gated_flow_source(NeverDone(), [1, 2], 0.01, warnings_out)
        assert list(source) == [1, 2]
        assert warnings_out == [fill_gate_warning(0.01)]
        assert warnings_out[0] in capsys.readouterr().err

    def test_gate_without_timeout_stays_silent(self, capsys):
        from repro.cli import _gated_flow_source

        class Done:
            fillup_complete = True

        warnings_out = []
        source = _gated_flow_source(Done(), [3], 0.01, warnings_out)
        assert list(source) == [3]
        assert warnings_out == []
