"""Tests for the flowdns CLI."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def mapping_file(tmp_path):
    config = {
        "dns": {
            "ts": "ts",
            "query": "qname",
            "rtype": "rtype",
            "ttl": "ttl",
            "answer": "answer",
        },
        "flow": {
            "ts": "ts",
            "src_ip": "src",
            "dst_ip": "dst",
            "bytes": {"field": "bytes", "default": 0},
        },
    }
    path = tmp_path / "mapping.json"
    path.write_text(json.dumps(config))
    return str(path)


@pytest.fixture()
def csv_inputs(tmp_path):
    dns = tmp_path / "dns.csv"
    dns.write_text(
        "ts,qname,rtype,ttl,answer\n"
        "1.0,svc.example,CNAME,600,edge.cdn.net\n"
        "1.0,edge.cdn.net,A,60,10.1.1.1\n"
        "2.0,plain.example,A,120,10.2.2.2\n"
    )
    flows = tmp_path / "flows.csv"
    flows.write_text(
        "ts,src,dst,bytes\n"
        "10.0,10.1.1.1,100.64.0.1,1000\n"
        "11.0,10.2.2.2,100.64.0.2,600\n"
        "12.0,172.16.0.1,100.64.0.3,400\n"
    )
    return str(dns), str(flows)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--hours", "1"],
            ["ablation", "--hours", "1"],
            ["analyze", "out.tsv"],
            ["mapping-template"],
            ["serve", "--duration", "1", "--flow-port", "0", "--dns-port", "0"],
        ],
    )
    def test_known_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_serve_bind_conflict_fails_fast(self, capsys):
        """A port already in use must exit with an error, not hang the
        address-poll loop forever."""
        import socket

        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main([
                "serve", "--duration", "5", "--flow-port", "0",
                "--dns-port", str(port),
            ])
        assert rc == 2
        assert "failed to bind" in capsys.readouterr().err

    def test_serve_bounded_duration_runs(self, tmp_path, capsys):
        """`flowdns serve` binds ephemeral sockets, serves for the bounded
        duration, drains, and reports."""
        output = tmp_path / "live.tsv"
        rc = main([
            "serve", "--duration", "0.3", "--flow-port", "0",
            "--dns-port", "0", "--output", str(output),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "NetFlow/IPFIX (UDP)" in err
        assert "flows correlated" in err
        assert output.read_text().startswith("#")


class TestMappingTemplate:
    def test_template_is_valid_config(self, capsys):
        assert main(["mapping-template"]) == 0
        printed = capsys.readouterr().out
        config = json.loads(printed)
        from repro.core.adapter import load_mapping

        dns, flow = load_mapping(config)
        assert dns is not None and flow is not None


class TestCorrelate:
    def test_correlate_csv_files(self, mapping_file, csv_inputs, tmp_path, capsys):
        dns, flows = csv_inputs
        output = tmp_path / "out.tsv"
        rc = main([
            "correlate", "--dns", dns, "--flows", flows,
            "--mapping", mapping_file, "--output", str(output),
        ])
        assert rc == 0
        lines = [line for line in output.read_text().splitlines() if not line.startswith("#")]
        assert len(lines) == 3
        assert any("svc.example" in line for line in lines)
        stderr = capsys.readouterr().err
        assert "correlated 2/3 flows" in stderr

    def test_correlate_jsonl(self, mapping_file, tmp_path, capsys):
        dns = tmp_path / "dns.jsonl"
        dns.write_text(
            '{"ts": 1.0, "qname": "a.example", "rtype": "A", "ttl": 60, "answer": "10.5.5.5"}\n'
        )
        flows = tmp_path / "flows.jsonl"
        flows.write_text('{"ts": 5.0, "src": "10.5.5.5", "dst": "100.64.0.1", "bytes": 42}\n')
        output = tmp_path / "out.tsv"
        rc = main([
            "correlate", "--dns", str(dns), "--flows", str(flows),
            "--mapping", mapping_file, "--output", str(output),
        ])
        assert rc == 0
        assert "a.example" in output.read_text()

    @pytest.mark.parametrize("engine", ["threaded", "sharded", "async"])
    def test_correlate_live_engines(self, mapping_file, csv_inputs, tmp_path,
                                    capsys, engine):
        dns, flows = csv_inputs
        output = tmp_path / "out.tsv"
        rc = main([
            "correlate", "--dns", dns, "--flows", flows,
            "--mapping", mapping_file, "--output", str(output),
            "--engine", engine, "--shards", "2",
        ])
        assert rc == 0
        lines = [line for line in output.read_text().splitlines()
                 if not line.startswith("#")]
        assert len(lines) == 3
        assert any("svc.example" in line for line in lines)
        assert "correlated 2/3 flows" in capsys.readouterr().err

    def test_correlate_rejects_unknown_engine(self, mapping_file, csv_inputs):
        dns, flows = csv_inputs
        with pytest.raises(SystemExit):
            main([
                "correlate", "--dns", dns, "--flows", flows,
                "--mapping", mapping_file, "--engine", "warp",
            ])

    def test_mapping_without_flow_section_fails(self, tmp_path, csv_inputs, capsys):
        dns, flows = csv_inputs
        mapping = tmp_path / "partial.json"
        mapping.write_text(json.dumps({
            "dns": {"ts": "ts", "query": "qname", "rtype": "rtype",
                    "ttl": "ttl", "answer": "answer"},
        }))
        rc = main([
            "correlate", "--dns", dns, "--flows", flows, "--mapping", str(mapping),
        ])
        assert rc == 2


class TestAnalyze:
    def test_analyze_output_file(self, mapping_file, csv_inputs, tmp_path, capsys):
        dns, flows = csv_inputs
        output = tmp_path / "out.tsv"
        main(["correlate", "--dns", dns, "--flows", flows,
              "--mapping", mapping_file, "--output", str(output)])
        capsys.readouterr()
        rc = main(["analyze", str(output), "--top", "5"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "correlation rate" in printed
        assert "svc.example" in printed

    def test_analyze_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.tsv"
        empty.write_text("# header only\n")
        assert main(["analyze", str(empty)]) == 1


class TestSimulate:
    def test_simulate_small_run(self, tmp_path, capsys):
        output = tmp_path / "run.tsv"
        rc = main([
            "simulate", "--preset", "small", "--hours", "0.3",
            "--seed", "3", "--output", str(output),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "correlation rate" in printed
        assert output.exists()

    def test_simulate_variant(self, capsys):
        rc = main([
            "simulate", "--preset", "small", "--hours", "0.2",
            "--variant", "no-rotation",
        ])
        assert rc == 0
        assert "no-rotation" in capsys.readouterr().out

    def test_simulate_dashboard_and_metrics(self, capsys):
        rc = main([
            "simulate", "--preset", "small", "--hours", "0.2",
            "--dashboard", "--metrics",
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "small ISP / main" in printed
        assert "flowdns_correlation_rate" in printed


class TestFigures:
    def test_figures_writes_tsvs(self, tmp_path, capsys, monkeypatch):
        # Patch the preset to a tiny universe so the run stays fast.
        import repro.cli as cli
        from repro.workloads.isp import large_isp as real_large

        def tiny_large(seed=7, duration=3600.0, **kw):
            kw.setdefault("n_benign", 120)
            return real_large(seed=seed, duration=min(duration, 1800.0), **kw)

        monkeypatch.setattr(cli, "large_isp", tiny_large)
        rc = main(["figures", "--out-dir", str(tmp_path), "--hours", "0.4"])
        assert rc == 0
        for name in ("fig2_week_usage.tsv", "fig3_variant_usage.tsv",
                     "fig7_variant_correlation.tsv"):
            content = (tmp_path / name).read_text()
            assert content.startswith("#")
            assert len(content.splitlines()) > 1
