"""Tests for repro.storage.concurrent_map."""

import threading

import pytest

from repro.storage.concurrent_map import ConcurrentMap
from repro.util.errors import ConfigError


class TestBasics:
    def test_set_get(self):
        cmap = ConcurrentMap()
        cmap.set("k", "v")
        assert cmap.get("k") == "v"

    def test_get_default(self):
        assert ConcurrentMap().get("missing", "d") == "d"

    def test_contains(self):
        cmap = ConcurrentMap()
        cmap.set("a", 1)
        assert "a" in cmap and "b" not in cmap

    def test_len_spans_shards(self):
        cmap = ConcurrentMap(shard_count=8)
        for i in range(100):
            cmap.set(f"key-{i}", i)
        assert len(cmap) == 100

    def test_pop(self):
        cmap = ConcurrentMap()
        cmap.set("k", 1)
        assert cmap.pop("k") == 1
        assert cmap.pop("k", "gone") == "gone"

    def test_overwrite(self):
        cmap = ConcurrentMap()
        cmap.set("k", 1)
        cmap.set("k", 2)
        assert cmap.get("k") == 2
        assert len(cmap) == 1

    def test_shard_count_validation(self):
        with pytest.raises(ConfigError):
            ConcurrentMap(0)


class TestAtomicOps:
    def test_set_if_absent(self):
        cmap = ConcurrentMap()
        assert cmap.set_if_absent("k", 1) is True
        assert cmap.set_if_absent("k", 2) is False
        assert cmap.get("k") == 1

    def test_update_with(self):
        cmap = ConcurrentMap()
        cmap.update_with("counter", lambda v: (v or 0) + 1)
        cmap.update_with("counter", lambda v: (v or 0) + 1)
        assert cmap.get("counter") == 2


class TestBulkOps:
    def test_clear_returns_removed(self):
        cmap = ConcurrentMap()
        for i in range(10):
            cmap.set(str(i), i)
        assert cmap.clear() == 10
        assert len(cmap) == 0

    def test_snapshot_is_copy(self):
        cmap = ConcurrentMap()
        cmap.set("a", 1)
        snap = cmap.snapshot()
        cmap.set("a", 2)
        assert snap["a"] == 1

    def test_items_iterates_snapshot(self):
        cmap = ConcurrentMap()
        cmap.set("x", 1)
        cmap.set("y", 2)
        assert dict(cmap.items()) == {"x": 1, "y": 2}

    def test_replace_contents(self):
        a = ConcurrentMap()
        b = ConcurrentMap()
        a.set("old", 1)
        b.set("new", 2)
        a.replace_contents(b)
        assert a.get("old") is None
        assert a.get("new") == 2

    def test_shard_sizes_sum_to_len(self):
        cmap = ConcurrentMap(shard_count=16)
        for i in range(500):
            cmap.set(f"key-{i}", i)
        assert sum(cmap.shard_sizes()) == 500

    def test_shard_spread_is_reasonable(self):
        """FNV-1a should spread keys; no shard should dominate."""
        cmap = ConcurrentMap(shard_count=16)
        for i in range(3200):
            cmap.set(f"domain{i}.example.com", i)
        sizes = cmap.shard_sizes()
        assert max(sizes) < 3 * (3200 // 16)


class TestThreadSafety:
    def test_concurrent_writers_distinct_keys(self):
        cmap = ConcurrentMap(shard_count=4)

        def writer(base):
            for i in range(500):
                cmap.set(f"w{base}-{i}", i)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cmap) == 2000

    def test_concurrent_update_with_is_atomic(self):
        cmap = ConcurrentMap()

        def incrementer():
            for _ in range(1000):
                cmap.update_with("n", lambda v: (v or 0) + 1)

        threads = [threading.Thread(target=incrementer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cmap.get("n") == 4000

    def test_clear_during_writes_keeps_invariants(self):
        cmap = ConcurrentMap(shard_count=8)
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                cmap.set(f"k{i % 100}", i)
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        for _ in range(50):
            cmap.clear()
        stop.set()
        t.join()
        assert len(cmap) <= 100


class TestEvictOldest:
    """The memory-bound enforcement primitive (PR 7): approximately-FIFO
    eviction — exact FIFO within a shard, cursor-rotated across shards."""

    def test_evicts_exactly_the_requested_count(self):
        cmap = ConcurrentMap()
        for i in range(100):
            cmap.set(f"k{i}", i)
        assert cmap.evict_oldest(30) == 30
        assert len(cmap) == 70

    def test_zero_and_negative_are_noops(self):
        cmap = ConcurrentMap()
        cmap.set("k", 1)
        assert cmap.evict_oldest(0) == 0
        assert cmap.evict_oldest(-5) == 0
        assert len(cmap) == 1

    def test_overshoot_empties_and_reports_actual(self):
        cmap = ConcurrentMap()
        for i in range(10):
            cmap.set(f"k{i}", i)
        assert cmap.evict_oldest(1000) == 10
        assert len(cmap) == 0

    def test_steady_trim_spares_recent_inserts(self):
        """One-in-one-out at the cap — the rotating store's hot loop —
        must cycle the eviction cursor across shards so the *newest*
        inserts survive; draining one shard repeatedly would evict
        fresh entries hashed there while stale ones elsewhere live on."""
        cmap = ConcurrentMap()
        cap = 256
        for i in range(cap):
            cmap.set(f"seed{i}", i)
        for i in range(1000):
            cmap.set(f"hot{i}", i)
            cmap.evict_oldest(len(cmap) - cap)
        assert len(cmap) == cap
        survivors = cmap.snapshot()
        assert all(f"hot{i}" in survivors for i in range(990, 1000))
        # Everything seeded long ago is gone.
        assert not any(key.startswith("seed") for key in survivors)
