"""Tests for the NetFlow v5 / v9 / IPFIX codecs."""

import pytest

from repro.netflow.ipfix import (
    IPFIX_V4_TEMPLATE,
    IpfixSession,
    encode_ipfix_data,
    encode_ipfix_template,
)
from repro.netflow.records import FlowRecord
from repro.netflow.v5 import V5_HEADER_LEN, V5_RECORD_LEN, decode_v5, encode_v5
from repro.netflow.v9 import (
    STANDARD_V4_TEMPLATE,
    STANDARD_V6_TEMPLATE,
    TemplateField,
    TemplateRecord,
    V9Session,
    encode_v9_data,
    encode_v9_template,
)
from repro.util.errors import ParseError


def _flows(n, v6=False):
    out = []
    for i in range(n):
        out.append(
            FlowRecord(
                ts=1000.0 + i,
                src_ip=f"2001:db8::{i + 1:x}" if v6 else f"10.1.2.{i + 1}",
                dst_ip="2001:db8::ffff" if v6 else "192.168.0.1",
                src_port=443,
                dst_port=50000 + i,
                protocol=6,
                packets=10 + i,
                bytes_=1500 * (i + 1),
            )
        )
    return out


class TestV5:
    def test_round_trip_fields(self):
        flows = _flows(5)
        header, decoded = decode_v5(encode_v5(flows, unix_secs=1000))
        assert header["version"] == 5 and header["count"] == 5
        for orig, back in zip(flows, decoded):
            assert back.src_ip == orig.src_ip
            assert back.dst_ip == orig.dst_ip
            assert back.src_port == orig.src_port
            assert back.dst_port == orig.dst_port
            assert back.packets == orig.packets
            assert back.bytes_ == orig.bytes_
            assert abs(back.ts - orig.ts) < 0.01

    def test_datagram_length(self):
        wire = encode_v5(_flows(3), unix_secs=1000)
        assert len(wire) == V5_HEADER_LEN + 3 * V5_RECORD_LEN

    def test_rejects_over_30_records(self):
        with pytest.raises(ParseError):
            encode_v5(_flows(31))

    def test_rejects_ipv6(self):
        with pytest.raises(ParseError):
            encode_v5(_flows(1, v6=True))

    def test_rejects_wrong_version(self):
        wire = bytearray(encode_v5(_flows(1), unix_secs=1000))
        wire[1] = 9  # corrupt version field low byte
        with pytest.raises(ParseError):
            decode_v5(bytes(wire))

    def test_rejects_truncated(self):
        wire = encode_v5(_flows(2), unix_secs=1000)
        with pytest.raises(ParseError):
            decode_v5(wire[: V5_HEADER_LEN + V5_RECORD_LEN])

    def test_extra_fields_preserved(self):
        flow = FlowRecord(
            ts=1000.0, src_ip="1.1.1.1", dst_ip="2.2.2.2",
            extra={"src_as": 64501, "dst_as": 64500, "tcp_flags": 0x12},
        )
        _, decoded = decode_v5(encode_v5([flow], unix_secs=1000))
        assert decoded[0].extra["src_as"] == 64501
        assert decoded[0].extra["tcp_flags"] == 0x12


class TestV9:
    def test_template_learned_then_data_decoded(self):
        session = V9Session()
        flows = _flows(4)
        tmpl_dgram = encode_v9_template([STANDARD_V4_TEMPLATE], unix_secs=1000)
        assert session.decode(tmpl_dgram) == []
        assert session.template_for(0, 256) is not None
        data_dgram = encode_v9_data(STANDARD_V4_TEMPLATE, flows, unix_secs=1000)
        decoded = session.decode(data_dgram)
        assert len(decoded) == 4
        assert decoded[0].src_ip == flows[0].src_ip
        assert decoded[3].bytes_ == flows[3].bytes_

    def test_data_before_template_skipped(self):
        session = V9Session()
        data_dgram = encode_v9_data(STANDARD_V4_TEMPLATE, _flows(2), unix_secs=1000)
        assert session.decode(data_dgram) == []

    def test_ipv6_template(self):
        session = V9Session()
        session.decode(encode_v9_template([STANDARD_V6_TEMPLATE], unix_secs=1000))
        decoded = session.decode(
            encode_v9_data(STANDARD_V6_TEMPLATE, _flows(2, v6=True), unix_secs=1000)
        )
        assert len(decoded) == 2
        assert decoded[0].src_ip.version == 6

    def test_timestamps_reconstructed(self):
        session = V9Session()
        session.decode(encode_v9_template([STANDARD_V4_TEMPLATE], unix_secs=1000))
        flows = _flows(1)
        decoded = session.decode(encode_v9_data(STANDARD_V4_TEMPLATE, flows, unix_secs=1000))
        assert abs(decoded[0].ts - flows[0].ts) < 0.01

    def test_template_ids_below_256_rejected(self):
        with pytest.raises(ParseError):
            TemplateRecord(template_id=100, fields=(TemplateField(1, 4),))

    def test_zero_length_field_rejected(self):
        with pytest.raises(ParseError):
            TemplateField(1, 0)

    def test_templates_per_source_id(self):
        session = V9Session()
        session.decode(encode_v9_template([STANDARD_V4_TEMPLATE], source_id=7))
        assert session.template_for(7, 256) is not None
        assert session.template_for(8, 256) is None

    def test_malformed_flowset_length_raises(self):
        wire = bytearray(encode_v9_template([STANDARD_V4_TEMPLATE]))
        wire[-2:] = b"\x00\x00"  # leave dangling bytes after sets
        import struct
        # Corrupt the first FlowSet's length to overrun.
        struct.pack_into("!H", wire, 22, 60000)
        with pytest.raises(ParseError):
            V9Session().decode(bytes(wire))

    def test_wrong_version_rejected(self):
        wire = bytearray(encode_v9_template([STANDARD_V4_TEMPLATE]))
        wire[1] = 5
        with pytest.raises(ParseError):
            V9Session().decode(bytes(wire))


class TestIpfix:
    def test_template_then_data(self):
        session = IpfixSession()
        flows = _flows(3)
        assert session.decode(encode_ipfix_template([IPFIX_V4_TEMPLATE], export_secs=1000)) == []
        decoded = session.decode(encode_ipfix_data(IPFIX_V4_TEMPLATE, flows, export_secs=1000))
        assert len(decoded) == 3
        for orig, back in zip(flows, decoded):
            assert back.src_ip == orig.src_ip
            assert back.bytes_ == orig.bytes_

    def test_absolute_timestamps(self):
        session = IpfixSession()
        session.decode(encode_ipfix_template([IPFIX_V4_TEMPLATE], export_secs=0))
        flows = [FlowRecord(ts=123456.789, src_ip="1.1.1.1", dst_ip="2.2.2.2")]
        decoded = session.decode(encode_ipfix_data(IPFIX_V4_TEMPLATE, flows, export_secs=0))
        assert abs(decoded[0].ts - 123456.789) < 0.01

    def test_unknown_template_skipped(self):
        session = IpfixSession()
        decoded = session.decode(encode_ipfix_data(IPFIX_V4_TEMPLATE, _flows(1), export_secs=0))
        assert decoded == []

    def test_wrong_version_rejected(self):
        wire = bytearray(encode_ipfix_template([IPFIX_V4_TEMPLATE]))
        wire[1] = 9
        with pytest.raises(ParseError):
            IpfixSession().decode(bytes(wire))

    def test_truncated_message_rejected(self):
        wire = encode_ipfix_template([IPFIX_V4_TEMPLATE])
        with pytest.raises(ParseError):
            IpfixSession().decode(wire[:10])

    def test_domain_scoped_templates(self):
        session = IpfixSession()
        session.decode(encode_ipfix_template([IPFIX_V4_TEMPLATE], domain_id=1))
        assert session.template_for(1, 300) is not None
        assert session.template_for(2, 300) is None
