"""Shared fixtures for the FlowDNS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.config import FlowDNSConfig
from repro.workloads.cdn import CdnHosting, default_providers
from repro.workloads.domains import build_universe
from repro.workloads.isp import IspWorkload
from repro.workloads.ttl_model import TtlModel


@pytest.fixture(scope="session")
def tiny_universe():
    """A small, fast domain universe shared by workload tests."""
    return build_universe(seed=42, n_benign=200)


@pytest.fixture(scope="session")
def tiny_hosting(tiny_universe):
    return CdnHosting(
        tiny_universe, default_providers(), seed=42, ttl_model=TtlModel()
    )


@pytest.fixture()
def tiny_workload(tiny_universe, tiny_hosting):
    """A 30-minute workload, ~2K events — fast enough for unit tests."""
    return IspWorkload(
        tiny_universe,
        tiny_hosting,
        seed=42,
        duration=1800.0,
        resolution_rate=1.0,
        warmup=600.0,
    )


@pytest.fixture()
def default_config():
    return FlowDNSConfig()
