"""Tests for the domain universe and CDN hosting model."""

import random

import pytest

from repro.dns.rr import RRType
from repro.util.errors import ConfigError
from repro.workloads.cdn import (
    ORIGIN_PROVIDER,
    CdnHosting,
    CdnProvider,
    default_providers,
)
from repro.workloads.domains import CHAIN_LENGTH_WEIGHTS, build_universe
from repro.workloads.ttl_model import TtlModel


class TestBuildUniverse:
    def test_deterministic(self):
        a = build_universe(seed=1, n_benign=100)
        b = build_universe(seed=1, n_benign=100)
        assert [s.name for s in a.services] == [s.name for s in b.services]

    def test_seed_changes_universe(self):
        a = build_universe(seed=1, n_benign=100)
        b = build_universe(seed=2, n_benign=100)
        assert [s.name for s in a.services] != [s.name for s in b.services]

    def test_streaming_services_pinned(self):
        universe = build_universe(seed=1, n_benign=100)
        names = [s.name for s in universe.services[:2]]
        assert names == ["s1-streaming.tv", "s2-streaming.tv"]
        assert universe.services[0].cdn == "stream-cdn-1"
        assert universe.services[1].cdn == "stream-cdn-2"

    def test_zipf_popularity_head_heavy(self):
        universe = build_universe(seed=1, n_benign=500)
        rng = random.Random(0)
        draws = [universe.sample_service(rng).name for _ in range(5000)]
        top = sum(1 for d in draws if d in {s.name for s in universe.services[:10]})
        assert top > len(draws) * 0.2

    def test_abuse_services_present_with_small_byte_share(self):
        universe = build_universe(seed=1, n_benign=1000)
        by_cat = universe.by_category()
        for category in ("spam", "botnet", "malware", "phish", "abused-redirector", "mal-formatted"):
            assert category in by_cat
        abuse_bytes = sum(
            s.byte_weight for s in universe.services if s.category != "benign"
        )
        total = sum(s.byte_weight for s in universe.services)
        assert 0.002 < abuse_bytes / total < 0.01  # the paper's ~0.5 %

    def test_origin_hosted_marked(self):
        universe = build_universe(seed=1, n_benign=1000)
        origin = [s for s in universe.services if s.origin_hosted]
        assert origin
        assert all(s.origin_hosted for s in universe.services if s.long_lived)
        assert all(s.origin_hosted for s in universe.services if s.category != "benign")

    def test_too_small_universe_rejected(self):
        with pytest.raises(ConfigError):
            build_universe(seed=1, n_benign=2, streaming_services=2)

    def test_service_named(self):
        universe = build_universe(seed=1, n_benign=100)
        assert universe.service_named("s1-streaming.tv").name == "s1-streaming.tv"
        with pytest.raises(KeyError):
            universe.service_named("nope.example")

    def test_chain_weights_sum_to_one(self):
        assert abs(sum(w for _, w in CHAIN_LENGTH_WEIGHTS) - 1.0) < 1e-6


class TestCdnProvider:
    def test_pool_respects_prefixes(self):
        import ipaddress

        provider = default_providers()[1]  # stream-cdn-1
        rng = random.Random(0)
        v4, v6 = provider.build_pools(rng)
        nets = [ipaddress.ip_network(c) for c, _ in provider.v4_prefixes]
        for ip in v4:
            assert any(ipaddress.ip_address(ip) in net for net in nets)

    def test_pool_capped_at_prefix_capacity(self):
        provider = CdnProvider(
            name="tiny",
            v4_prefixes=(("192.0.2.0/29", 64999),),
            v6_prefixes=(),
            pool_size_v4=1000,
        )
        v4, _ = provider.build_pools(random.Random(0))
        assert len(v4) <= 6  # /29 minus network/broadcast

    def test_asn_for(self):
        provider = default_providers()[2]  # stream-cdn-2, two ASes
        asns = {provider.asn_for(ip) for ip in ("192.0.2.1", "192.0.2.200")}
        assert asns == {64511, 64512}
        assert provider.asn_for("8.8.8.8") is None

    def test_origin_provider_exists(self):
        names = [p.name for p in default_providers()]
        assert ORIGIN_PROVIDER in names
        assert "stream-cdn-1" in names and "stream-cdn-2" in names


class TestCdnHosting:
    @pytest.fixture(scope="class")
    def hosting(self):
        universe = build_universe(seed=3, n_benign=300)
        return CdnHosting(universe, default_providers(), seed=3, ttl_model=TtlModel())

    def test_streaming_services_on_their_cdns(self, hosting):
        assert hosting.provider_of("s1-streaming.tv").name == "stream-cdn-1"
        assert hosting.provider_of("s2-streaming.tv").name == "stream-cdn-2"

    def test_origin_hosted_on_origin_provider(self, hosting):
        for service in hosting.universe.services:
            if service.origin_hosted:
                assert hosting.provider_of(service.name).name == ORIGIN_PROVIDER

    def test_chain_structure(self, hosting):
        for service in hosting.universe.services[:50]:
            chain = hosting.chain_of(service.name)
            assert chain[0] == service.name
            assert len(chain) == service.chain_length

    def test_resolution_records_match_chain(self, hosting):
        rng = random.Random(1)
        service = hosting.universe.services[0]
        resolution = hosting.resolve(service, ts=100.0, rng=rng)
        records = resolution.records()
        cnames = [r for r in records if r.is_cname]
        addresses = [r for r in records if r.is_address]
        assert len(cnames) == len(resolution.chain) - 1
        assert len(addresses) == len(resolution.ips)
        assert all(r.query == resolution.chain[-1] for r in addresses)

    def test_resolution_ip_in_provider_pool(self, hosting):
        import ipaddress

        rng = random.Random(2)
        service = hosting.universe.services[0]
        provider = hosting.provider_of(service.name)
        for _ in range(20):
            resolution = hosting.resolve(service, ts=0.0, rng=rng)
            assert provider.asn_for(resolution.ip) is not None

    def test_long_lived_service_gets_long_ttl(self, hosting):
        rng = random.Random(3)
        long_services = [s for s in hosting.universe.services if s.long_lived]
        assert long_services
        resolution = hosting.resolve(long_services[0], ts=0.0, rng=rng)
        assert resolution.a_ttl >= 3600

    def test_aaaa_fraction_respected(self, hosting):
        rng = random.Random(4)
        service = hosting.universe.services[0]
        types = [hosting.resolve(service, 0.0, rng).rtype for _ in range(400)]
        aaaa_share = sum(1 for t in types if t == RRType.AAAA) / len(types)
        assert 0.15 < aaaa_share < 0.35

    def test_ephemeral_names_unique(self, hosting):
        rng = random.Random(5)
        service = next(
            s for s in hosting.universe.services if s.chain_length > 1
        )
        edges = {hosting.resolve(service, 0.0, rng).chain[-1] for _ in range(200)}
        assert len(edges) > 10  # session-token edge names appear

    def test_rib_entries_cover_providers(self, hosting):
        entries = hosting.rib_entries()
        asns = {asn for _prefix, asn in entries}
        assert {64501, 64511, 64512, 64800} <= asns
