"""Property-based tests (hypothesis) for the DNS wire substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.name import decode_name, encode_name, normalize_name
from repro.dns.rr import RRType, a_record, aaaa_record, cname_record
from repro.dns.validation import check_domain
from repro.dns.wire import DnsMessage, Question, decode_message, encode_message
from repro.util.errors import ParseError

_label = st.text(alphabet=string.ascii_lowercase + string.digits + "-_", min_size=1, max_size=20)
_name = st.lists(_label, min_size=1, max_size=5).map(".".join)
_ipv4 = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda n: ".".join(str((n >> s) & 0xFF) for s in (24, 16, 8, 0))
)
_ipv6_suffix = st.integers(min_value=0, max_value=2**32 - 1)
_ttl = st.integers(min_value=0, max_value=2**31 - 1)


@given(_name)
def test_name_round_trip(name):
    wire = encode_name(name)
    decoded, offset = decode_name(wire, 0)
    assert decoded == normalize_name(name)
    assert offset == len(wire)


@given(_name)
def test_normalize_idempotent(name):
    once = normalize_name(name)
    assert normalize_name(once) == once


@given(st.binary(max_size=64))
def test_decode_name_never_hangs_or_crashes(data):
    """Arbitrary bytes either decode or raise ParseError — nothing else."""
    try:
        decode_name(data, 0)
    except ParseError:
        pass


@given(st.binary(max_size=200))
def test_decode_message_never_crashes(data):
    try:
        decode_message(data)
    except ParseError:
        pass


@given(
    st.lists(
        st.tuples(_name, _ipv4, _ttl),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=50)
def test_message_round_trip_a_records(entries):
    msg = DnsMessage()
    msg.questions.append(Question(entries[0][0], RRType.A))
    for name, ip, ttl in entries:
        msg.answers.append(a_record(name, ip, ttl))
    decoded = decode_message(encode_message(msg))
    assert len(decoded.answers) == len(entries)
    for rr, (name, ip, ttl) in zip(decoded.answers, entries):
        assert rr.name == normalize_name(name)
        assert str(rr.rdata) == ip
        assert rr.ttl == ttl


@given(st.lists(st.tuples(_name, _name, _ttl), min_size=1, max_size=5))
@settings(max_examples=50)
def test_message_round_trip_cname_records(entries):
    msg = DnsMessage()
    for owner, target, ttl in entries:
        msg.answers.append(cname_record(owner, target, ttl))
    decoded = decode_message(encode_message(msg))
    for rr, (owner, target, _ttl) in zip(decoded.answers, entries):
        assert rr.rdata == normalize_name(target)


@given(_name, _ipv6_suffix, _ttl)
def test_aaaa_round_trip(name, suffix, ttl):
    address = f"2001:db8::{suffix & 0xFFFF:x}:{(suffix >> 16) & 0xFFFF:x}"
    msg = DnsMessage()
    msg.answers.append(aaaa_record(name, address, ttl))
    decoded = decode_message(encode_message(msg))
    assert decoded.answers[0].rdata.compressed == decoded.answers[0].rdata.compressed


@given(_name)
def test_check_domain_never_crashes(name):
    check_domain(name)  # must not raise for any printable name


@given(st.text(max_size=100))
def test_check_domain_handles_arbitrary_text(name):
    check_domain(name)
