"""Tests for the configurable input-format adapter."""

import io
import json

import pytest

from repro.core.adapter import (
    DnsAdapter,
    FieldSpec,
    FlowAdapter,
    iter_csv,
    iter_jsonl,
    load_mapping,
    load_mapping_file,
)
from repro.dns.rr import RRType
from repro.util.errors import ConfigError, ParseError

FLOW_CONFIG = {
    "ts": {"field": "end_time", "unit": "ms"},
    "src_ip": {"field": "sa"},
    "dst_ip": {"field": "da"},
    "bytes": {"field": "ibyt", "default": 0},
    "packets": {"field": "ipkt", "default": 1},
    "dst_port": {"field": "dp", "default": 0},
}

DNS_CONFIG = {
    "ts": "timestamp",
    "query": "qname",
    "rtype": "type",
    "ttl": "ttl",
    "answer": "rdata",
}


class TestFieldSpec:
    def test_string_shorthand(self):
        spec = FieldSpec.from_config("qname")
        assert spec.field == "qname"

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigError):
            FieldSpec.from_config({"field": "ts", "unit": "fortnights"})

    def test_missing_field_key_rejected(self):
        with pytest.raises(ConfigError):
            FieldSpec.from_config({"unit": "s"})

    def test_default_applies_when_absent_or_empty(self):
        spec = FieldSpec.from_config({"field": "x", "default": 7})
        assert spec.extract({}) == 7
        assert spec.extract({"x": ""}) == 7
        assert spec.extract({"x": "3"}) == "3"

    def test_required_field_missing_raises(self):
        spec = FieldSpec.from_config("x")
        with pytest.raises(ParseError):
            spec.extract({})

    def test_time_units(self):
        record = {"t": "1500"}
        assert FieldSpec.from_config({"field": "t", "unit": "ms"}).extract_time(record) == 1.5
        assert FieldSpec.from_config({"field": "t", "unit": "s"}).extract_time(record) == 1500.0

    def test_bad_time_raises(self):
        spec = FieldSpec.from_config("t")
        with pytest.raises(ParseError):
            spec.extract_time({"t": "noon"})


class TestFlowAdapter:
    def test_missing_required_mapping_rejected(self):
        with pytest.raises(ConfigError):
            FlowAdapter.from_config({"ts": "t"})

    def test_adapt_row(self):
        adapter = FlowAdapter.from_config(FLOW_CONFIG)
        flow = adapter.adapt(
            {"end_time": "1700000000000", "sa": "10.1.1.1", "da": "100.64.0.1",
             "ibyt": "1234", "ipkt": "3", "dp": "443"}
        )
        assert flow.ts == 1700000000.0
        assert str(flow.src_ip) == "10.1.1.1"
        assert flow.bytes_ == 1234 and flow.packets == 3 and flow.dst_port == 443

    def test_defaults_fill_gaps(self):
        adapter = FlowAdapter.from_config(FLOW_CONFIG)
        flow = adapter.adapt({"end_time": "0", "sa": "1.1.1.1", "da": "2.2.2.2"})
        assert flow.bytes_ == 0 and flow.packets == 1

    def test_bad_ip_raises(self):
        adapter = FlowAdapter.from_config(FLOW_CONFIG)
        with pytest.raises(ParseError):
            adapter.adapt({"end_time": "0", "sa": "not-an-ip", "da": "2.2.2.2"})

    def test_adapt_many_counts_malformed(self):
        adapter = FlowAdapter.from_config(FLOW_CONFIG)
        rows = [
            {"end_time": "0", "sa": "1.1.1.1", "da": "2.2.2.2"},
            {"end_time": "0", "sa": "garbage", "da": "2.2.2.2"},
            {"end_time": "0", "sa": "3.3.3.3", "da": "4.4.4.4"},
        ]
        flows = list(adapter.adapt_many(rows))
        assert len(flows) == 2
        assert adapter.stats.malformed == 1

    def test_adapt_batch_matches_adapt_many(self):
        rows = [
            {"end_time": "1500", "sa": "1.1.1.1", "da": "2.2.2.2",
             "ibyt": "900", "ipkt": "3", "dp": "443"},
            {"end_time": "0", "sa": "garbage", "da": "2.2.2.2"},
            {"end_time": "2500", "sa": "2001:db8::1", "da": "4.4.4.4"},
            {"end_time": "0", "sa": "5.5.5.5", "da": "6.6.6.6", "ibyt": "-1"},
            {"end_time": "0", "sa": "7.7.7.7", "da": "8.8.8.8", "dp": "70000"},
        ]
        reference = FlowAdapter.from_config(FLOW_CONFIG)
        expected = list(reference.adapt_many(rows))

        adapter = FlowAdapter.from_config(FLOW_CONFIG)
        batch = adapter.adapt_batch(rows)
        materialised = batch.to_records()
        assert materialised == expected
        assert [r.extra for r in materialised] == [r.extra for r in expected]
        assert adapter.stats.records_in == reference.stats.records_in
        assert adapter.stats.records_out == reference.stats.records_out == 2
        assert adapter.stats.malformed == reference.stats.malformed == 3
        # Address columns carry canonical interned text.
        assert batch.src_ip_text == [str(r.src_ip) for r in expected]
        assert batch.dst_ip_text == [str(r.dst_ip) for r in expected]


class TestDnsAdapter:
    def test_adapt_a_record(self):
        adapter = DnsAdapter.from_config(DNS_CONFIG)
        rec = adapter.adapt(
            {"timestamp": "100.5", "qname": "X.Example.COM", "type": "A",
             "ttl": "300", "rdata": "10.1.1.1"}
        )
        assert rec.rtype == RRType.A
        assert rec.query == "x.example.com"
        assert rec.ttl == 300

    def test_numeric_rtype_aliases(self):
        adapter = DnsAdapter.from_config(DNS_CONFIG)
        rec = adapter.adapt(
            {"timestamp": "1", "qname": "a.example", "type": "5",
             "ttl": "60", "rdata": "b.example"}
        )
        assert rec.rtype == RRType.CNAME

    def test_other_rtypes_skipped(self):
        adapter = DnsAdapter.from_config(DNS_CONFIG)
        assert adapter.adapt(
            {"timestamp": "1", "qname": "a.example", "type": "TXT",
             "ttl": "60", "rdata": "x"}
        ) is None
        assert adapter.stats.skipped_rtype == 1

    def test_negative_ttl_raises(self):
        adapter = DnsAdapter.from_config(DNS_CONFIG)
        with pytest.raises(ParseError):
            adapter.adapt({"timestamp": "1", "qname": "a.example", "type": "A",
                           "ttl": "-5", "rdata": "10.1.1.1"})

    def test_adapt_many(self):
        adapter = DnsAdapter.from_config(DNS_CONFIG)
        rows = [
            {"timestamp": "1", "qname": "a.example", "type": "A", "ttl": "60",
             "rdata": "10.1.1.1"},
            {"timestamp": "1", "qname": "b.example", "type": "MX", "ttl": "60",
             "rdata": "m.example"},
            {"timestamp": "bad", "qname": "c.example", "type": "A", "ttl": "60",
             "rdata": "10.2.2.2"},
        ]
        records = list(adapter.adapt_many(rows))
        assert len(records) == 1
        assert adapter.stats.skipped_rtype == 1
        assert adapter.stats.malformed == 1


class TestLoadMapping:
    def test_both_sections(self):
        dns, flow = load_mapping({"dns": DNS_CONFIG, "flow": FLOW_CONFIG})
        assert dns is not None and flow is not None

    def test_single_section_ok(self):
        dns, flow = load_mapping({"dns": DNS_CONFIG})
        assert dns is not None and flow is None

    def test_empty_config_rejected(self):
        with pytest.raises(ConfigError):
            load_mapping({})

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "mapping.json"
        path.write_text(json.dumps({"dns": DNS_CONFIG, "flow": FLOW_CONFIG}))
        dns, flow = load_mapping_file(str(path))
        assert dns is not None and flow is not None

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "mapping.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_mapping_file(str(path))


class TestRowIterators:
    def test_iter_csv(self):
        handle = io.StringIO("a,b\n1,2\n3,4\n")
        rows = list(iter_csv(handle))
        assert rows == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]

    def test_iter_jsonl_skips_garbage(self):
        handle = io.StringIO('{"a": 1}\nnot json\n\n{"b": 2}\n[1,2]\n')
        rows = list(iter_jsonl(handle))
        assert rows == [{"a": 1}, {"b": 2}]
