"""Tests for DNS-over-TCP framing (the paper's resolver→collector path)."""

import pytest

from repro.dns.rr import RRType, a_record
from repro.dns.tcp import TcpFrameDecoder, frame_message, frame_messages, iter_framed
from repro.dns.wire import DnsMessage, Question, decode_message, encode_message
from repro.util.errors import ParseError


def _wire(name="x.example", ip="10.0.0.1"):
    msg = DnsMessage()
    msg.questions.append(Question(name, RRType.A))
    msg.answers.append(a_record(name, ip, 60))
    return encode_message(msg)


class TestFraming:
    def test_frame_prefixes_length(self):
        payload = b"hello"
        framed = frame_message(payload)
        assert framed == b"\x00\x05hello"

    def test_oversize_rejected(self):
        with pytest.raises(ParseError):
            frame_message(b"x" * 65536)

    def test_frame_messages_concatenates(self):
        stream = frame_messages([b"ab", b"cde"])
        assert stream == b"\x00\x02ab\x00\x03cde"


class TestDecoder:
    def test_whole_messages_in_one_chunk(self):
        wires = [_wire(f"h{i}.example", f"10.0.0.{i + 1}") for i in range(3)]
        decoder = TcpFrameDecoder()
        out = decoder.feed(frame_messages(wires))
        assert out == wires
        assert decoder.messages_out == 3
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        """A collector must survive arbitrarily mean chunk boundaries."""
        wires = [_wire("a.example"), _wire("b.example", "10.0.0.2")]
        stream = frame_messages(wires)
        decoder = TcpFrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == wires
        decoder.close()

    def test_split_inside_length_prefix(self):
        wire = _wire()
        stream = frame_message(wire)
        decoder = TcpFrameDecoder()
        assert decoder.feed(stream[:1]) == []
        assert decoder.feed(stream[1:]) == [wire]

    def test_zero_length_frame_skipped(self):
        decoder = TcpFrameDecoder()
        wire = _wire()
        out = decoder.feed(b"\x00\x00" + frame_message(wire))
        assert out == [wire]

    def test_truncated_close_raises(self):
        decoder = TcpFrameDecoder()
        decoder.feed(frame_message(_wire())[:5])
        with pytest.raises(ParseError):
            decoder.close()

    def test_clean_close_ok(self):
        decoder = TcpFrameDecoder()
        decoder.feed(frame_message(_wire()))
        decoder.close()


class TestIterFramed:
    def test_end_to_end_with_wire_decode(self):
        wires = [_wire(f"svc{i}.example", f"10.1.0.{i + 1}") for i in range(5)]
        stream = frame_messages(wires)
        chunks = [stream[i : i + 7] for i in range(0, len(stream), 7)]
        decoded = [decode_message(w) for w in iter_framed(chunks)]
        assert len(decoded) == 5
        assert str(decoded[2].answers[0].rdata) == "10.1.0.3"

    def test_truncated_tail_raises(self):
        stream = frame_messages([_wire()])[:-3]
        with pytest.raises(ParseError):
            list(iter_framed([stream]))
