"""Tests for DNS-over-TCP framing (the paper's resolver→collector path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.rr import RRType, a_record
from repro.dns.tcp import (
    MAX_MESSAGE_SIZE,
    TcpFrameDecoder,
    frame_message,
    frame_messages,
    iter_framed,
)
from repro.dns.wire import DnsMessage, Question, decode_message, encode_message
from repro.util.errors import ParseError


def _wire(name="x.example", ip="10.0.0.1"):
    msg = DnsMessage()
    msg.questions.append(Question(name, RRType.A))
    msg.answers.append(a_record(name, ip, 60))
    return encode_message(msg)


class TestFraming:
    def test_frame_prefixes_length(self):
        payload = b"hello"
        framed = frame_message(payload)
        assert framed == b"\x00\x05hello"

    def test_oversize_rejected(self):
        with pytest.raises(ParseError):
            frame_message(b"x" * 65536)

    def test_frame_messages_concatenates(self):
        stream = frame_messages([b"ab", b"cde"])
        assert stream == b"\x00\x02ab\x00\x03cde"


class TestDecoder:
    def test_whole_messages_in_one_chunk(self):
        wires = [_wire(f"h{i}.example", f"10.0.0.{i + 1}") for i in range(3)]
        decoder = TcpFrameDecoder()
        out = decoder.feed(frame_messages(wires))
        assert out == wires
        assert decoder.messages_out == 3
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        """A collector must survive arbitrarily mean chunk boundaries."""
        wires = [_wire("a.example"), _wire("b.example", "10.0.0.2")]
        stream = frame_messages(wires)
        decoder = TcpFrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == wires
        decoder.close()

    def test_split_inside_length_prefix(self):
        wire = _wire()
        stream = frame_message(wire)
        decoder = TcpFrameDecoder()
        assert decoder.feed(stream[:1]) == []
        assert decoder.feed(stream[1:]) == [wire]

    def test_zero_length_frame_skipped_but_counted(self):
        decoder = TcpFrameDecoder()
        wire = _wire()
        out = decoder.feed(b"\x00\x00" + frame_message(wire))
        assert out == [wire]
        # Not silently swallowed: the empty frame lands in a counter the
        # ingest layer surfaces as malformed input.
        assert decoder.empty_frames == 1
        assert decoder.messages_out == 1

    def test_zero_length_frame_split_across_feeds(self):
        decoder = TcpFrameDecoder()
        assert decoder.feed(b"\x00") == []
        assert decoder.feed(b"\x00") == []
        assert decoder.empty_frames == 1
        decoder.close()

    def test_truncated_close_raises(self):
        decoder = TcpFrameDecoder()
        decoder.feed(frame_message(_wire())[:5])
        with pytest.raises(ParseError):
            decoder.close()

    def test_clean_close_ok(self):
        decoder = TcpFrameDecoder()
        decoder.feed(frame_message(_wire()))
        decoder.close()


class TestDecoderProperty:
    """Randomized chunk boundaries: reassembly must be exact whatever the
    transport does — mid-length-prefix splits, 1-byte feeds, anything."""

    @given(
        payloads=st.lists(st.binary(min_size=0, max_size=120), min_size=1, max_size=12),
        cuts=st.lists(st.integers(min_value=0, max_value=2 ** 16), max_size=24),
    )
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_split_offsets(self, payloads, cuts):
        stream = frame_messages(payloads)
        offsets = sorted({min(c, len(stream)) for c in cuts} | {0, len(stream)})
        decoder = TcpFrameDecoder()
        out = []
        for start, end in zip(offsets, offsets[1:]):
            out.extend(decoder.feed(stream[start:end]))
        decoder.close()
        # Zero-length frames are legal but yield no message — and every
        # one is counted, whatever the chunk boundaries did to it.
        assert out == [p for p in payloads if p]
        assert decoder.messages_out == len(out)
        assert decoder.empty_frames == sum(1 for p in payloads if not p)
        assert decoder.pending_bytes == 0
        assert decoder.bytes_in == len(stream)

    @given(payloads=st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_one_byte_feeds(self, payloads):
        stream = frame_messages(payloads)
        decoder = TcpFrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        decoder.close()
        assert out == payloads

    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=6),
        trunc=st.integers(min_value=1, max_value=2 ** 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncated_tail_always_detected(self, payloads, trunc):
        stream = frame_messages(payloads)
        # Cut strictly inside the final frame (a cut on a frame boundary
        # is just a shorter, *valid* stream).
        last_frame = 2 + len(payloads[-1])
        trunc = 1 + (trunc - 1) % (last_frame - 1)
        decoder = TcpFrameDecoder()
        decoder.feed(stream[: len(stream) - trunc])
        with pytest.raises(ParseError):
            decoder.close()

    @given(
        cap=st.integers(min_value=1, max_value=512),
        over=st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=60, deadline=None)
    def test_corruption_cap_raises(self, cap, over):
        """A frame claiming more than max_message_size bytes is stream
        corruption, raised as ParseError from feed()."""
        claimed = min(cap + over, MAX_MESSAGE_SIZE)
        if claimed <= cap:
            return
        decoder = TcpFrameDecoder(max_message_size=cap)
        with pytest.raises(ParseError, match="corrupt"):
            decoder.feed(claimed.to_bytes(2, "big"))

    def test_valid_messages_before_corruption_survive(self):
        """A chunk holding [valid frame][oversized prefix] must hand back
        the valid message — corruption is reported on the *next* feed or
        on close, never by discarding already-framed messages."""
        decoder = TcpFrameDecoder(max_message_size=16)
        good = b"hello"
        out = decoder.feed(frame_message(good) + (999).to_bytes(2, "big"))
        assert out == [good]
        assert decoder.messages_out == 1
        with pytest.raises(ParseError, match="corrupt"):
            decoder.feed(b"more")
        with pytest.raises(ParseError, match="corrupt"):
            decoder.close()

    def test_cap_boundary_accepts_exact_size(self):
        decoder = TcpFrameDecoder(max_message_size=8)
        payload = b"x" * 8
        assert decoder.feed(frame_message(payload)) == [payload]

    def test_default_cap_is_unreachable_by_wire_prefix(self):
        """The 16-bit length prefix cannot exceed the default cap, so the
        default decoder never rejects a legal stream."""
        decoder = TcpFrameDecoder()
        payload = b"y" * MAX_MESSAGE_SIZE
        assert decoder.feed(frame_message(payload)) == [payload]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ParseError):
            TcpFrameDecoder(max_message_size=0)
        with pytest.raises(ParseError):
            TcpFrameDecoder(max_message_size=MAX_MESSAGE_SIZE + 1)


class TestEmptyFrameAccounting:
    """Zero-length frames must be counted under *any* chunking, and the
    ingest layer must surface them as malformed input — the silent-drop
    regression the chaos truncation profile exposed."""

    @given(
        payloads=st.lists(st.binary(min_size=0, max_size=60), min_size=1, max_size=10),
        cuts=st.lists(st.integers(min_value=0, max_value=2 ** 12), max_size=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_empty_frames_counted_under_arbitrary_splits(self, payloads, cuts):
        stream = frame_messages(payloads)
        offsets = sorted({min(c, len(stream)) for c in cuts} | {0, len(stream)})
        decoder = TcpFrameDecoder()
        for start, end in zip(offsets, offsets[1:]):
            decoder.feed(stream[start:end])
        decoder.close()
        assert decoder.empty_frames == sum(1 for p in payloads if not p)
        assert decoder.messages_out == sum(1 for p in payloads if p)

    def test_ingest_surfaces_empty_frames_as_malformed(self):
        from repro.core.async_engine import TcpDnsIngest

        class FakeBuffer:
            def __init__(self):
                self.items = []

            def try_put(self, item):
                self.items.append(item)
                return True

        ingest = TcpDnsIngest(clock=lambda: 1.0)
        buffer = FakeBuffer()
        ingest.connect_buffer(buffer)
        decoder = TcpFrameDecoder()
        wire = _wire()
        assert ingest.feed_chunk(
            decoder, b"\x00\x00" + frame_message(wire) + b"\x00\x00"
        )
        assert ingest.ingest_stats.malformed == 2
        assert ingest.ingest_stats.received == 1
        assert ingest.ingest_stats.accepted == 1
        assert buffer.items == [(1.0, wire)]


class TestIterFramed:
    def test_end_to_end_with_wire_decode(self):
        wires = [_wire(f"svc{i}.example", f"10.1.0.{i + 1}") for i in range(5)]
        stream = frame_messages(wires)
        chunks = [stream[i : i + 7] for i in range(0, len(stream), 7)]
        decoded = [decode_message(w) for w in iter_framed(chunks)]
        assert len(decoded) == 5
        assert str(decoded[2].answers[0].rdata) == "10.1.0.3"

    def test_truncated_tail_raises(self):
        stream = frame_messages([_wire()])[:-3]
        with pytest.raises(ParseError):
            list(iter_framed([stream]))
