"""Shared test helper: deterministic flow gating for the live engines.

(Not a conftest: ``benchmarks/`` has its own conftest module, and a bare
``from conftest import ...`` resolves to whichever loaded first when both
suites are collected together.)
"""

from __future__ import annotations

from repro.core.engine import gated_flow_source


def gated_flows(engine, items, timeout=30.0):
    """Flow source that waits for the engine's DNS fill to finish.

    Thin wrapper over :func:`repro.core.engine.gated_flow_source` with a
    test-friendly timeout.
    """
    return gated_flow_source(engine, items, timeout=timeout, poll=0.002)
