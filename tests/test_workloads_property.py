"""Property-based tests on workload invariants.

The whole evaluation rests on the workload generators; these properties
must hold for *any* seed, not just the benchmarks' pinned ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.cdn import CdnHosting, default_providers
from repro.workloads.domains import build_universe
from repro.workloads.isp import IspWorkload
from repro.workloads.ttl_model import TtlModel

_seed = st.integers(min_value=0, max_value=2**31 - 1)


def _small_workload(seed):
    universe = build_universe(seed, n_benign=60)
    hosting = CdnHosting(universe, default_providers(), seed=seed, ttl_model=TtlModel())
    return IspWorkload(
        universe, hosting, seed=seed, duration=600.0, resolution_rate=1.5, warmup=300.0
    )


@given(_seed)
@settings(max_examples=10, deadline=None)
def test_streams_time_ordered_for_any_seed(seed):
    workload = _small_workload(seed)
    dns = list(workload.dns_records())
    flows = list(workload.flow_records())
    assert all(a.ts <= b.ts for a, b in zip(dns, dns[1:]))
    assert all(a.ts <= b.ts for a, b in zip(flows, flows[1:]))


@given(_seed)
@settings(max_examples=10, deadline=None)
def test_streams_reproducible_for_any_seed(seed):
    a = _small_workload(seed)
    b = _small_workload(seed)
    assert list(a.dns_records()) == list(b.dns_records())
    assert list(a.flow_records()) == list(b.flow_records())


@given(_seed)
@settings(max_examples=10, deadline=None)
def test_flow_bounds_for_any_seed(seed):
    workload = _small_workload(seed)
    end = workload.t0 + workload.duration
    for flow in workload.flow_records():
        assert workload.t0 <= flow.ts < end
        assert flow.bytes_ >= 0
        assert 0 <= flow.src_port <= 65535


@given(_seed)
@settings(max_examples=10, deadline=None)
def test_dns_records_well_formed_for_any_seed(seed):
    workload = _small_workload(seed)
    for record in workload.dns_records():
        assert record.ttl >= 0
        assert record.query
        assert record.answer
        assert record.is_address or record.is_cname


@given(_seed)
@settings(max_examples=6, deadline=None)
def test_universe_invariants_for_any_seed(seed):
    universe = build_universe(seed, n_benign=80)
    names = [s.name for s in universe.services]
    assert len(names) == len(set(names))  # unique names
    assert all(s.popularity >= 0 and s.byte_weight >= 0 for s in universe.services)
    # Streaming anchors always present.
    assert "s1-streaming.tv" in names and "s2-streaming.tv" in names
    # Abuse universe non-empty, byte share small.
    abuse_bytes = sum(s.byte_weight for s in universe.services if s.category != "benign")
    total = sum(s.byte_weight for s in universe.services)
    assert 0 < abuse_bytes / total < 0.02


@given(_seed, st.integers(min_value=2, max_value=6))
@settings(max_examples=8, deadline=None)
def test_stream_sharding_partitions_for_any_seed(seed, n_shards):
    workload = _small_workload(seed)
    total = sum(1 for _ in workload.dns_records())
    sharded = sum(1 for shard in workload.dns_record_streams(n_shards) for _ in shard)
    assert sharded == total
