"""Tests for repro.util.units."""

import pytest

from repro.util.units import GIB, KIB, MIB, format_bytes, format_rate, parse_duration


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2 * KIB) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(1.5 * MIB) == "1.5 MiB"

    def test_gib(self):
        assert format_bytes(30 * GIB) == "30.0 GiB"

    def test_negative(self):
        assert format_bytes(-GIB) == "-1.0 GiB"


class TestFormatRate:
    def test_plain(self):
        assert format_rate(42) == "42 rec/s"

    def test_kilo(self):
        assert format_rate(75_000) == "75.0K rec/s"

    def test_mega(self):
        assert format_rate(1_000_000) == "1.0M rec/s"


class TestParseDuration:
    def test_bare_number_is_seconds(self):
        assert parse_duration(90) == 90.0
        assert parse_duration("90") == 90.0

    def test_units(self):
        assert parse_duration("250ms") == 0.25
        assert parse_duration("2m") == 120.0
        assert parse_duration("1.5h") == 5400.0
        assert parse_duration("1d") == 86400.0
        assert parse_duration("1w") == 604800.0

    def test_whitespace_tolerated(self):
        assert parse_duration("  3 h ") == 10800.0

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_duration("soon")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_duration(-5)
