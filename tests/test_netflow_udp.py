"""Tests for the UDP flow source (loopback sockets)."""

import socket
import threading
import time

import pytest

from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowBatch, FlowRecord
from repro.netflow.udp import UdpFlowSource, send_datagrams


def _flows(n):
    return [
        FlowRecord(ts=1000.0 + i, src_ip=f"10.3.0.{i + 1}", dst_ip="192.168.1.1",
                   src_port=443, dst_port=50000 + i, bytes_=100 * (i + 1))
        for i in range(n)
    ]


def _collect_flows(source, expected, received):
    """Drain ``source`` until ``expected`` flows arrived, then stop it."""
    for item in source:
        if isinstance(item, FlowBatch):
            received.extend(item.record(i) for i in range(len(item)))
        else:
            received.append(item)
        if len(received) >= expected:
            source.stop()


class TestUdpFlowSource:
    def test_receives_and_decodes_columnar_batches(self):
        """The default lane yields FlowBatch items, one per data datagram."""
        flows = _flows(12)
        datagrams = list(FlowExporter(version=9, batch_size=6).export(flows))
        with UdpFlowSource() as source:
            sender = threading.Thread(
                target=send_datagrams, args=(datagrams, source.address)
            )
            received = []
            batches = []

            def consume():
                for batch in source:
                    assert isinstance(batch, FlowBatch)
                    batches.append(batch)
                    received.extend(batch.record(i) for i in range(len(batch)))
                    if len(received) == len(flows):
                        source.stop()

            consumer = threading.Thread(target=consume)
            consumer.start()
            sender.start()
            sender.join(timeout=5.0)
            consumer.join(timeout=5.0)
            assert not consumer.is_alive()
            stats = source.ingest_stats
        assert len(received) == 12
        assert len(batches) == 2  # template datagram yields nothing
        assert {str(f.src_ip) for f in received} == {str(f.src_ip) for f in flows}
        assert stats.received == len(datagrams)
        assert stats.accepted == 2
        assert stats.bytes_in == sum(len(d) for d in datagrams)

    def test_yield_records_escape_hatch(self):
        """yield_records=True restores per-record object iteration."""
        flows = _flows(5)
        datagrams = list(FlowExporter(version=5, batch_size=5).export(flows))
        with UdpFlowSource(yield_records=True) as source:
            send_datagrams(datagrams, source.address)
            received = []
            consumer = threading.Thread(
                target=_collect_flows, args=(source, len(flows), received)
            )
            consumer.start()
            consumer.join(timeout=5.0)
            assert not consumer.is_alive()
        assert all(isinstance(f, FlowRecord) for f in received)
        assert [str(f.src_ip) for f in received] == [str(f.src_ip) for f in flows]
        assert source.ingest_stats.accepted == 5

    def test_garbage_datagrams_counted_not_fatal(self):
        with UdpFlowSource() as source:
            send_datagrams([b"\xff" * 20], source.address)
            datagram = source.recv_once()
            assert datagram is not None
            assert source.collector.ingest(datagram) == []
            assert source.collector.stats.unknown_version + source.collector.stats.malformed == 1
            assert source.ingest_stats.received == 1

    def test_recv_once_times_out(self):
        with UdpFlowSource(recv_timeout=0.05) as source:
            assert source.recv_once() is None

    def test_capture_tee_records_datagrams_pre_decode(self, tmp_path):
        """The capture tap records every received datagram as raw wire
        bytes — malformed input included — so a replay reproduces the
        original run's malformed counters too."""
        from repro.replay.capture import LANE_FLOW, CaptureWriter, load_capture

        path = str(tmp_path / "udp-tee.fdc")
        datagrams = list(
            FlowExporter(version=9, batch_size=4).export(_flows(8))
        ) + [b"\xff" * 20]
        writer = CaptureWriter(path)
        with UdpFlowSource(capture=writer) as source:
            send_datagrams(datagrams, source.address)
            seen = []
            deadline = time.monotonic() + 10.0
            while len(seen) < len(datagrams):
                assert time.monotonic() < deadline, "datagrams lost on loopback"
                datagram = source.recv_once()
                if datagram is not None:
                    seen.append(datagram)
        writer.close()
        frames = load_capture(path)
        assert [f.lane for f in frames] == [LANE_FLOW] * len(datagrams)
        assert [f.payload for f in frames] == datagrams

    def test_stop_terminates_iteration(self):
        with UdpFlowSource(recv_timeout=0.05) as source:
            collected = []

            def consume():
                collected.extend(source)

            t = threading.Thread(target=consume)
            t.start()
            source.stop()
            t.join(timeout=2.0)
            assert not t.is_alive()
            assert collected == []

    def test_stop_wakes_blocked_recv_immediately(self):
        """stop() must close the socket and wake recvfrom, not wait out
        recv_timeout (regression: the old stop() only set a flag, so a
        blocked iterator lingered for up to recv_timeout seconds)."""
        source = UdpFlowSource(recv_timeout=30.0)
        consumer = threading.Thread(target=lambda: list(source))
        consumer.start()
        time.sleep(0.05)  # let the consumer block in recvfrom
        start = time.monotonic()
        source.stop()
        consumer.join(timeout=5.0)
        elapsed = time.monotonic() - start
        assert not consumer.is_alive()
        assert elapsed < 5.0  # far below the 30s recv_timeout
        # The wake datagram is plumbing, not traffic: counters stay clean.
        assert source.ingest_stats.received == 0
        assert source.ingest_stats.malformed == 0

    def test_double_stop_and_iterate_after_stop_are_safe(self):
        source = UdpFlowSource()
        address = source.address
        source.stop()
        source.stop()  # idempotent
        assert list(source) == []  # iterating a stopped source yields nothing
        assert source.recv_once() is None
        assert source.address == address  # address survives the close
        source.close()  # close after stop is also safe

    def test_ephemeral_port_assigned(self):
        with UdpFlowSource() as source:
            host, port = source.address
            assert host == "127.0.0.1"
            assert port > 0

    def test_ipv6_bind_and_receive(self):
        try:
            source = UdpFlowSource(bind_addr=("::1", 0))
        except OSError:
            pytest.skip("IPv6 loopback unavailable")
        with source:
            host, port = source.address
            assert host == "::1"
            flows = _flows(3)
            datagrams = list(FlowExporter(version=9, batch_size=3).export(flows))
            send_datagrams(datagrams, source.address)
            received = []
            consumer = threading.Thread(
                target=_collect_flows, args=(source, len(flows), received)
            )
            consumer.start()
            consumer.join(timeout=5.0)
            assert not consumer.is_alive()
        assert len(received) == 3

    def test_dual_stack_wildcard_bind(self):
        try:
            source = UdpFlowSource(bind_addr=("::", 0))
        except OSError:
            pytest.skip("IPv6 wildcard unavailable")
        with source:
            port = source.address[1]
            # An IPv4 sender reaches the dual-stack socket via loopback.
            flows = _flows(2)
            datagrams = list(FlowExporter(version=5, batch_size=2).export(flows))
            try:
                send_datagrams(datagrams, ("127.0.0.1", port))
            except OSError:
                pytest.skip("dual-stack v4-mapped delivery unavailable")
            received = []
            consumer = threading.Thread(
                target=_collect_flows, args=(source, len(flows), received)
            )
            consumer.start()
            consumer.join(timeout=5.0)
            source.stop()
            consumer.join(timeout=1.0)
            assert not consumer.is_alive()
        assert len(received) == 2

    def test_bad_bind_address_raises(self):
        with pytest.raises((OSError, socket.gaierror)):
            UdpFlowSource(bind_addr=("definitely-not-a-host.invalid", 0))
