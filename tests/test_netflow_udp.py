"""Tests for the UDP flow source (loopback sockets)."""

import threading

from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.netflow.udp import UdpFlowSource, send_datagrams


def _flows(n):
    return [
        FlowRecord(ts=1000.0 + i, src_ip=f"10.3.0.{i + 1}", dst_ip="192.168.1.1",
                   src_port=443, dst_port=50000 + i, bytes_=100 * (i + 1))
        for i in range(n)
    ]


class TestUdpFlowSource:
    def test_receives_and_decodes_datagrams(self):
        flows = _flows(12)
        datagrams = list(FlowExporter(version=9, batch_size=6).export(flows))
        with UdpFlowSource() as source:
            sender = threading.Thread(
                target=send_datagrams, args=(datagrams, source.address)
            )
            received = []

            def consume():
                for flow in source:
                    received.append(flow)
                    if len(received) == len(flows):
                        source.stop()

            consumer = threading.Thread(target=consume)
            consumer.start()
            sender.start()
            sender.join(timeout=5.0)
            consumer.join(timeout=5.0)
            assert not consumer.is_alive()
        assert len(received) == 12
        assert {str(f.src_ip) for f in received} == {str(f.src_ip) for f in flows}

    def test_garbage_datagrams_counted_not_fatal(self):
        with UdpFlowSource() as source:
            send_datagrams([b"\xff" * 20], source.address)
            datagram = source.recv_once()
            assert datagram is not None
            assert source.collector.ingest(datagram) == []
            assert source.collector.stats.unknown_version + source.collector.stats.malformed == 1

    def test_recv_once_times_out(self):
        with UdpFlowSource(recv_timeout=0.05) as source:
            assert source.recv_once() is None

    def test_stop_terminates_iteration(self):
        with UdpFlowSource(recv_timeout=0.05) as source:
            collected = []

            def consume():
                collected.extend(source)

            t = threading.Thread(target=consume)
            t.start()
            source.stop()
            t.join(timeout=2.0)
            assert not t.is_alive()
            assert collected == []

    def test_ephemeral_port_assigned(self):
        with UdpFlowSource() as source:
            host, port = source.address
            assert host == "127.0.0.1"
            assert port > 0
