"""Unit tests for the columnar DNS fill lane's building blocks.

:class:`repro.dns.columnar.DnsBatch` container semantics,
``DnsStorage.add_many_columns`` edge cases (empty batch, all-invalid
batch, exact-TTL store routing, eviction caps), and the unknown-RR
tolerance PR 9 added to the object decoder (skip-and-count instead of
ParseError for rtype/rclass outside the enums — structural bounds
violations still raise).
"""

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.storage_adapter import DnsStorage
from repro.dns.columnar import DnsBatch, decode_fill_columns
from repro.dns.rr import RClass, RRType, ResourceRecord
from repro.dns.stream import DnsRecord
from repro.dns.wire import (
    DnsMessage,
    Header,
    Question,
    decode_message,
    encode_message,
)
from repro.util.errors import ParseError


def _response(name="svc.example", answers=(), additionals=()):
    return DnsMessage(
        questions=[Question(name, RRType.A, RClass.IN)],
        answers=list(answers),
        additionals=list(additionals),
    )


def _a(owner, ip_bytes, ttl=300):
    return ResourceRecord(owner, RRType.A, RClass.IN, ttl, ip_bytes)


class TestDnsBatch:
    def test_append_and_rehydrate(self):
        batch = DnsBatch()
        assert len(batch) == 0
        batch.append_row(10.0, "a.example", int(RRType.A), 60, "192.0.2.1")
        batch.append_row(11.0, "b.example", int(RRType.CNAME), 90, "a.example")
        assert len(batch) == 2
        rec = batch.record(1)
        assert rec == DnsRecord(11.0, "b.example", RRType.CNAME, 90, "a.example")
        assert batch.to_records() == [batch.record(0), batch.record(1)]

    def test_columns_round_trip_includes_counters(self):
        batch = DnsBatch()
        batch.append_row(1.0, "x.example", int(RRType.A), 5, "192.0.2.9")
        batch.messages, batch.invalid, batch.unknown_records = 7, 2, 3
        clone = DnsBatch.from_columns(batch.columns())
        assert clone.to_records() == batch.to_records()
        assert (clone.messages, clone.invalid, clone.unknown_records) == (7, 2, 3)

    def test_extend_folds_counters_append_from_does_not(self):
        a, b = DnsBatch(), DnsBatch()
        a.messages, a.invalid, a.unknown_records = 1, 1, 0
        b.append_row(2.0, "y.example", int(RRType.A), 5, "192.0.2.8")
        b.messages, b.invalid, b.unknown_records = 4, 2, 5
        a.extend(b)
        assert (a.messages, a.invalid, a.unknown_records) == (5, 3, 5)
        assert len(a) == 1
        c = DnsBatch()
        c.append_from(b, 0)  # row copy only: counters stay zero
        assert len(c) == 1 and c.record(0) == b.record(0)
        assert (c.messages, c.invalid, c.unknown_records) == (0, 0, 0)

    def test_scalar_and_sequence_timestamps(self):
        wire = encode_message(_response(answers=[_a("svc.example", b"\n\x00\x00\x01")]))
        scalar = decode_fill_columns([wire, wire], 50.0)
        assert scalar.ts == [50.0, 50.0]
        spread = decode_fill_columns([wire, wire], [50.0, 51.0])
        assert spread.ts == [50.0, 51.0]

    def test_empty_payloads(self):
        batch = decode_fill_columns([], 1.0)
        assert len(batch) == 0
        assert (batch.messages, batch.invalid, batch.unknown_records) == (0, 0, 0)


class TestAddManyColumns:
    def test_empty_batch_is_a_noop(self):
        storage = DnsStorage(FlowDNSConfig())
        storage.add_many_columns(DnsBatch())
        assert storage.total_entries() == 0

    def test_all_invalid_batch_stores_nothing_but_counts(self):
        payloads = [b"", b"\x00\x01", b"garbage"]
        batch = decode_fill_columns(payloads, 1.0)
        assert len(batch) == 0
        assert batch.invalid == batch.messages == len(payloads)
        storage = DnsStorage(FlowDNSConfig())
        processor = FillUpProcessor(storage)
        processor.process_columns(batch)
        assert storage.total_entries() == 0
        assert processor.stats.raw_messages == 3
        assert processor.stats.invalid == 3
        assert processor.stats.records_stored == 0

    def test_exact_ttl_store_routing(self):
        storage = DnsStorage(FlowDNSConfig(exact_ttl=True))
        batch = DnsBatch()
        batch.append_row(100.0, "svc.example", int(RRType.A), 10, "10.1.1.1")
        batch.append_row(100.0, "www.example", int(RRType.CNAME), 10, "svc.example")
        storage.add_many_columns(batch)
        # Inside the TTL both maps answer; past it the exact store
        # expires. The CNAME map is the reverse mapping (answer → query):
        # looking up the chain *target* yields the name that pointed at it.
        assert storage.lookup_ip("10.1.1.1", 105.0) == "svc.example"
        assert storage.lookup_cname("svc.example", 105.0) == "www.example"
        assert storage.lookup_ip("10.1.1.1", 111.0) is None
        assert storage.lookup_cname("svc.example", 111.0) is None

    def test_rotating_store_routing(self):
        storage = DnsStorage(FlowDNSConfig())
        batch = DnsBatch()
        batch.append_row(100.0, "svc.example", int(RRType.AAAA), 300, "2001:db8::7")
        batch.append_row(100.0, "www.example", int(RRType.CNAME), 300, "svc.example")
        storage.add_many_columns(batch)
        assert storage.lookup_ip("2001:db8::7", 101.0) == "svc.example"
        assert storage.lookup_cname("svc.example", 101.0) == "www.example"

    def test_eviction_counters_under_entry_cap(self):
        cap = 8
        storage = DnsStorage(FlowDNSConfig(max_entries_per_map=cap))
        batch = DnsBatch()
        for i in range(200):
            batch.append_row(float(i), f"svc{i}.example", int(RRType.A),
                             300, f"10.2.{i // 250}.{i % 250 + 1}")
        storage.add_many_columns(batch)
        evicted = storage.evictions()
        assert evicted > 0
        # The bound holds per constituent map, so the total stays well
        # under the un-capped 200 and eviction accounting balances.
        total = storage.total_entries()
        assert total < 200
        assert total + evicted == 200


class TestUnknownRRTolerance:
    def test_unknown_rtype_skips_and_counts(self):
        msg = _response(
            answers=[
                _a("svc.example", b"\n\x00\x00\x01"),
                ResourceRecord("svc.example", 65, RClass.IN, 60, b"\x00\x01"),
                _a("svc.example", b"\n\x00\x00\x02"),
            ]
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.unknown_records == 1
        assert [str(rr.rdata) for rr in decoded.answers] == [
            "10.0.0.1", "10.0.0.2"
        ]

    def test_unknown_rclass_skips_and_counts(self):
        opt = ResourceRecord(".", RRType.OPT, 4096, 0, b"")
        decoded = decode_message(encode_message(_response(additionals=[opt])))
        assert decoded.unknown_records == 1
        assert decoded.additionals == []

    def test_unknown_rr_overrunning_rdata_still_raises(self):
        wire = encode_message(
            _response(answers=[
                ResourceRecord("svc.example", 65, RClass.IN, 60, b"abcdef")
            ])
        )
        with pytest.raises(ParseError):
            decode_message(wire[:-3])  # rdlength now overruns the message

    def test_tolerance_counted_only_for_noerror_responses(self):
        unknown = ResourceRecord("svc.example", 65, RClass.IN, 60, b"\x00")
        query = DnsMessage(header=Header(qr=False),
                           questions=[Question("svc.example", RRType.A)],
                           answers=[unknown])
        refused = DnsMessage(header=Header(rcode=3),
                             questions=[Question("svc.example", RRType.A)],
                             answers=[unknown])
        processor = FillUpProcessor(DnsStorage(FlowDNSConfig()))
        for msg in (query, refused):
            assert processor.filter_message(1.0, encode_message(msg)) == []
        assert processor.stats.records_unknown_type == 0
        assert processor.stats.invalid == 2

    def test_columnar_counts_match_object_counts(self):
        wire = encode_message(
            _response(
                answers=[
                    _a("svc.example", b"\n\x00\x00\x03"),
                    ResourceRecord("svc.example", 65, RClass.IN, 60, b"\x00"),
                ],
                additionals=[ResourceRecord(".", RRType.OPT, 4096, 0, b"")],
            )
        )
        batch = decode_fill_columns([wire], 1.0)
        assert batch.unknown_records == 2
        assert batch.invalid == 0
        assert len(batch) == 1
        decoded = decode_message(wire)
        assert decoded.unknown_records == 2
