"""Tests for repro.dns.name (RFC 1035 name codec)."""

import pytest

from repro.dns.name import (
    NameCompressor,
    decode_name,
    encode_name,
    labels_of,
    normalize_name,
)
from repro.util.errors import ParseError


class TestNormalizeName:
    def test_lowercases(self):
        assert normalize_name("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize_name("example.com.") == "example.com"

    def test_root_stays_root(self):
        assert normalize_name(".") == "."
        assert normalize_name("") == "."

    def test_strips_whitespace(self):
        assert normalize_name("  a.b  ") == "a.b"


class TestLabelsOf:
    def test_splits(self):
        assert labels_of("a.b.c.com") == ["a", "b", "c", "com"]

    def test_root_is_empty(self):
        assert labels_of(".") == []


class TestEncodeName:
    def test_simple_name(self):
        assert encode_name("ab.c") == b"\x02ab\x01c\x00"

    def test_root(self):
        assert encode_name(".") == b"\x00"

    def test_label_too_long_raises(self):
        with pytest.raises(ParseError):
            encode_name("a" * 64 + ".com")

    def test_63_byte_label_ok(self):
        wire = encode_name("a" * 63 + ".com")
        assert wire[0] == 63

    def test_name_too_long_raises(self):
        name = ".".join(["a" * 60] * 5)  # 305 bytes encoded
        with pytest.raises(ParseError):
            encode_name(name)

    def test_empty_interior_label_raises(self):
        with pytest.raises(ParseError):
            encode_name("a..b")


class TestDecodeName:
    def test_round_trip(self):
        for name in ("example.com", "a.b.c.d.e", "x.y", "."):
            wire = encode_name(name)
            decoded, offset = decode_name(wire, 0)
            assert decoded == normalize_name(name)
            assert offset == len(wire)

    def test_preserves_case_insensitivity(self):
        decoded, _ = decode_name(encode_name("WWW.EXAMPLE.COM"), 0)
        assert decoded == "www.example.com"

    def test_pointer_followed(self):
        # "example.com" at 0, then a name "www" + pointer to 0.
        base = encode_name("example.com")
        buf = base + b"\x03www" + bytes([0xC0, 0x00])
        decoded, offset = decode_name(buf, len(base))
        assert decoded == "www.example.com"
        assert offset == len(buf)

    def test_pointer_loop_raises(self):
        # pointer at 2 → 0, label at 0 followed by pointer back to 0.
        buf = b"\x01a" + bytes([0xC0, 0x00])
        # offset 0: label 'a' then pointer to 0 → loop over itself
        with pytest.raises(ParseError):
            decode_name(buf, 0)

    def test_forward_pointer_raises(self):
        buf = bytes([0xC0, 0x04, 0, 0, 0])
        with pytest.raises(ParseError):
            decode_name(buf, 0)

    def test_truncated_label_raises(self):
        with pytest.raises(ParseError):
            decode_name(b"\x05ab", 0)

    def test_truncated_pointer_raises(self):
        with pytest.raises(ParseError):
            decode_name(bytes([0xC0]), 0)

    def test_reserved_label_type_raises(self):
        with pytest.raises(ParseError):
            decode_name(bytes([0x80, 0x01]), 0)

    def test_missing_terminator_raises(self):
        with pytest.raises(ParseError):
            decode_name(b"\x01a", 0)


class TestNameCompressor:
    def test_first_occurrence_uncompressed(self):
        comp = NameCompressor()
        wire = comp.encode("a.example.com", 0)
        assert wire == encode_name("a.example.com")

    def test_second_occurrence_is_pointer(self):
        comp = NameCompressor()
        first = comp.encode("example.com", 0)
        second = comp.encode("example.com", len(first))
        assert len(second) == 2
        assert second[0] & 0xC0 == 0xC0

    def test_suffix_sharing(self):
        comp = NameCompressor()
        first = comp.encode("example.com", 0)
        www = comp.encode("www.example.com", len(first))
        # 'www' label (4 bytes) + 2-byte pointer
        assert len(www) == 6

    def test_pointer_round_trips_through_decoder(self):
        comp = NameCompressor()
        buf = bytearray()
        buf += comp.encode("cdn.example.net", 0)
        second_start = len(buf)
        buf += comp.encode("edge.cdn.example.net", second_start)
        name, _ = decode_name(bytes(buf), second_start)
        assert name == "edge.cdn.example.net"
