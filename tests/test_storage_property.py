"""Property-based tests for the storage layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.concurrent_map import ConcurrentMap
from repro.storage.rotating import StoreBank

_key = st.text(min_size=1, max_size=24)
_value = st.text(min_size=1, max_size=24)


@given(st.dictionaries(_key, _value, max_size=60), st.integers(min_value=1, max_value=64))
@settings(max_examples=50)
def test_concurrent_map_behaves_like_dict(entries, shards):
    cmap = ConcurrentMap(shard_count=shards)
    for k, v in entries.items():
        cmap.set(k, v)
    assert len(cmap) == len(entries)
    for k, v in entries.items():
        assert cmap.get(k) == v
        assert k in cmap
    assert cmap.snapshot() == entries


@given(st.lists(st.tuples(_key, _value), min_size=1, max_size=80))
@settings(max_examples=50)
def test_concurrent_map_last_write_wins(writes):
    cmap = ConcurrentMap(shard_count=8)
    expected = {}
    for k, v in writes:
        cmap.set(k, v)
        expected[k] = v
    assert cmap.snapshot() == expected


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),  # label
            _key,
            _value,
            st.integers(min_value=0, max_value=10_000),  # ttl
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50)
def test_store_bank_lookup_finds_last_put_before_any_clear(puts):
    """Without clear-ups, the bank is exactly a per-split last-write-wins map."""
    bank = StoreBank(clear_up_interval=1e9, num_splits=4, shard_count=4)
    expected = {}
    for ts, (label, key, value, ttl) in enumerate(puts):
        bank.put(label, key, value, ttl=ttl, ts=float(ts))
        expected[(label % 4, key, ttl >= 1e9)] = value
    for (split, key, _is_long), value in expected.items():
        found, _tier = bank.deep_lookup(split, key)
        assert found == value


@given(st.lists(st.tuples(_key, _value), min_size=1, max_size=40))
@settings(max_examples=30)
def test_rotation_preserves_exactly_one_generation(puts):
    bank = StoreBank(clear_up_interval=100.0, num_splits=1, shard_count=4)
    for key, value in puts:
        bank.put(0, key, value, ttl=1, ts=0.0)
    generation = {k: v for k, v in puts}
    bank.force_clear_up()
    # Everything from the pre-rotation generation is in Inactive.
    for key, value in generation.items():
        found, tier = bank.deep_lookup(0, key)
        assert found == value and tier.value == "inactive"
    bank.force_clear_up()
    for key in generation:
        assert bank.deep_lookup(0, key) == (None, None)


@given(
    st.lists(
        st.tuples(_key, st.integers(min_value=0, max_value=2000)),
        min_size=1,
        max_size=50,
    ),
    st.floats(min_value=0, max_value=3000),
)
@settings(max_examples=50)
def test_exact_ttl_store_never_serves_expired(puts, now):
    from repro.storage.exact_ttl import ExactTtlStore

    store = ExactTtlStore(num_splits=2)
    latest = {}
    for key, ttl in puts:
        store.put(0, key, f"v-{ttl}", ttl=ttl, ts=0.0)
        latest[key] = ttl
    for key, ttl in latest.items():
        result = store.lookup(0, key, now=now)
        if ttl >= now:
            assert result == f"v-{ttl}"
        else:
            assert result is None
