"""Tests for repro.dns.stream and repro.dns.ttl."""

import pytest

from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord, is_address_type, records_from_message
from repro.dns.ttl import (
    CANONICAL_TTL_TICKS,
    address_fraction_below,
    combined_fraction_below,
    summarize_ttls,
)
from repro.dns.wire import DnsMessage, Header, Question, Rcode
from repro.dns.rr import a_record, cname_record


class TestDnsRecord:
    def test_normalizes_query(self):
        rec = DnsRecord(1.0, "WWW.Example.COM", RRType.A, 60, "1.2.3.4")
        assert rec.query == "www.example.com"

    def test_cname_answer_normalized(self):
        rec = DnsRecord(1.0, "a.example", RRType.CNAME, 60, "CDN.Example.NET")
        assert rec.answer == "cdn.example.net"

    def test_a_answer_left_verbatim(self):
        rec = DnsRecord(1.0, "a.example", RRType.A, 60, "1.2.3.4")
        assert rec.answer == "1.2.3.4"

    def test_is_address_flags(self):
        assert DnsRecord(0, "q", RRType.A, 1, "1.1.1.1").is_address
        assert DnsRecord(0, "q", RRType.AAAA, 1, "::1").is_address
        assert DnsRecord(0, "q", RRType.CNAME, 1, "t").is_cname

    def test_is_address_type(self):
        assert is_address_type(RRType.A) and is_address_type(RRType.AAAA)
        assert not is_address_type(RRType.CNAME)


class TestRecordsFromMessage:
    def _chain_message(self):
        msg = DnsMessage()
        msg.questions.append(Question("www.svc.com", RRType.A))
        msg.answers = [
            cname_record("www.svc.com", "edge.cdn.net", 300),
            a_record("edge.cdn.net", "10.9.9.9", 60),
        ]
        return msg

    def test_flattens_per_answer(self):
        records = records_from_message(5.0, self._chain_message())
        assert len(records) == 2
        cname, a = records
        assert cname.is_cname and cname.query == "www.svc.com" and cname.answer == "edge.cdn.net"
        assert a.is_address and a.query == "edge.cdn.net" and a.answer == "10.9.9.9"
        assert all(r.ts == 5.0 for r in records)

    def test_query_message_filtered(self):
        msg = self._chain_message()
        msg.header = Header(qr=False)
        assert records_from_message(0.0, msg) == []

    def test_error_rcode_filtered(self):
        msg = self._chain_message()
        msg.header = Header(qr=True, rcode=Rcode.NXDOMAIN)
        assert records_from_message(0.0, msg) == []

    def test_empty_answers_filtered(self):
        msg = DnsMessage()
        msg.questions.append(Question("x.example", RRType.A))
        assert records_from_message(0.0, msg) == []


class TestTtlSummary:
    def _records(self):
        out = []
        for i, ttl in enumerate([60, 120, 300, 600, 3600]):
            out.append(DnsRecord(float(i), f"a{i}.example", RRType.A, ttl, f"10.0.0.{i}"))
        for i, ttl in enumerate([300, 1800, 7200]):
            out.append(DnsRecord(float(i), f"c{i}.example", RRType.CNAME, ttl, f"t{i}.example"))
        return out

    def test_counts_per_type(self):
        summary = summarize_ttls(self._records())
        assert summary.counts[RRType.A] == 5
        assert summary.counts[RRType.CNAME] == 3

    def test_fraction_below(self):
        summary = summarize_ttls(self._records())
        assert summary.fraction_below(RRType.A, 300) == 3 / 5
        assert summary.fraction_below(RRType.CNAME, 300) == 1 / 3
        assert summary.fraction_below(RRType.AAAA, 1e9) == 0.0

    def test_quantile(self):
        summary = summarize_ttls(self._records())
        assert summary.quantile(RRType.A, 1.0) == 3600

    def test_quantile_missing_type_raises(self):
        summary = summarize_ttls(self._records())
        with pytest.raises(KeyError):
            summary.quantile(RRType.AAAA, 0.5)

    def test_tick_table_shape(self):
        summary = summarize_ttls(self._records())
        table = summary.tick_table()
        assert len(table[RRType.A]) == len(CANONICAL_TTL_TICKS)
        # ECDF is monotone along the ticks
        assert table[RRType.A] == sorted(table[RRType.A])

    def test_suggest_clear_up_interval(self):
        summary = summarize_ttls(self._records())
        assert summary.suggest_clear_up_interval(RRType.A, 0.99) == 3600

    def test_address_fraction_merges_a_and_aaaa(self):
        records = self._records() + [
            DnsRecord(0.0, "v6.example", RRType.AAAA, 60, "2001:db8::1")
        ]
        summary = summarize_ttls(records)
        # 4 of 6 address records ≤ 300
        assert abs(address_fraction_below(summary, 300) - 4 / 6) < 1e-9

    def test_combined_fraction_weighted_by_counts(self):
        summary = summarize_ttls(self._records())
        combined = combined_fraction_below(summary, 300)
        assert abs(combined - (3 + 1) / 8) < 1e-9

    def test_empty_summary(self):
        summary = summarize_ttls([])
        assert summary.counts == {}
        assert combined_fraction_below(summary, 100) == 0.0
