"""Unit tests for the shared pipeline runtime (repro.core.pipeline).

The engines exercise the lanes end-to-end (and the parity suites pin
them equal); these tests cover the runtime's pieces directly — item
normalisation, exact-TTL fill semantics, the drain loop, summary
merging, and ingest-stat collection.
"""

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.metrics import EngineReport, IngestStats
from repro.core.pipeline import (
    FillLane,
    LookupLane,
    buffer_loss_rate,
    collect_ingest,
    dns_item_records,
    drain_buffer,
    empty_summary,
    flow_items_to_batch,
    merge_summaries,
    stack_summary,
)
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType, a_record
from repro.dns.stream import DnsRecord
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.collector import FlowCollector
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowBatch, FlowRecord
from repro.streams.buffer import BoundedBuffer


def _a(ts, name, ip, ttl=300):
    return DnsRecord(ts, name, RRType.A, ttl, ip)


class TestNormalisation:
    def test_dns_item_forms(self):
        processor = FillUpProcessor(storage=None)
        record = _a(1.0, "x.example", "10.0.0.1")
        assert dns_item_records(record, processor) == (record,)

        msg = DnsMessage()
        msg.questions.append(Question("w.example", RRType.A))
        msg.answers.append(a_record("w.example", "10.0.0.2", 60))
        wire = encode_message(msg)
        records = dns_item_records((2.0, wire), processor)
        assert [r.query for r in records] == ["w.example"]

        assert dns_item_records("garbage", processor) == ()
        assert dns_item_records((1.0, 2.0, 3.0), processor) == ()

    def test_flow_item_mix_accumulates(self):
        flows = [
            FlowRecord(ts=1.0, src_ip="10.0.0.1", dst_ip="100.64.0.1", bytes_=10),
            FlowRecord(ts=2.0, src_ip="10.0.0.2", dst_ip="100.64.0.2", bytes_=20),
        ]
        datagrams = list(FlowExporter(version=5, batch_size=2).export(flows))
        premade = FlowBatch()
        premade.append_record(flows[0])
        items = [flows[1], premade, *datagrams, object()]  # unknown item ignored
        batch = flow_items_to_batch(items, FlowCollector())
        assert len(batch) == 4  # 1 record + 1 batched + 2 decoded
        assert batch.src_ip_text.count("10.0.0.1") == 2


class TestFillLane:
    def test_exact_ttl_processes_per_record_with_sweeps(self):
        config = FlowDNSConfig(exact_ttl=True)
        storage = DnsStorage(config)
        processor = FillUpProcessor(storage)
        lane = FillLane(processor, storage, exact_ttl=True)
        lane.process_items([
            _a(0.0, "a.example", "10.0.0.1", ttl=30),
            # 200s later: the first record's TTL has expired and the
            # per-record tick sweeps it out — batched fill would not.
            _a(200.0, "b.example", "10.0.0.2", ttl=300),
        ])
        assert processor.stats.records_stored == 2
        assert storage.total_entries() == 1

    def test_batched_fill_counts_match_per_record(self):
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        processor = FillUpProcessor(storage)
        lane = FillLane(processor, storage)
        records = [_a(float(i), f"n{i}.example", f"10.0.0.{i + 1}") for i in range(5)]
        lane.process_items(records + [DnsRecord(9.0, "t.example", RRType.TXT, 60, "x")])
        assert processor.stats.records_in == 6
        assert processor.stats.records_stored == 5
        assert processor.stats.records_skipped == 1


class TestLookupLane:
    def test_correlates_and_skips_empty(self):
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        FillUpProcessor(storage).process(_a(1.0, "svc.example", "10.0.0.1"))
        lane = LookupLane(LookUpProcessor(storage, config))
        assert lane.correlate_items([]) is None
        flow = FlowRecord(ts=2.0, src_ip="10.0.0.1", dst_ip="100.64.0.1", bytes_=7)
        correlated = lane.correlate_items([flow])
        assert correlated.matched == 1
        assert correlated.chains[0] == ("svc.example",)


class TestDrainLoop:
    def test_drains_until_closed(self):
        buffer = BoundedBuffer(64, name="t")
        for i in range(10):
            buffer.push(i)
        buffer.close()
        seen = []
        drain_buffer(buffer, batch_size=3, handle=seen.extend, timeout=0.01)
        assert seen == list(range(10))


class TestReportAssembly:
    def test_merge_two_stacks(self):
        config = FlowDNSConfig()
        summaries = []
        for offset in (0, 10):
            storage = DnsStorage(config)
            fillup = FillUpProcessor(storage)
            lookup = LookUpProcessor(storage, config)
            fillup.process(_a(1.0, f"s{offset}.example", f"10.0.0.{offset + 1}"))
            lookup.correlate_batch([
                FlowRecord(ts=2.0, src_ip=f"10.0.0.{offset + 1}",
                           dst_ip="100.64.0.1", bytes_=100),
            ])
            summaries.append(stack_summary([fillup], [lookup], storage, shard_id=offset))
        report = merge_summaries(summaries, variant_name="x")
        assert report.flow_records == 2
        assert report.matched_flows == 2
        assert report.dns_records == 2
        assert report.total_bytes == 200
        assert report.chain_lengths == {1: 2}
        assert report.final_map_entries == 2

    def test_dns_override_and_broadcast_overwrites(self):
        base = empty_summary(0, None)
        base.update(records_in=5, overwrites=3)
        other = empty_summary(1, None)
        other.update(records_in=5, overwrites=3)
        report = merge_summaries(
            [base, other], variant_name="x",
            dns_records=5, broadcast_overwrites=True,
        )
        assert report.dns_records == 5  # router-side count, not 10
        assert report.overwrites == 3  # max, not sum

    def test_empty_summary_shape_matches_stack_summary(self):
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        real = stack_summary(
            [FillUpProcessor(storage)], [LookUpProcessor(storage, config)], storage
        )
        assert set(empty_summary(0, "boom")) == set(real)

    def test_buffer_loss_rate(self):
        buffer = BoundedBuffer(2, name="small")
        for i in range(5):
            buffer.push(i)
        assert buffer_loss_rate([buffer]) == pytest.approx(3 / 5)
        assert buffer_loss_rate([]) == 0.0

    def test_merge_no_summaries_yields_zero_report(self):
        """An engine whose workers all died before reporting still merges
        — to an all-zero report, not a crash on empty sums."""
        report = merge_summaries([], variant_name="x")
        assert report.flow_records == 0
        assert report.dns_records == 0
        assert report.matched_flows == 0
        assert report.total_bytes == 0
        assert report.chain_lengths == {}
        assert report.final_map_entries == 0
        assert report.overwrites == 0
        assert report.correlation_rate == 0.0

    def test_merge_empty_broadcast_overwrites_default(self):
        """broadcast_overwrites takes max() over no stacks: the explicit
        default=0 guard, not a ValueError."""
        report = merge_summaries([], variant_name="x", broadcast_overwrites=True)
        assert report.overwrites == 0

    def test_merge_all_dead_workers(self):
        """Every shard reporting the synthetic empty_summary (worker died
        mid-run) merges to zeros with the errors still visible per dict."""
        summaries = [empty_summary(i, f"shard {i} died") for i in range(3)]
        report = merge_summaries(summaries, variant_name="sharded")
        assert report.flow_records == 0
        assert report.matched_flows == 0
        assert report.correlation_rate == 0.0
        assert all(s["error"] for s in summaries)

    def test_merge_mixed_dead_and_live_workers(self):
        """One dead stack must not zero out the survivors' counters."""
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        fillup = FillUpProcessor(storage)
        lookup = LookUpProcessor(storage, config)
        fillup.process(_a(1.0, "live.example", "10.0.0.1"))
        lookup.correlate_batch([
            FlowRecord(ts=2.0, src_ip="10.0.0.1", dst_ip="100.64.0.1",
                       bytes_=100),
        ])
        live = stack_summary([fillup], [lookup], storage, shard_id=0)
        report = merge_summaries(
            [live, empty_summary(1, "boom")], variant_name="sharded"
        )
        assert report.flow_records == 1
        assert report.matched_flows == 1
        assert report.dns_records == 1

    def test_stack_summary_with_no_processors(self):
        """A stack that never got a worker (empty source list) summarises
        to zeros over empty processor sequences."""
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        summary = stack_summary([], [], storage)
        assert summary["flows_in"] == 0
        assert summary["records_in"] == 0
        assert summary["chain_lengths"] == {}
        report = merge_summaries([summary], variant_name="x")
        assert report.flow_records == 0


class TestCollectIngest:
    def test_collects_and_disambiguates(self):
        class Source:
            def __init__(self, stats):
                self.ingest_stats = stats

        report = EngineReport()
        collect_ingest(report, [
            Source(IngestStats(name="udp[a]", received=1)),
            Source(IngestStats(name="udp[a]", received=2)),  # name collision
            object(),  # no stats: ignored
        ])
        assert report.ingest["udp[a]"].received == 1
        assert len(report.ingest) == 2
        assert sum(s.received for s in report.ingest.values()) == 3


class TestIngestStats:
    def test_loss_rate_zero_when_nothing_received(self):
        """The empty-worker shape: a listener that never saw a datagram
        reports 0.0 loss, not a ZeroDivisionError."""
        assert IngestStats(name="idle").loss_rate == 0.0

    def test_loss_rate_all_dropped(self):
        """The all-dropped edge: every received unit bounced off a full
        buffer — loss is exactly 1.0 and the counters stay consistent."""
        stats = IngestStats(name="drowned", received=7, accepted=0, dropped=7)
        assert stats.loss_rate == 1.0
        assert stats.received == stats.accepted + stats.dropped

    def test_all_dropped_buffer_feeds_report_loss(self):
        """An ingest buffer that dropped everything drives the merged
        report's overall_loss_rate to 1.0 through buffer_loss_rate."""
        class Stats:
            offered = 7
            dropped = 7

        class Buffer:
            stats = Stats()

        assert buffer_loss_rate([Buffer()]) == 1.0
