"""Tests for the threaded engine (Figure 1's live pipeline)."""

import io

from engine_gates import gated_flows

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.writer import parse_result_line
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.stream import DnsRecord
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord


def _dns_records():
    return [
        DnsRecord(1.0, "svc.example", RRType.CNAME, 600, "edge.cdn.net"),
        DnsRecord(1.0, "edge.cdn.net", RRType.A, 60, "10.1.1.1"),
        DnsRecord(2.0, "plain.example", RRType.A, 120, "10.2.2.2"),
    ]


def _flows():
    return [
        FlowRecord(ts=10.0, src_ip="10.1.1.1", dst_ip="100.64.0.1", bytes_=1000),
        FlowRecord(ts=11.0, src_ip="10.2.2.2", dst_ip="100.64.0.2", bytes_=600),
        FlowRecord(ts=12.0, src_ip="172.16.0.1", dst_ip="100.64.0.3", bytes_=400),
    ]


class TestThreadedPipeline:
    def test_end_to_end_with_record_objects(self):
        sink = io.StringIO()
        engine = ThreadedEngine(FlowDNSConfig(), sink=sink)
        report = engine.run([_dns_records()], [gated_flows(engine, _flows())])
        assert report.dns_records == 3
        assert report.flow_records == 3
        assert report.matched_flows == 2
        assert report.correlated_bytes == 1600
        rows = [parse_result_line(line) for line in sink.getvalue().splitlines()]
        rows = [r for r in rows if r]
        services = {r["service"] for r in rows}
        assert "svc.example" in services and "plain.example" in services

    def test_multiple_streams_share_storage(self):
        """A record learned on stream 0 must serve flows on stream 1."""
        dns_a = _dns_records()[:2]
        dns_b = _dns_records()[2:]
        flows_a = [_flows()[0]]
        flows_b = [_flows()[1]]
        engine = ThreadedEngine(FlowDNSConfig())
        report = engine.run(
            [dns_a, dns_b],
            [gated_flows(engine, flows_a), gated_flows(engine, flows_b)],
        )
        assert report.matched_flows == 2

    def test_wire_format_dns_input(self):
        msg = DnsMessage()
        msg.questions.append(Question("wire.example", RRType.A))
        msg.answers.append(cname_record("wire.example", "e.cdn.net", 300))
        msg.answers.append(a_record("e.cdn.net", "10.3.3.3", 60))
        wire = encode_message(msg)
        flows = [FlowRecord(ts=10.0, src_ip="10.3.3.3", dst_ip="100.64.0.1", bytes_=500)]
        engine = ThreadedEngine(FlowDNSConfig())
        report = engine.run([[(1.0, wire)]], [gated_flows(engine, flows)])
        assert report.matched_flows == 1
        assert report.chain_lengths.get(2) == 1

    def test_netflow_datagram_input(self):
        flows = _flows()
        datagrams = list(FlowExporter(version=9, batch_size=10).export(flows))
        engine = ThreadedEngine(FlowDNSConfig())
        report = engine.run([_dns_records()], [gated_flows(engine, datagrams)])
        assert report.flow_records == 3
        assert report.matched_flows == 2

    def test_loss_accounted_on_overflow(self):
        config = FlowDNSConfig(
            stream_buffer_capacity=8,
            lookup_workers_per_stream=1,
            fillup_workers_per_stream=1,
        )
        # A slow consumer is simulated by sheer input volume.
        many_flows = [
            FlowRecord(ts=float(i), src_ip="172.16.0.1", dst_ip="100.64.0.1", bytes_=1)
            for i in range(20000)
        ]
        engine = ThreadedEngine(config)
        report = engine.run([[]], [many_flows])
        assert report.flow_records + int(report.overall_loss_rate * 20000) <= 20000
        assert report.flow_records > 0

    def test_exact_ttl_mode_runs(self):
        config = FlowDNSConfig(exact_ttl=True)
        engine = ThreadedEngine(config)
        report = engine.run([_dns_records()], [gated_flows(engine, _flows())])
        assert report.flow_records == 3

    def test_empty_run_terminates(self):
        engine = ThreadedEngine(FlowDNSConfig())
        report = engine.run([[]], [[]])
        assert report.flow_records == 0
        assert report.overall_loss_rate == 0.0
