"""The cross-engine differential harness over the golden capture corpus.

The contract under test: identical wire bytes through identical
DNS-before-flows ordering must produce *identical* sorted output rows
and merged report stats from every live engine — threads, shard
processes, or one asyncio loop. Each golden capture under
``tests/data/golden/`` is one scenario from
:mod:`repro.replay.scenarios` at the golden seed; a parity break on any
of them bisects straight to the engine that diverged.

``final_map_entries`` is compared threaded↔async only: the sharded
engine broadcasts CNAME records into every shard, so its resident-entry
count is genuinely larger by design (same exclusion as
``tests/test_core_engine_sharded.py``).

The live round-trip test closes the loop the subsystem exists for: a
capture teed off a real loopback session replays — offline, no sockets —
to the same report the live session produced, loss counters included.
"""

import io
import pathlib
import socket
import threading
import time

import pytest

from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest
from repro.core.config import FlowDNSConfig
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.netflow.udp import send_datagrams
from repro.replay import (
    GOLDEN_SEED,
    LANE_DNS,
    LANE_FLOW,
    CaptureWriter,
    build_scenario,
    load_capture,
    replay_capture,
    SCENARIOS,
)
from repro.util.errors import ParseError

GOLDEN_DIR = pathlib.Path(__file__).parent / "data" / "golden"

#: Report fields every engine must agree on, bit for bit.
COMPARABLE_FIELDS = (
    "matched_flows",
    "flow_records",
    "dns_records",
    "total_bytes",
    "correlated_bytes",
    "chain_lengths",
    "overwrites",
)


def golden_path(name: str) -> str:
    return str(GOLDEN_DIR / f"{name}.fdc")


def _rows(sink: io.StringIO):
    return sorted(
        line for line in sink.getvalue().splitlines() if not line.startswith("#")
    )


def _replay(capture, engine: str, config=None):
    sink = io.StringIO()
    report = replay_capture(
        capture,
        engine=engine,
        config=config if config is not None else FlowDNSConfig(),
        sink=sink,
        num_shards=2,
    )
    return report, _rows(sink)


def assert_differential(capture, config_factory=FlowDNSConfig):
    """All engines, identical rows + stats; returns the threaded baseline.

    ``config_factory`` builds a *fresh* config per engine run — engines
    mutate nothing on it today, but the harness should not rely on that.
    """
    baseline, baseline_rows = _replay(capture, "threaded", config_factory())
    for engine in ("sharded", "async"):
        report, rows = _replay(capture, engine, config_factory())
        assert rows == baseline_rows, f"{engine} rows diverged from threaded"
        for field in COMPARABLE_FIELDS:
            assert getattr(report, field) == getattr(baseline, field), (
                f"{engine} {field}: {getattr(report, field)!r} "
                f"!= threaded {getattr(baseline, field)!r}"
            )
        if engine == "async":
            assert report.final_map_entries == baseline.final_map_entries
    return baseline, baseline_rows


class TestGoldenCorpus:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_corpus_is_regenerable(self, name):
        """Each checked-in capture is exactly its scenario at the golden
        seed — the corpus can never drift from the library that built it."""
        assert load_capture(golden_path(name)) == build_scenario(name, GOLDEN_SEED)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_corpus_has_both_kinds_of_rows(self, name):
        """A scenario that matches everything (or nothing) cannot catch a
        correlation bug; the corpus must discriminate."""
        report, rows = _replay(golden_path(name), "threaded")
        assert report.flow_records > 0
        assert report.matched_flows > 0
        assert rows, "no output rows"
        # Every scenario except the all-matched template/two-site/ttl ones
        # also carries background traffic no DNS record announces.
        if name in ("bursts", "malformed", "cname-churn"):
            assert report.matched_flows < report.flow_records


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_engines_agree_on_golden_capture(self, name):
        """The headline assertion: threaded, sharded, and async produce
        identical sorted rows and merged stats on every golden capture."""
        report, rows = assert_differential(golden_path(name))
        assert report.flow_records == len(rows)

    def test_exact_ttl_differential_and_discrimination(self):
        """The exact-TTL variant agrees across engines too — and disagrees
        with the default config, proving the scenario actually exercises
        the expiry boundary instead of being trivially all-matched."""
        path = golden_path("ttl-expiry")
        default_report, _ = assert_differential(path)
        exact_report, _ = assert_differential(
            path, lambda: FlowDNSConfig(exact_ttl=True)
        )
        assert exact_report.flow_records == default_report.flow_records
        assert exact_report.matched_flows < default_report.matched_flows

    def test_two_site_overwrite_semantics(self):
        """The paper's same-IP two-website scenario: the second site's A
        record overwrites the first, and every engine counts it once."""
        report, _ = assert_differential(golden_path("two-site"))
        assert report.overwrites == 1

    def test_one_shot_frame_iterator_not_race_split(self):
        """CaptureLike admits any frame iterable; a generator input must
        produce the same results as the list or path forms instead of
        being silently race-split between the two lanes."""
        from repro.replay import read_capture

        path = golden_path("two-site")
        baseline, baseline_rows = _replay(path, "async")
        report, rows = _replay(read_capture(path), "async")
        assert rows == baseline_rows
        assert report.flow_records == baseline.flow_records
        assert report.dns_records == baseline.dns_records

    def test_replay_source_reiterates(self):
        """One capture path replays through several engines in sequence —
        the file-backed source re-reads lazily per run."""
        path = golden_path("two-site")
        first, first_rows = _replay(path, "async")
        second, second_rows = _replay(path, "async")
        assert first_rows == second_rows
        assert first.matched_flows == second.matched_flows


class TestFailingCapture:
    """Bad capture files must fail cleanly, never hang an engine."""

    def test_missing_file_fails_fast(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            replay_capture(str(tmp_path / "nope.fdc"), engine="threaded")

    def test_not_a_capture_fails_fast(self, tmp_path):
        path = tmp_path / "garbage.fdc"
        path.write_bytes(b"these are not the frames you are looking for")
        with pytest.raises(ParseError, match="magic"):
            replay_capture(str(path), engine="threaded")

    @pytest.mark.parametrize("engine", ("threaded", "sharded", "async"))
    def test_truncated_capture_replays_head_and_warns(self, tmp_path, engine):
        """A capture with a torn tail (killed recorder, full disk) still
        replays everything that framed cleanly — the run terminates, the
        report covers the head, and the failure lands in warnings."""
        golden = pathlib.Path(golden_path("two-site")).read_bytes()
        path = tmp_path / "torn.fdc"
        path.write_bytes(golden[:-7])
        full_report, _ = _replay(golden_path("two-site"), engine)
        report, rows = _replay(str(path), engine)
        # The torn frame is the last flow datagram: the head's flows all
        # correlate, nothing hangs, nothing is double-counted.
        assert 0 < report.flow_records < full_report.flow_records
        assert len(rows) == report.flow_records
        assert any("failed mid-stream" in w for w in report.warnings), (
            report.warnings
        )


class TestLiveRoundTrip:
    #: Fixed arrival stamp for the live DNS listener, inside the corpus
    #: validity window, so live and replayed runs store identically.
    CLOCK_TS = 5.0

    def _dns_wires(self, count=24):
        wires = []
        for i in range(count):
            msg = DnsMessage()
            name = f"rt{i}.example"
            msg.questions.append(Question(name, RRType.A))
            if i % 6 == 0:
                msg.answers.append(cname_record(name, f"edge{i}.cdn.net", 600))
                msg.answers.append(a_record(f"edge{i}.cdn.net", f"10.50.0.{i + 1}", 120))
            else:
                msg.answers.append(a_record(name, f"10.50.0.{i + 1}", 300))
            wires.append(encode_message(msg))
        return wires

    def _flows(self, count=24):
        flows = [
            FlowRecord(ts=10.0 + i % 20, src_ip=f"10.50.0.{i % count + 1}",
                       dst_ip="100.64.0.1", bytes_=60 + i % 11)
            for i in range(count * 3)
        ]
        flows += [
            FlowRecord(ts=12.0, src_ip="172.16.77.7", dst_ip="100.64.0.2",
                       bytes_=13)
            for _ in range(8)
        ]
        return flows

    def _run_live_with_capture(self, capture_path, wires, datagrams,
                               expected_dns, expected_flows):
        writer = CaptureWriter(capture_path)
        dns_ingest = TcpDnsIngest(clock=lambda: self.CLOCK_TS, capture=writer)
        flow_ingest = UdpFlowIngest(capture=writer)
        engine = AsyncEngine(FlowDNSConfig())
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(
                report=engine.run([dns_ingest], [flow_ingest])
            ),
            daemon=True,
        )
        thread.start()
        dns_addr = dns_ingest.wait_ready()
        flow_addr = flow_ingest.wait_ready()

        stream = frame_messages(wires)
        with socket.create_connection(dns_addr, timeout=5.0) as conn:
            for i in range(0, len(stream), 505):
                conn.sendall(stream[i : i + 505])
        deadline = time.monotonic() + 20.0
        while engine.dns_records_seen < expected_dns:
            assert time.monotonic() < deadline, "DNS ingest stalled"
            time.sleep(0.01)

        for datagram in datagrams:
            send_datagrams([datagram], flow_addr)
            time.sleep(0.001)
        deadline = time.monotonic() + 20.0
        while engine.flows_seen < expected_flows:
            assert time.monotonic() < deadline, "flow ingest stalled"
            time.sleep(0.01)

        engine.request_stop()
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "async engine did not shut down"
        writer.close()
        return result["report"], dns_ingest, flow_ingest

    def test_live_capture_replays_to_identical_report(self, tmp_path):
        """A capture teed off a live loopback session replays (offline, no
        sockets) to the same report the live session produced — loss
        counters included — and the same report from every other engine."""
        wires = self._dns_wires()
        flows = self._flows()
        datagrams = list(FlowExporter(version=9, batch_size=16).export(flows))
        expected_dns = len(wires) + len(wires) // 6
        capture_path = str(tmp_path / "live.fdc")
        live_report, dns_ingest, flow_ingest = self._run_live_with_capture(
            capture_path, wires, datagrams,
            expected_dns=expected_dns, expected_flows=len(flows),
        )

        # The tap recorded exactly what the listeners received.
        frames = load_capture(capture_path)
        assert sum(f.lane == LANE_DNS for f in frames) == len(wires)
        assert sum(f.lane == LANE_FLOW for f in frames) == len(datagrams)
        assert [f.payload for f in frames if f.lane == LANE_DNS] == wires
        assert [f.payload for f in frames if f.lane == LANE_FLOW] == datagrams
        # DNS frames carry the listener's arrival stamp, so replay stores
        # records at identical timestamps.
        assert all(f.ts == self.CLOCK_TS for f in frames if f.lane == LANE_DNS)

        replayed, _ = _replay(capture_path, "async")
        for field in COMPARABLE_FIELDS:
            assert getattr(replayed, field) == getattr(live_report, field), field
        assert replayed.final_map_entries == live_report.final_map_entries
        # Loss accounting: the paced live session lost nothing, and the
        # replay's backpressuring offline pumps cannot lose anything —
        # both reports must say so, through the same counters.
        assert dns_ingest.ingest_stats.dropped == 0
        assert flow_ingest.ingest_stats.dropped == 0
        assert live_report.overall_loss_rate == 0.0
        assert replayed.overall_loss_rate == 0.0

        # And the capture is engine-portable like any golden scenario.
        assert_differential(capture_path)
