"""Tests for the batched hot path: buffer/queue batch pops, storage batch
ops, and the processor-level ``process_batch``/``correlate_batch`` —
including equivalence against the per-record path."""

import threading

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.flowdns import FlowDNS
from repro.core.lookup import LookUpProcessor
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowDirection, FlowRecord
from repro.storage.concurrent_map import ConcurrentMap
from repro.storage.rotating import StoreBank
from repro.streams.buffer import BoundedBuffer
from repro.streams.queues import WorkerQueue


def _dns_records(n=400, services=40):
    records = [
        DnsRecord(float(i % 50), f"svc{i % services}.example", RRType.A, 300,
                  f"10.0.{(i % services) // 25}.{(i % services) % 25 + 1}")
        for i in range(n)
    ]
    records.append(DnsRecord(1.0, "alias.example", RRType.CNAME, 600, "svc0.example"))
    records.append(DnsRecord(1.0, "svc0.example", RRType.A, 60, "10.9.9.9"))
    return records

def _flows(n=1000, services=50):
    return [
        FlowRecord(ts=float(i % 50),
                   src_ip=f"10.0.{(i % services) // 25}.{(i % services) % 25 + 1}",
                   dst_ip="100.64.0.1", bytes_=100 + i % 7)
        for i in range(n)
    ]


class TestConcurrentMapBatch:
    def test_set_many_get_many_roundtrip(self):
        cmap = ConcurrentMap(shard_count=4)
        pairs = [(f"k{i}", f"v{i}") for i in range(100)]
        assert cmap.set_many(pairs) == 0
        found = cmap.get_many([f"k{i}" for i in range(120)])
        assert found == dict(pairs)

    def test_set_many_counts_changed_values_only(self):
        cmap = ConcurrentMap(shard_count=4)
        cmap.set_many([("a", 1), ("b", 2)])
        # One overwrite-with-different, one same-value rewrite, one new.
        assert cmap.set_many([("a", 9), ("b", 2), ("c", 3)]) == 1

    def test_set_many_last_write_wins_for_repeated_keys(self):
        cmap = ConcurrentMap(shard_count=4)
        cmap.set_many([("k", 1), ("k", 2), ("k", 3)])
        assert cmap.get("k") == 3

    def test_set_many_counts_overwrite_of_stored_none(self):
        """Regression: a stored None is a real previous value, not absence."""
        cmap = ConcurrentMap(shard_count=4)
        cmap.set_many([("a", None)])
        assert cmap.set_many([("a", 1)]) == 1  # None -> 1 is an overwrite
        assert cmap.set_many([("b", 2)]) == 0  # absent -> value is not

    def test_shard_index_many_matches_scalar(self):
        cmap = ConcurrentMap(shard_count=8)
        keys = [f"key-{i}" for i in range(64)] + ["key-0", "key-1"]
        assert cmap.shard_index_many(keys) == [cmap._shard_index(k) for k in keys]

    def test_get_many_empty(self):
        assert ConcurrentMap().get_many([]) == {}


class TestStoreBankBatch:
    def test_put_many_matches_per_record_puts(self):
        single = StoreBank(clear_up_interval=3600.0, num_splits=4)
        batched = StoreBank(clear_up_interval=3600.0, num_splits=4)
        entries = [(i, f"key{i % 30}", f"val{i % 7}", float(i % 5000), float(i))
                   for i in range(200)]
        for label, key, value, ttl, ts in entries:
            single.put(label, key, value, ttl, ts)
        batched.put_many(entries)
        assert single.entry_counts() == batched.entry_counts()
        assert single.stats.puts == batched.stats.puts
        assert single.stats.puts_long == batched.stats.puts_long
        assert single.stats.overwrites == batched.stats.overwrites

    def test_deep_lookup_many_matches_deep_lookup(self):
        bank = StoreBank(clear_up_interval=3600.0, num_splits=4)
        entries = [(i, f"key{i}", f"val{i}", 60.0, 0.0) for i in range(50)]
        bank.put_many(entries)
        labeled = [(i, f"key{i}") for i in range(70)]
        batch = bank.deep_lookup_many(labeled)
        for label, key in labeled:
            value, _tier = bank.deep_lookup(label, key)
            assert batch.get(key) == value

    def test_deep_lookup_many_walks_all_tiers(self):
        bank = StoreBank(clear_up_interval=100.0, num_splits=2)
        bank.put(1, "long-key", "long-val", 5000.0, 0.0)      # → Long
        bank.put(2, "rotated", "old-val", 10.0, 0.0)          # → Active
        bank.put_many([(3, "fresh", "new-val", 10.0, 200.0)])  # rotates
        found = bank.deep_lookup_many([(1, "long-key"), (2, "rotated"), (3, "fresh")])
        assert found == {"long-key": "long-val", "rotated": "old-val",
                         "fresh": "new-val"}

    def test_put_many_rotates_at_each_interval_boundary(self):
        """A batch spanning several clear-up intervals must rotate exactly
        where per-record puts would — not once per batch."""
        single = StoreBank(clear_up_interval=100.0, num_splits=2)
        batched = StoreBank(clear_up_interval=100.0, num_splits=2)
        entries = [(i, f"k{i % 10}", f"v{i % 3}", 10.0, float(i * 40))
                   for i in range(20)]
        for label, key, value, ttl, ts in entries:
            single.put(label, key, value, ttl, ts)
        batched.put_many(entries)
        assert single.stats.rotations == batched.stats.rotations
        assert batched.stats.rotations > 1
        assert single.entry_counts() == batched.entry_counts()
        assert single.stats.entries_rotated == batched.stats.entries_rotated

    def test_put_many_empty_is_noop(self):
        bank = StoreBank(clear_up_interval=3600.0)
        bank.put_many([])
        assert bank.stats.puts == 0


class TestBufferBatch:
    def test_pop_many_drains_up_to_n(self):
        buf = BoundedBuffer(capacity=100)
        buf.push_many(range(10))
        assert buf.pop_many(4) == [0, 1, 2, 3]
        assert buf.pop_many(100) == [4, 5, 6, 7, 8, 9]
        assert buf.stats.popped == 10

    def test_pop_many_timeout_returns_empty(self):
        buf = BoundedBuffer(capacity=4)
        assert buf.pop_many(4, timeout=0.01) == []

    def test_pop_many_closed_and_drained(self):
        buf = BoundedBuffer(capacity=4)
        buf.push(1)
        buf.close()
        assert buf.pop_many(4, timeout=0.01) == [1]
        assert buf.pop_many(4, timeout=0.01) == []

    def test_push_many_counts_drops(self):
        buf = BoundedBuffer(capacity=3)
        assert buf.push_many(range(5)) == 3
        assert buf.stats.dropped == 2
        assert buf.stats.offered == 5

    def test_pop_many_wakes_on_push(self):
        buf = BoundedBuffer(capacity=10)
        got = []

        def consumer():
            got.extend(buf.pop_many(10, timeout=2.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        buf.push_many([1, 2, 3])
        thread.join(timeout=5.0)
        assert got  # woke up and drained at least the first push


class TestWorkerQueueBatch:
    def test_push_many_pop_many_roundtrip(self):
        queue = WorkerQueue()
        assert queue.push_many(range(7)) == 7
        assert queue.pop_many(3, timeout=0.01) == [0, 1, 2]
        assert queue.pop_many(10, timeout=0.01) == [3, 4, 5, 6]
        assert queue.pushed == 7 and queue.popped == 7

    def test_pop_many_closed(self):
        queue = WorkerQueue()
        queue.close()
        assert queue.pop_many(5, timeout=0.01) == []


class TestBatchEquivalence:
    """The batched path must produce the per-record path's results."""

    def _run_per_record(self, dns, flows, config):
        storage = DnsStorage(config)
        fillup = FillUpProcessor(storage)
        for record in dns:
            fillup.process(record)
        lookup = LookUpProcessor(storage, config)
        results = [lookup.process(flow) for flow in flows]
        return storage, fillup, lookup, results

    def _run_batched(self, dns, flows, config, batch_size=128):
        storage = DnsStorage(config)
        fillup = FillUpProcessor(storage)
        for i in range(0, len(dns), batch_size):
            fillup.process_batch(dns[i:i + batch_size])
        lookup = LookUpProcessor(storage, config)
        results = []
        for i in range(0, len(flows), batch_size):
            results.extend(lookup.correlate_batch(flows[i:i + batch_size]))
        return storage, fillup, lookup, results

    def test_results_and_counters_match(self):
        dns, flows = _dns_records(), _flows()
        config = FlowDNSConfig()
        s1, f1, l1, r1 = self._run_per_record(dns, flows, config)
        s2, f2, l2, r2 = self._run_batched(dns, flows, config)
        assert [r.chain for r in r1] == [r.chain for r in r2]
        assert f1.stats == f2.stats
        assert l1.stats.matched == l2.stats.matched
        assert l1.stats.unmatched == l2.stats.unmatched
        assert l1.stats.bytes_in == l2.stats.bytes_in
        assert l1.stats.bytes_matched == l2.stats.bytes_matched
        assert l1.stats.chain_lengths == l2.stats.chain_lengths
        assert s1.total_entries() == s2.total_entries()
        assert s1.overwrites() == s2.overwrites()

    def test_direction_both_fallback(self):
        dns = [DnsRecord(1.0, "dst.example", RRType.A, 300, "10.7.7.7")]
        flows = [
            # src misses, dst hits → fallback path
            FlowRecord(ts=2.0, src_ip="172.16.0.1", dst_ip="10.7.7.7", bytes_=50),
            # both miss
            FlowRecord(ts=2.0, src_ip="172.16.0.2", dst_ip="172.16.0.3", bytes_=10),
        ]
        config = FlowDNSConfig(direction=FlowDirection.BOTH)
        _, _, l1, r1 = self._run_per_record(dns, flows, config)
        _, _, l2, r2 = self._run_batched(dns, flows, config)
        assert [r.chain for r in r1] == [r.chain for r in r2]
        assert r2[0].service == "dst.example"
        assert l1.stats.matched == l2.stats.matched == 1

    def test_empty_and_partial_batches(self):
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        fillup = FillUpProcessor(storage)
        assert fillup.process_batch([]) == 0
        assert fillup.stats.records_in == 0
        # Non-storable record types are counted but skipped.
        mixed = [
            DnsRecord(1.0, "a.example", RRType.A, 60, "10.1.1.1"),
            DnsRecord(1.0, "ns.example", RRType.NS, 60, "ns1.example"),
        ]
        assert fillup.process_batch(mixed) == 1
        assert fillup.stats.records_skipped == 1
        lookup = LookUpProcessor(storage, config)
        assert lookup.correlate_batch([]) == []
        assert lookup.stats.flows_in == 0

    def test_exact_ttl_falls_back_to_per_record(self):
        config = FlowDNSConfig(exact_ttl=True)
        storage = DnsStorage(config)
        FillUpProcessor(storage).process_batch(
            [DnsRecord(0.0, "a.example", RRType.A, 10, "10.1.1.1")]
        )
        lookup = LookUpProcessor(storage, config)
        flows = [
            FlowRecord(ts=5.0, src_ip="10.1.1.1", dst_ip="100.64.0.1", bytes_=10),
            FlowRecord(ts=50.0, src_ip="10.1.1.1", dst_ip="100.64.0.1", bytes_=10),
        ]
        results = lookup.correlate_batch(flows)
        # Per-flow expiry clocks: the 5s flow matches, the 50s flow is past
        # the 10s TTL — exactly what per-record processing yields.
        assert results[0].matched and not results[1].matched


class TestConcurrentBatchSafety:
    def test_concurrent_fillup_and_correlate_batch(self):
        """Concurrent batched fill and batched lookups must not corrupt
        storage or lose records (the threaded engine's actual access
        pattern)."""
        config = FlowDNSConfig()
        storage = DnsStorage(config)
        dns = _dns_records(n=4000)
        flows = _flows(n=8000, services=40)
        fillup = FillUpProcessor(storage)
        lookups = [LookUpProcessor(storage, config) for _ in range(2)]
        errors = []

        def fill():
            try:
                for i in range(0, len(dns), 64):
                    fillup.process_batch(dns[i:i + 64])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def correlate(processor):
            try:
                for i in range(0, len(flows), 64):
                    processor.correlate_batch(flows[i:i + 64])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=fill)] + [
            threading.Thread(target=correlate, args=(p,)) for p in lookups
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert fillup.stats.records_in == len(dns)
        assert sum(p.stats.flows_in for p in lookups) == 2 * len(flows)
        # After the fill completes, every flow IP must resolve.
        verify = LookUpProcessor(storage, config)
        results = verify.correlate_batch(flows)
        assert all(r.matched for r in results)


class TestFacadeBatchPath:
    def test_add_dns_many_and_correlate_many(self):
        fd = FlowDNS()
        dns, flows = _dns_records(), _flows(services=40)
        stored = fd.add_dns_many(dns)
        assert stored == len(dns)
        results = fd.correlate_many(flows)
        assert len(results) == len(flows)
        assert all(r.matched for r in results)
        assert fd.lookup_stats.flows_in == len(flows)

    def test_service_of_uses_probe_not_flow_stats(self):
        fd = FlowDNS()
        fd.add_dns(DnsRecord(1.0, "svc.example", RRType.A, 300, "10.1.1.1"))
        probe = fd._probe
        assert fd.service_of("10.1.1.1", now=2.0) == "svc.example"
        assert fd.service_of("10.1.1.1", now=3.0) == "svc.example"
        # Same probe object reused; flow statistics untouched.
        assert fd._probe is probe
        assert fd.lookup_stats.flows_in == 0
        assert fd.lookup_stats.matched == 0

    def test_service_of_unknown_ip(self):
        fd = FlowDNS()
        assert fd.service_of("192.0.2.1", now=1.0) is None
